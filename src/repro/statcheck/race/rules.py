"""fluxrace RACE rules: is this tree safe to share across concurrent
tenants?

========  ==============================================================
RACE001   module-global mutable state written outside module init (the
          ``obs/runtime.ACTIVE`` pattern, mutable class attributes,
          memo dicts without ownership)
RACE002   blocking or process-wide calls (``time.sleep``, subprocess,
          file I/O, ``cProfile``, ``signal``) transitively reachable
          from the checked-in service-entrypoint manifest
RACE003   shared-object escape: a global reachable from two or more
          service roots that some reachable function mutates without a
          guard, with aliasing tracked through helper returns and the
          fluxflow escape summaries
RACE004   ``# guarded-by: <lock>`` discipline: every write to guarded
          state holds the named lock, every call into a caller-holds
          function holds it, and no call chain re-acquires a
          non-reentrant lock it already holds
========  ==============================================================

Findings report through the standard :class:`Violation` records, honour
``# fluxlint: disable=`` suppressions, and gate through the same baseline
files as every other engine — ``statcheck-race-baseline.json`` is the
ranked de-globalization worklist for the scheduling-as-a-service PR.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from ...errors import FluxionError
from ..core import Violation
from ..flow.callgraph import CallGraph, build_call_graph, walk_own
from ..flow.program import FlowProgram, FunctionInfo, ModuleInfo
from ..flow.summaries import SummaryTable, classify_name_uses, compute_summaries
from .model import (
    DEFAULT_ENTRYPOINTS,
    MUTATOR_NAMES,
    RaceModel,
    SharedGlobal,
    WriteSite,
    load_entrypoints,
    _dotted_parts,
)

__all__ = [
    "RaceContext",
    "RaceRule",
    "RaceEngine",
    "register_race_rule",
    "all_race_rules",
]


@dataclass
class RaceContext:
    """Everything a RACE rule needs: program, call graph, shared-state
    model, and the fluxflow escape summaries."""

    program: FlowProgram
    graph: CallGraph
    model: RaceModel
    summaries: SummaryTable


class RaceRule:
    """Base class for concurrency-readiness rules (one instance per run)."""

    rule_id: str = ""
    summary: str = ""

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def run(self, ctx: RaceContext) -> List[Violation]:
        raise NotImplementedError

    def report_at(
        self, module: ModuleInfo, line: int, col: int, message: str
    ) -> None:
        if not module.source_module.is_suppressed(self.rule_id, line):
            self.violations.append(
                Violation(module.path, line, col, self.rule_id, message)
            )


_RACE_REGISTRY: Dict[str, Type[RaceRule]] = {}


def register_race_rule(cls: Type[RaceRule]) -> Type[RaceRule]:
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _RACE_REGISTRY:
        raise ValueError(f"duplicate race rule id {cls.rule_id}")
    _RACE_REGISTRY[cls.rule_id] = cls
    return cls


def all_race_rules() -> Dict[str, Type[RaceRule]]:
    return dict(_RACE_REGISTRY)


def _roots_label(roots: Sequence[str], limit: int = 3) -> str:
    shown = [".".join(r.rsplit(".", 2)[-2:]) for r in roots[:limit]]
    extra = len(roots) - limit
    return ", ".join(shown) + (f" (+{extra} more)" if extra > 0 else "")


# ---------------------------------------------------------------------------
# RACE001 — module-global mutable state written outside module init
# ---------------------------------------------------------------------------


@register_race_rule
class GlobalMutableStateRule(RaceRule):
    """RACE001: process-global mutable state is last-writer-wins across
    tenants the moment two requests share the interpreter; every memo
    dict, registry, and ``global`` rebind found here must either move
    into an owning object / ContextVar or declare its lock."""

    rule_id = "RACE001"
    summary = "module-global mutable state written outside module init"

    def run(self, ctx: RaceContext) -> List[Violation]:
        for qualname in sorted(ctx.model.globals):
            shared = ctx.model.globals[qualname]
            if shared.guard is not None or not shared.writes:
                continue  # guarded state is RACE004's problem
            rebinds = [w for w in shared.writes if w.kind == "rebind"]
            if not shared.mutable and not rebinds:
                continue
            first = min(shared.writes, key=lambda w: (w.path, w.line))
            kind = (
                f"module-global mutable '{shared.name}' ({shared.ctor})"
                if shared.mutable
                else f"module-global '{shared.name}'"
            )
            self.report_at(
                shared.module,
                shared.line,
                shared.col,
                f"{kind} is written outside module init by "
                f"{len({w.fn_qualname for w in shared.writes})} function(s), "
                f"first in {first.fn_qualname.rsplit('.', 1)[-1]}() at "
                f"line {first.line} ({first.what}); process-wide state "
                "cross-contaminates concurrent tenants — move it into an "
                "owning object or ContextVar, or declare "
                "'# guarded-by: <lock>'",
            )
        for qualname in sorted(ctx.model.class_attrs):
            attr = ctx.model.class_attrs[qualname]
            if attr.guard is not None or not attr.writes:
                continue
            if attr.rebound_in_init:
                continue  # instances own a private copy; the class-level
                # literal is only a default value
            first = min(attr.writes, key=lambda w: (w.path, w.line))
            short_cls = attr.class_qualname.rsplit(".", 1)[-1]
            self.report_at(
                attr.module,
                attr.line,
                attr.col,
                f"class attribute '{short_cls}.{attr.name}' ({attr.ctor}) "
                "is shared by every instance and mutated by "
                f"{len({w.fn_qualname for w in attr.writes})} function(s), "
                f"first in {first.fn_qualname.rsplit('.', 1)[-1]}() at "
                f"line {first.line} ({first.what}); rebind it per instance "
                "in __init__ or declare '# guarded-by: <lock>'",
            )
        return self.violations


# ---------------------------------------------------------------------------
# RACE002 — blocking calls reachable from service entrypoints
# ---------------------------------------------------------------------------

#: module -> blocking member names (None = every attribute blocks)
_BLOCKING_MODULES: Dict[str, Optional[Set[str]]] = {
    "time": {"sleep"},
    "subprocess": None,
    "signal": None,
    "cProfile": None,
    "profile": None,
    "os": {
        "system", "popen", "fork", "forkpty", "wait", "waitpid",
        "wait3", "wait4", "spawnl", "spawnv", "spawnve", "execv",
        "execve", "fsync", "sync",
    },
    "shutil": {"rmtree", "copytree", "copy", "copy2", "copyfile", "move"},
    "io": {"open"},
}

#: bare builtins that block the calling thread (process-wide for input())
_BLOCKING_BUILTINS = {"open", "input"}


@register_race_rule
class BlockingCallRule(RaceRule):
    """RACE002: one worker parked in ``time.sleep`` or synchronous file
    I/O stalls every tenant sharing the event loop; ``signal``/``fork``/
    ``cProfile`` are process-wide and cannot be scoped to one request at
    all."""

    rule_id = "RACE002"
    summary = "blocking or process-wide call reachable from a service entrypoint"

    def run(self, ctx: RaceContext) -> List[Violation]:
        for qualname in sorted(ctx.program.functions):
            fn = ctx.program.functions[qualname]
            roots = ctx.model.roots_reaching(qualname)
            if not roots:
                continue
            shadowed = ctx.model.shadowed_names(fn)
            for node in walk_own(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                label = self._blocking_label(fn, node, shadowed)
                if label is None:
                    continue
                ctx.model.blocking_by_module[fn.module.name] = (
                    ctx.model.blocking_by_module.get(fn.module.name, 0) + 1
                )
                self.report_at(
                    fn.module,
                    node.lineno,
                    node.col_offset,
                    f"blocking call {label} in {fn.name}() is reachable "
                    f"from service entrypoint(s) {_roots_label(roots)} via "
                    f"{ctx.model.chain(roots[0], qualname)}; a stalled "
                    "worker blocks every tenant in this process — move it "
                    "off the request path or behind an executor",
                )
        return self.violations

    @staticmethod
    def _blocking_label(
        fn: FunctionInfo, node: ast.Call, shadowed: Set[str]
    ) -> Optional[str]:
        parts = _dotted_parts(node.func)
        if parts is None:
            return None
        info = fn.module
        head = parts[0]
        if head in shadowed:
            return None
        if len(parts) == 1:
            if (
                head in _BLOCKING_BUILTINS
                and head not in info.functions
                and head not in info.import_names
                and head not in info.import_modules
            ):
                return f"{head}()"
            alias = info.import_names.get(head)
            if alias is not None:
                module_name, original = alias
                members = _BLOCKING_MODULES.get(module_name)
                if members is None and module_name in _BLOCKING_MODULES:
                    return f"{module_name}.{original}()"
                if members is not None and original in members:
                    return f"{module_name}.{original}()"
            return None
        real = info.import_modules.get(head)
        if real is None or real not in _BLOCKING_MODULES:
            return None
        if len(parts) != 2:
            return None  # os.path.join and deeper chains are not calls
            # into the blocking table
        members = _BLOCKING_MODULES[real]
        if members is None or parts[1] in members:
            return f"{real}.{parts[1]}()"
        return None


# ---------------------------------------------------------------------------
# RACE003 — shared-object escape across tenant roots
# ---------------------------------------------------------------------------


@register_race_rule
class SharedEscapeRule(RaceRule):
    """RACE003: a value two tenant roots can both reach, that some
    reachable function mutates without a guard, is a data race the
    moment those roots run concurrently; aliasing through helper
    returns and escaping parameters is tracked so hiding the global
    behind an accessor does not hide the race."""

    rule_id = "RACE003"
    summary = "unguarded mutation of state shared between service roots"

    def run(self, ctx: RaceContext) -> List[Violation]:
        returns_global = self._returns_global(ctx)
        touchers: Dict[str, Set[str]] = {}
        mutations: Dict[str, List[WriteSite]] = {}
        escapes: Dict[str, str] = {}

        for qualname, shared in ctx.model.globals.items():
            for write in shared.writes:
                touchers.setdefault(qualname, set()).add(write.fn_qualname)
                mutations.setdefault(qualname, []).append(write)

        for fn_qualname in sorted(ctx.program.functions):
            fn = ctx.program.functions[fn_qualname]
            shadowed = ctx.model.shadowed_names(fn)
            read_globals: Set[str] = set()
            aliases: Dict[str, str] = {}
            for node in walk_own(fn.node):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load
                ):
                    if node.id in shadowed:
                        continue
                    shared = ctx.model.resolve_global(fn, [node.id])
                    if shared is not None:
                        read_globals.add(shared.qualname)
                        touchers.setdefault(shared.qualname, set()).add(
                            fn_qualname
                        )
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    # x = helper() where helper returns a tracked global:
                    # x aliases the shared object
                    site = ctx.graph.site_for.get(id(node.value))
                    if site is not None and site.callee is not None:
                        aliased = returns_global.get(site.callee.qualname)
                        if aliased is not None:
                            aliases[node.targets[0].id] = aliased
                            touchers.setdefault(aliased, set()).add(
                                fn_qualname
                            )
            self._record_alias_mutations(
                ctx, fn, aliases, touchers, mutations
            )
            self._record_escapes(ctx, fn, read_globals, escapes)

        for qualname in sorted(mutations):
            shared = ctx.model.globals.get(qualname)
            if shared is None or shared.guard is not None:
                continue
            roots = sorted(
                {
                    root
                    for toucher in touchers.get(qualname, ())
                    for root in ctx.model.roots_reaching(toucher)
                }
            )
            if len(roots) < 2:
                continue
            first = min(mutations[qualname], key=lambda w: (w.path, w.line))
            module = ctx.program.modules_by_path.get(first.path)
            if module is None:
                continue
            escape_note = (
                f"; aliases escape: {escapes[qualname]}"
                if qualname in escapes
                else ""
            )
            self.report_at(
                module,
                first.line,
                first.col,
                f"'{qualname}' is reachable from {len(roots)} service "
                f"roots ({_roots_label(roots)}) and mutated without a "
                f"guard in {first.fn_qualname.rsplit('.', 1)[-1]}() "
                f"({first.what}){escape_note}; two tenants racing here "
                "corrupt shared state — give each root its own instance "
                "or declare '# guarded-by: <lock>'",
            )
        return self.violations

    @staticmethod
    def _returns_global(ctx: RaceContext) -> Dict[str, str]:
        """Function qualname -> global qualname it returns an alias of."""
        out: Dict[str, str] = {}
        for fn in ctx.program.functions.values():
            shadowed = None
            for node in walk_own(fn.node):
                if not (
                    isinstance(node, ast.Return) and node.value is not None
                ):
                    continue
                parts = _dotted_parts(node.value)
                if not parts:
                    continue
                if shadowed is None:
                    shadowed = ctx.model.shadowed_names(fn)
                if parts[0] in shadowed:
                    continue
                shared = ctx.model.resolve_global(fn, parts)
                if shared is not None:
                    out[fn.qualname] = shared.qualname
        return out

    def _record_alias_mutations(
        self,
        ctx: RaceContext,
        fn: FunctionInfo,
        aliases: Dict[str, str],
        touchers: Dict[str, Set[str]],
        mutations: Dict[str, List[WriteSite]],
    ) -> None:
        if not aliases:
            return
        for node in walk_own(fn.node):
            target: Optional[str] = None
            what = ""
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_NAMES
                and isinstance(node.func.value, ast.Name)
            ):
                target = node.func.value.id
                what = f"{target}.{node.func.attr}(...) [alias]"
            elif (
                isinstance(node, ast.Subscript)
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and isinstance(node.value, ast.Name)
            ):
                target = node.value.id
                what = f"{target}[...] = ... [alias]"
            if target is None or target not in aliases:
                continue
            qualname = aliases[target]
            touchers.setdefault(qualname, set()).add(fn.qualname)
            mutations.setdefault(qualname, []).append(
                WriteSite(
                    fn_qualname=fn.qualname,
                    path=fn.module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    what=what,
                    kind="alias",
                )
            )

    def _record_escapes(
        self,
        ctx: RaceContext,
        fn: FunctionInfo,
        read_globals: Set[str],
        escapes: Dict[str, str],
    ) -> None:
        """Record how a global's value leaks out of ``fn`` — returned,
        stored, or passed to a callee whose parameter summary escapes."""
        for qualname in read_globals:
            if qualname in escapes:
                continue
            shared = ctx.model.globals[qualname]
            spelled = self._spelling(fn.module, shared)
            if spelled is None:
                continue
            _, escaped, flows = classify_name_uses(
                fn.node, spelled, ctx.graph, ctx.summaries
            )
            if escaped:
                witness = flows[0] if flows else "stored outside the frame"
                short = fn.qualname.rsplit(".", 1)[-1]
                escapes[qualname] = f"{short}() {witness}"
                shared.escapes.append((fn.qualname, fn.node.lineno, witness))

    @staticmethod
    def _spelling(
        info: ModuleInfo, shared: SharedGlobal
    ) -> Optional[str]:
        """How ``shared`` is spelled as a bare name inside ``info``."""
        if info is shared.module:
            return shared.name
        for alias, (module_name, original) in info.import_names.items():
            if (
                module_name == shared.module.name
                and original == shared.name
            ):
                return alias
        return None


# ---------------------------------------------------------------------------
# RACE004 — guarded-by discipline + non-reentrant re-entry
# ---------------------------------------------------------------------------


@register_race_rule
class GuardDisciplineRule(RaceRule):
    """RACE004: a ``# guarded-by:`` annotation is a machine-checked
    contract — writes hold the named lock, callers of caller-holds
    functions hold it, and no call chain re-acquires a non-reentrant
    lock it already holds (instant deadlock, not just a race)."""

    rule_id = "RACE004"
    summary = "guarded-by contract violated or non-reentrant lock re-entered"

    def run(self, ctx: RaceContext) -> List[Violation]:
        held_maps = {
            qualname: _held_map(fn)
            for qualname, fn in ctx.program.functions.items()
        }
        self._check_guarded_writes(ctx, held_maps)
        self._check_caller_holds(ctx, held_maps)
        self._check_reentry(ctx, held_maps)
        return self.violations

    # (a) every write to guarded state holds the named lock
    def _check_guarded_writes(
        self,
        ctx: RaceContext,
        held_maps: Dict[str, Dict[int, frozenset]],
    ) -> None:
        guarded = [
            (shared.qualname, shared.guard, shared.writes, shared.module)
            for shared in ctx.model.globals.values()
            if shared.guard is not None
        ]
        guarded.extend(
            (attr.qualname, attr.guard, attr.writes, attr.module)
            for attr in ctx.model.class_attrs.values()
            if attr.guard is not None
        )
        for qualname, guard, writes, _module in sorted(
            guarded, key=lambda item: item[0]
        ):
            for write in writes:
                fn = ctx.program.functions.get(write.fn_qualname)
                if fn is None:
                    continue
                if ctx.model.fn_guards.get(write.fn_qualname) == guard:
                    continue  # the whole function declares it holds it
                if self._write_holds(
                    held_maps.get(write.fn_qualname, {}), fn, write, guard
                ):
                    continue
                self.report_at(
                    fn.module,
                    write.line,
                    write.col,
                    f"write to '{qualname}' (guarded-by {guard}) in "
                    f"{fn.name}() without holding {guard}: {write.what}; "
                    f"wrap it in 'with {guard}:' or annotate the function "
                    f"'# guarded-by: {guard}'",
                )

    @staticmethod
    def _write_holds(
        held: Dict[int, frozenset],
        fn: FunctionInfo,
        write: WriteSite,
        guard: str,
    ) -> bool:
        # the held map is keyed by node id; find any node at the write's
        # line that holds the guard (line-level matching keeps WriteSite
        # free of AST references, which multiprocessing would not pickle)
        for node in walk_own(fn.node):
            if getattr(node, "lineno", None) != write.line:
                continue
            if guard in held.get(id(node), frozenset()):
                return True
        return False

    # (b) calls into caller-holds-annotated functions hold the lock
    def _check_caller_holds(
        self,
        ctx: RaceContext,
        held_maps: Dict[str, Dict[int, frozenset]],
    ) -> None:
        for caller_qualname in sorted(ctx.graph.sites):
            caller = ctx.program.functions.get(caller_qualname)
            if caller is None:
                continue
            held = held_maps.get(caller_qualname, {})
            for site in ctx.graph.sites[caller_qualname]:
                if site.callee is None:
                    continue
                guard = ctx.model.fn_guards.get(site.callee.qualname)
                if guard is None:
                    continue
                if ctx.model.fn_guards.get(caller_qualname) == guard:
                    continue
                if guard in held.get(id(site.node), frozenset()):
                    continue
                self.report_at(
                    caller.module,
                    site.node.lineno,
                    site.node.col_offset,
                    f"call to {site.callee.name}() requires holding "
                    f"{guard} ('# guarded-by: {guard}' on its def) but "
                    f"{caller.name}() does not hold it; acquire "
                    f"'with {guard}:' around the call or annotate the "
                    "caller",
                )

    # (c) non-reentrant re-entry along the call graph
    def _check_reentry(
        self,
        ctx: RaceContext,
        held_maps: Dict[str, Dict[int, frozenset]],
    ) -> None:
        known_locks = set(ctx.model.lock_reentrant)
        known_locks.update(ctx.model.guard_lines.values())
        known_locks.update(ctx.model.fn_guards.values())
        if not known_locks:
            return
        direct: Dict[str, Set[str]] = {}
        for qualname, fn in ctx.program.functions.items():
            acquired: Set[str] = set()
            for node in walk_own(fn.node):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    acquired |= _with_locks(node) & known_locks
            direct[qualname] = acquired
        eventually = {q: set(locks) for q, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for qualname in eventually:
                for callee in ctx.graph.edges.get(qualname, ()):
                    extra = eventually.get(callee, set()) - eventually[qualname]
                    if extra:
                        eventually[qualname] |= extra
                        changed = True
        for caller_qualname in sorted(ctx.graph.sites):
            caller = ctx.program.functions.get(caller_qualname)
            if caller is None:
                continue
            held = held_maps.get(caller_qualname, {})
            for site in ctx.graph.sites[caller_qualname]:
                if site.callee is None:
                    continue
                holding = held.get(id(site.node), frozenset()) & known_locks
                if not holding:
                    continue
                reacquired = sorted(
                    lock
                    for lock in holding
                    if not ctx.model.lock_reentrant.get(lock, False)
                    and lock in eventually.get(site.callee.qualname, ())
                )
                if not reacquired:
                    continue
                lock = reacquired[0]
                self.report_at(
                    caller.module,
                    site.node.lineno,
                    site.node.col_offset,
                    f"call to {site.callee.name}() while holding "
                    f"non-reentrant lock {lock} re-acquires {lock} "
                    "somewhere down its call chain — this deadlocks; use "
                    "an RLock or lift the inner acquisition out",
                )


def _with_locks(node: ast.AST) -> Set[str]:
    """The lock texts a With/AsyncWith statement acquires."""
    out: Set[str] = set()
    for item in node.items:
        out.add(ast.unparse(item.context_expr))
    return out


def _held_map(fn: FunctionInfo) -> Dict[int, frozenset]:
    """id(node) -> set of lock texts held at that node inside ``fn``."""
    held: Dict[int, frozenset] = {}

    def visit(node: ast.AST, stack: frozenset) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                 ast.ClassDef),
            ):
                continue
            inner = stack
            if isinstance(child, (ast.With, ast.AsyncWith)):
                inner = stack | frozenset(_with_locks(child))
            held[id(child)] = inner
            visit(child, inner)

    visit(fn.node, frozenset())
    return held


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class RaceEngine:
    """Runs a selected set of RACE rules over a whole program + manifest."""

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        registry = all_race_rules()
        chosen = (
            {r.upper() for r in select} if select is not None else set(registry)
        )
        dropped = {r.upper() for r in ignore} if ignore is not None else set()
        unknown = (chosen | dropped) - set(registry)
        if unknown:
            raise FluxionError(
                f"unknown race rule ids: {sorted(unknown)}; "
                f"known: {sorted(registry)}"
            )
        self.rules: List[Type[RaceRule]] = [
            registry[rule_id] for rule_id in sorted(chosen - dropped)
        ]

    def analyze_program(
        self, program: FlowProgram, manifest: dict
    ) -> Tuple[List[Violation], RaceModel]:
        graph = build_call_graph(program)
        model = RaceModel.build(program, graph, manifest)
        summaries = compute_summaries(program, graph)
        ctx = RaceContext(
            program=program, graph=graph, model=model, summaries=summaries
        )
        violations: List[Violation] = []
        for rule_cls in self.rules:
            violations.extend(rule_cls().run(ctx))
        return sorted(set(violations)), model

    def analyze_paths(
        self,
        paths: Sequence[str],
        entrypoints_path: str = DEFAULT_ENTRYPOINTS,
    ) -> Tuple[List[Violation], RaceModel]:
        program = FlowProgram.from_paths(paths)
        manifest = load_entrypoints(entrypoints_path)
        return self.analyze_program(program, manifest)
