"""The fluxrace shared-state model: what is shared, and who guards it?

ROADMAP item 1 turns the batch simulator into a long-running multi-tenant
service; before that lands, every piece of process-global mutable state is
a tenant-crossing hazard and every blocking call on a request path is a
stalled event loop.  This module builds the whole-program facts the RACE
rules consume:

* the **service-entrypoint manifest** (``statcheck-entrypoints.json``) —
  the checked-in list of functions a scheduling service would expose, and
  the forward call-graph closure reachable from each one;
* **shared globals** — module-level mutable containers and class-level
  mutable attribute literals, with every write site (rebinds, item stores,
  mutator-method calls) classified as *init-time* (module top level) or
  *function-scope* (post-init, tenant-visible);
* **guard annotations** — ``# guarded-by: <lock>`` trailing comments on
  definitions and ``def`` lines, plus the locks themselves
  (``threading.Lock()`` / ``RLock()`` at module or instance scope);
* the per-module **shared-state footprint table** that ``--race-report``
  renders (the de-globalization worklist for the service PR).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...errors import FluxionError
from ..flow.callgraph import CallGraph, walk_own
from ..flow.program import ClassInfo, FlowProgram, FunctionInfo, ModuleInfo

__all__ = [
    "ENTRYPOINTS_VERSION",
    "DEFAULT_ENTRYPOINTS",
    "EntryPoint",
    "SharedGlobal",
    "SharedClassAttr",
    "WriteSite",
    "LockInfo",
    "RaceModel",
    "load_entrypoints",
    "render_race_report",
]

ENTRYPOINTS_VERSION = 1

#: default manifest filename, checked in at the repo root
DEFAULT_ENTRYPOINTS = "statcheck-entrypoints.json"

#: constructors whose result is a shared-state hazard when module-global
_MUTABLE_CTORS = {
    "dict", "list", "set", "bytearray", "defaultdict", "deque",
    "Counter", "OrderedDict", "ChainMap",
}

#: method names that mutate their receiver in place (superset of the
#: JRN001/summaries list; ``set`` is deliberately absent — ContextVar.set
#: and Gauge.set replace a context-local value, they do not share state)
MUTATOR_NAMES = {
    "append", "appendleft", "add", "pop", "popleft", "push", "clear",
    "remove", "discard", "update", "extend", "insert", "setdefault",
    "heappush", "heappop", "sort", "reverse",
}

#: ``# guarded-by: self._lock`` — trailing-comment guard annotation
_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_.]*)")

_LOCK_CTORS = {"Lock": False, "RLock": True}  # name -> reentrant


@dataclass(frozen=True)
class EntryPoint:
    """One function the scheduling service would expose."""

    qualname: str
    kind: str = ""

    @property
    def short(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class WriteSite:
    """One function-scope write to a shared name."""

    fn_qualname: str
    path: str
    line: int
    col: int
    what: str  # e.g. "_CACHE[key] = ...", "_ACTIVE.append(...)"
    kind: str  # "rebind" | "item" | "mutator" | "attr"


@dataclass
class SharedGlobal:
    """One module-level binding and everything that touches it.

    Every single-name top-level assignment is tracked (a ``global`` rebind
    of an immutable binding is the last-activation-wins pattern too); the
    ``mutable`` flag records whether the bound value is itself a container.
    """

    module: ModuleInfo
    name: str
    line: int
    col: int
    ctor: str  # "dict literal", "defaultdict()", "binding"
    mutable: bool = True
    guard: Optional[str] = None  # lock text from # guarded-by:
    writes: List[WriteSite] = field(default_factory=list)
    #: functions that alias the value outward: returned it, stored it on an
    #: instance, or passed it to an escaping/unresolved callee
    escapes: List[Tuple[str, int, str]] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        return f"{self.module.name}.{self.name}"


@dataclass
class SharedClassAttr:
    """One class-level mutable attribute literal shared by all instances."""

    class_qualname: str
    module: ModuleInfo
    name: str
    line: int
    col: int
    ctor: str
    guard: Optional[str] = None
    writes: List[WriteSite] = field(default_factory=list)
    #: True when some __init__ rebinds ``self.<name>`` (instances own a
    #: private copy, so the class attribute is only a default)
    rebound_in_init: bool = False

    @property
    def qualname(self) -> str:
        return f"{self.class_qualname}.{self.name}"


@dataclass
class LockInfo:
    """One known lock object a guard annotation can reference."""

    text: str  # how use sites spell it: "_SAN_LOCK", "self._lock"
    scope: str  # module name, or class qualname for instance locks
    reentrant: bool
    path: str
    line: int


def load_entrypoints(path: str) -> dict:
    """Read and validate a ``statcheck-entrypoints.json`` manifest."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise FluxionError(
            f"cannot read entrypoint manifest {path}: {exc}; the --race "
            "rules need the checked-in service-entrypoint list"
        )
    except json.JSONDecodeError as exc:
        raise FluxionError(
            f"entrypoint manifest {path} is not valid JSON: {exc}"
        )
    if not isinstance(document, dict) or "entrypoints" not in document:
        raise FluxionError(
            f"entrypoint manifest {path} malformed: expected an object "
            "with 'entrypoints'"
        )
    version = document.get("version")
    if version != ENTRYPOINTS_VERSION:
        raise FluxionError(
            f"entrypoint manifest {path} has unsupported version "
            f"{version!r} (expected {ENTRYPOINTS_VERSION})"
        )
    for entry in document["entrypoints"]:
        if not isinstance(entry, dict) or not isinstance(
            entry.get("qualname"), str
        ):
            raise FluxionError(
                f"entrypoint manifest {path} malformed: each entrypoint "
                "needs a string 'qualname'"
            )
    return document


class RaceModel:
    """Whole-program shared-state facts for one analyzed tree."""

    def __init__(self, program: FlowProgram, graph: CallGraph) -> None:
        self.program = program
        self.graph = graph
        self.entrypoints: List[EntryPoint] = []
        self.missing_entrypoints: List[str] = []
        #: entrypoint qualname -> every qualname reachable from it
        self.reachable: Dict[str, Set[str]] = {}
        #: entrypoint qualname -> {reached: caller} parent map (chains)
        self.parents: Dict[str, Dict[str, Optional[str]]] = {}
        #: global qualname -> SharedGlobal
        self.globals: Dict[str, SharedGlobal] = {}
        #: attr qualname -> SharedClassAttr
        self.class_attrs: Dict[str, SharedClassAttr] = {}
        #: (module name, line) -> guard lock text
        self.guard_lines: Dict[Tuple[str, int], str] = {}
        #: function qualname -> lock text its def line is annotated with
        self.fn_guards: Dict[str, str] = {}
        self.locks: List[LockInfo] = []
        #: lock text -> reentrant?  (annotation-referenced or discovered)
        self.lock_reentrant: Dict[str, bool] = {}
        #: module name -> entrypoint-reachable blocking call sites (RACE002
        #: fills this; the --race-report footprint table renders it)
        self.blocking_by_module: Dict[str, int] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def build(
        cls,
        program: FlowProgram,
        graph: CallGraph,
        manifest: dict,
    ) -> "RaceModel":
        model = cls(program, graph)
        model._load_manifest(manifest)
        model._collect_guards()
        model._collect_globals()
        model._collect_class_attrs()
        model._collect_writes()
        model._compute_reachability()
        return model

    def _load_manifest(self, manifest: dict) -> None:
        for entry in manifest.get("entrypoints", []):
            point = EntryPoint(
                qualname=entry["qualname"], kind=str(entry.get("kind", ""))
            )
            if point.qualname in self.program.functions:
                self.entrypoints.append(point)
            else:
                self.missing_entrypoints.append(point.qualname)

    # -- guard annotations and locks ------------------------------------
    def _collect_guards(self) -> None:
        for info in self.program.modules.values():
            for lineno, text in enumerate(
                info.source_module.lines, start=1
            ):
                if "guarded-by" not in text:
                    continue
                match = _GUARDED_BY.search(text)
                if match:
                    self.guard_lines[(info.name, lineno)] = match.group(1)
        for fn in self.program.functions.values():
            guard = self._guard_at(fn.module, fn.node.lineno)
            if guard is not None:
                self.fn_guards[fn.qualname] = guard
        self._collect_locks()

    def _guard_at(self, module: ModuleInfo, line: int) -> Optional[str]:
        return self.guard_lines.get((module.name, line))

    def _collect_locks(self) -> None:
        for info in self.program.modules.values():
            for node in info.tree.body:
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    continue
                reentrant = _lock_ctor(node.value)
                if reentrant is None:
                    continue
                name = node.targets[0].id
                self.locks.append(
                    LockInfo(name, info.name, reentrant, info.path,
                             node.lineno)
                )
                self.lock_reentrant.setdefault(name, reentrant)
        for ci in self.program.classes.values():
            init = ci.methods.get("__init__")
            if init is None:
                continue
            for stmt in walk_own(init.node):
                if not (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and _is_self_attr(stmt.targets[0])
                ):
                    continue
                reentrant = _lock_ctor(stmt.value)
                if reentrant is None:
                    continue
                text = f"self.{stmt.targets[0].attr}"
                self.locks.append(
                    LockInfo(text, ci.qualname, reentrant,
                             ci.module.path, stmt.lineno)
                )
                self.lock_reentrant.setdefault(text, reentrant)

    # -- shared globals --------------------------------------------------
    def _collect_globals(self) -> None:
        for info in self.program.modules.values():
            for node in info.tree.body:
                target, value = _single_name_assign(node)
                if target is None or value is None:
                    continue
                if target.id.startswith("__") and target.id.endswith("__"):
                    continue
                ctor = _mutable_ctor(value)
                shared = SharedGlobal(
                    module=info,
                    name=target.id,
                    line=node.lineno,
                    col=node.col_offset,
                    ctor=ctor or "binding",
                    mutable=ctor is not None,
                    guard=self._guard_at(info, node.lineno),
                )
                self.globals[shared.qualname] = shared

    def _collect_class_attrs(self) -> None:
        for ci in self.program.classes.values():
            init = ci.methods.get("__init__")
            rebound: Set[str] = set()
            if init is not None:
                for stmt in walk_own(init.node):
                    if isinstance(stmt, ast.Assign):
                        for tgt in stmt.targets:
                            if _is_self_attr(tgt):
                                rebound.add(tgt.attr)
                    elif isinstance(stmt, ast.AnnAssign) and _is_self_attr(
                        stmt.target
                    ):
                        rebound.add(stmt.target.attr)
            for stmt in ci.node.body:
                target, value = _single_name_assign(stmt)
                if target is None or value is None:
                    continue
                if target.id.startswith("__") and target.id.endswith("__"):
                    continue
                ctor = _mutable_ctor(value)
                if ctor is None:
                    continue
                attr = SharedClassAttr(
                    class_qualname=ci.qualname,
                    module=ci.module,
                    name=target.id,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    ctor=ctor,
                    guard=self._guard_at(ci.module, stmt.lineno),
                    rebound_in_init=target.id in rebound,
                )
                self.class_attrs[attr.qualname] = attr

    # -- write/escape sites ----------------------------------------------
    def _collect_writes(self) -> None:
        for fn in self.program.functions.values():
            self._scan_function(fn)

    def resolve_global(
        self, fn: FunctionInfo, parts: Sequence[str]
    ) -> Optional[SharedGlobal]:
        """Resolve a dotted reference inside ``fn`` to a tracked global.

        Handles the in-module bare name (unless shadowed by a local), the
        from-import alias, and the ``mod.NAME`` module-attribute form.
        """
        if not parts:
            return None
        info = fn.module
        head = parts[0]
        # bare name in the defining module
        if len(parts) == 1:
            shared = self.globals.get(f"{info.name}.{head}")
            if shared is not None:
                return shared
            alias = info.import_names.get(head)
            if alias is not None:
                return self.globals.get(f"{alias[0]}.{alias[1]}")
            return None
        # mod.NAME / pkg.mod.NAME through the import maps
        if head in info.import_modules or head in info.import_names:
            resolved = self.program.resolve_dotted(info, list(parts[:-1]))
            if isinstance(resolved, ModuleInfo):
                return self.globals.get(f"{resolved.name}.{parts[-1]}")
        return None

    def shadowed_names(self, fn: FunctionInfo) -> Set[str]:
        """Names a bare Load inside ``fn`` resolves locally, not globally."""
        declared_global: Set[str] = set()
        local_stores: Set[str] = set()
        for node in walk_own(fn.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                local_stores.add(node.id)
        return (local_stores - declared_global) | set(fn.params)

    def _scan_function(self, fn: FunctionInfo) -> None:
        declared_global: Set[str] = set()
        for node in walk_own(fn.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        shadowed = self.shadowed_names(fn)

        def target_global(expr: ast.AST) -> Optional[SharedGlobal]:
            parts = _dotted_parts(expr)
            if parts is None:
                return None
            if len(parts) == 1 and parts[0] in shadowed:
                return None
            return self.resolve_global(fn, parts)

        for node in walk_own(fn.node):
            # global NAME; NAME = ...  — rebinding process state
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id in declared_global:
                    shared = self.globals.get(
                        f"{fn.module.name}.{node.id}"
                    )
                    if shared is not None:
                        self._record_write(
                            shared, fn, node, f"global {node.id} rebound",
                            "rebind",
                        )
            # NAME[...] = / del NAME[...] / NAME[...] += ...
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                shared = target_global(node.value)
                if shared is not None:
                    self._record_write(
                        shared, fn, node, f"{_describe(node)} = ...", "item"
                    )
                self._record_attr_item_write(fn, node)
            # NAME.append(...) and friends
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr not in MUTATOR_NAMES:
                    continue
                shared = target_global(node.func.value)
                if shared is not None:
                    self._record_write(
                        shared, fn, node, f"{_describe(node.func)}(...)",
                        "mutator",
                    )
                self._record_attr_mutator(fn, node)

    def _record_write(
        self,
        shared: SharedGlobal,
        fn: FunctionInfo,
        node: ast.AST,
        what: str,
        kind: str,
    ) -> None:
        shared.writes.append(
            WriteSite(
                fn_qualname=fn.qualname,
                path=fn.module.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                what=what,
                kind=kind,
            )
        )

    # class-attribute mutation: self.X.append / Cls.X.append / Cls.X[k]=
    def _attr_target(
        self, fn: FunctionInfo, expr: ast.AST
    ) -> Optional[SharedClassAttr]:
        if not isinstance(expr, ast.Attribute):
            return None
        base, attr = expr.value, expr.attr
        ci = fn.class_info
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls") and ci is not None:
                return self.class_attrs.get(f"{ci.qualname}.{attr}")
            resolved = self.program.resolve_dotted(fn.module, [base.id])
            if isinstance(resolved, ClassInfo):
                return self.class_attrs.get(f"{resolved.qualname}.{attr}")
        return None

    def _record_attr_mutator(self, fn: FunctionInfo, node: ast.Call) -> None:
        attr = self._attr_target(fn, node.func.value)
        if attr is not None:
            attr.writes.append(
                WriteSite(
                    fn_qualname=fn.qualname,
                    path=fn.module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    what=f"{_describe(node.func)}(...)",
                    kind="mutator",
                )
            )

    def _record_attr_item_write(
        self, fn: FunctionInfo, node: ast.Subscript
    ) -> None:
        attr = self._attr_target(fn, node.value)
        if attr is not None:
            attr.writes.append(
                WriteSite(
                    fn_qualname=fn.qualname,
                    path=fn.module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    what=f"{_describe(node)} = ...",
                    kind="item",
                )
            )

    # -- reachability ----------------------------------------------------
    def _compute_reachability(self) -> None:
        for point in self.entrypoints:
            parents: Dict[str, Optional[str]] = {point.qualname: None}
            queue = [point.qualname]
            while queue:
                current = queue.pop(0)
                for callee in sorted(self.graph.edges.get(current, ())):
                    if callee not in parents:
                        parents[callee] = current
                        queue.append(callee)
            self.parents[point.qualname] = parents
            self.reachable[point.qualname] = set(parents)

    def roots_reaching(self, qualname: str) -> List[str]:
        """Entrypoints whose closure contains ``qualname``, sorted."""
        return sorted(
            entry for entry, closure in self.reachable.items()
            if qualname in closure
        )

    def chain(self, entry: str, qualname: str, limit: int = 16) -> str:
        """``entry -> ... -> qualname`` rendered with short tail names."""
        parents = self.parents.get(entry, {})
        names: List[str] = []
        current: Optional[str] = qualname
        while current is not None and len(names) < limit:
            names.append(current)
            current = parents.get(current)
        names.reverse()
        if not names:
            return qualname
        parts = [names[0]]
        parts.extend(name.rsplit(".", 1)[-1] for name in names[1:])
        return " -> ".join(parts)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _single_name_assign(
    node: ast.AST,
) -> Tuple[Optional[ast.Name], Optional[ast.expr]]:
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
        if isinstance(target, ast.Name):
            return target, node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        if isinstance(node.target, ast.Name):
            return node.target, node.value
    return None, None


def _mutable_ctor(value: ast.expr) -> Optional[str]:
    """A human label when ``value`` builds a mutable container, else None.

    Empty literals count (they are the memo-dict pattern); calls count when
    the callee is a known mutable constructor by (last) name.
    """
    if isinstance(value, ast.Dict):
        return "dict literal"
    if isinstance(value, ast.List):
        return "list literal"
    if isinstance(value, ast.Set):
        return "set literal"
    if isinstance(value, (ast.ListComp, ast.SetComp, ast.DictComp)):
        return f"{type(value).__name__}"
    if isinstance(value, ast.Call):
        name: Optional[str] = None
        if isinstance(value.func, ast.Name):
            name = value.func.id
        elif isinstance(value.func, ast.Attribute):
            name = value.func.attr
        if name in _MUTABLE_CTORS:
            return f"{name}()"
    return None


def _lock_ctor(value: ast.expr) -> Optional[bool]:
    """True/False (reentrant?) when ``value`` constructs a lock, else None."""
    if not isinstance(value, ast.Call):
        return None
    name: Optional[str] = None
    if isinstance(value.func, ast.Name):
        name = value.func.id
    elif isinstance(value.func, ast.Attribute):
        name = value.func.attr
    if name in _LOCK_CTORS:
        return _LOCK_CTORS[name]
    return None


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _describe(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our inputs
        return "<expr>"


# ---------------------------------------------------------------------------
# the --race-report footprint table
# ---------------------------------------------------------------------------


def render_race_report(model: RaceModel, blocking_by_module=None) -> str:
    """Per-module shared-state footprint: the de-globalization worklist.

    ``blocking_by_module`` is the RACE002 rule's {module name: count} of
    entrypoint-reachable blocking call sites (defaults to what the last
    engine run recorded on the model).
    """
    if blocking_by_module is None:
        blocking_by_module = model.blocking_by_module
    rows: Dict[str, List[int]] = {}

    def row(module_name: str) -> List[int]:
        # [globals, guarded, written-post-init, escaped, blocking]
        return rows.setdefault(module_name, [0, 0, 0, 0, 0])

    for shared in model.globals.values():
        if not (shared.mutable or shared.writes):
            continue  # an untouched immutable binding is not shared state
        counters = row(shared.module.name)
        counters[0] += 1
        if shared.guard is not None:
            counters[1] += 1
        if shared.writes:
            counters[2] += 1
        if shared.escapes:
            counters[3] += 1
    for attr in model.class_attrs.values():
        if attr.rebound_in_init or not attr.writes:
            continue
        counters = row(attr.module.name)
        counters[0] += 1
        if attr.guard is not None:
            counters[1] += 1
        counters[2] += 1
    for module_name, count in blocking_by_module.items():
        row(module_name)[4] += count

    lines = [
        "fluxrace shared-state footprint — "
        f"{len(model.program.modules)} module(s), "
        f"{len(model.entrypoints)} service entrypoint(s)",
        "",
        f"{'module':<44} {'globals':>7} {'guarded':>7} "
        f"{'written':>7} {'escaped':>7} {'blocking':>8}",
    ]
    interesting = {
        name: counters
        for name, counters in rows.items()
        if any(counters)
    }
    for name in sorted(
        interesting,
        key=lambda n: (-(interesting[n][2] + interesting[n][4]), n),
    ):
        g, gd, w, e, b = interesting[name]
        lines.append(
            f"{name:<44} {g:>7} {gd:>7} {w:>7} {e:>7} {b:>8}"
        )
    if not interesting:
        lines.append("(no shared mutable state found)")
    lines.append("")
    lines.append("entrypoints:")
    for point in model.entrypoints:
        kind = f" [{point.kind}]" if point.kind else ""
        lines.append(f"  {point.qualname}{kind}")
    for missing in model.missing_entrypoints:
        lines.append(f"  {missing} (NOT FOUND in the analyzed tree)")
    return "\n".join(lines)
