"""fluxrace: whole-program concurrency-readiness analysis.

Before ROADMAP item 1 wraps :class:`~repro.sched.simulator.ClusterSimulator`
in a long-running multi-tenant service, fluxrace answers mechanically:
*what state is shared, and who guards it?*  It joins the checked-in
service-entrypoint manifest (``statcheck-entrypoints.json``) with the
fluxflow call graph and escape summaries, and runs the RACE001-004 rules
(see docs/static_analysis.md).  ``statcheck-race-baseline.json`` is the
ranked de-globalization worklist for the service PR.
"""

from .model import (
    DEFAULT_ENTRYPOINTS,
    ENTRYPOINTS_VERSION,
    EntryPoint,
    RaceModel,
    SharedClassAttr,
    SharedGlobal,
    load_entrypoints,
    render_race_report,
)
from .rules import (
    RaceContext,
    RaceEngine,
    RaceRule,
    all_race_rules,
    register_race_rule,
)

__all__ = [
    "DEFAULT_ENTRYPOINTS",
    "ENTRYPOINTS_VERSION",
    "EntryPoint",
    "RaceModel",
    "SharedClassAttr",
    "SharedGlobal",
    "load_entrypoints",
    "render_race_report",
    "RaceContext",
    "RaceEngine",
    "RaceRule",
    "all_race_rules",
    "register_race_rule",
]
