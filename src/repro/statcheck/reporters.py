"""fluxlint output renderers: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Dict, List

from .core import Violation, all_rules

__all__ = ["render_text", "render_json"]


def render_text(
    violations: List[Violation], files_checked: int, show_summary: bool = True
) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [violation.render() for violation in violations]
    if show_summary:
        if violations:
            by_rule: Dict[str, int] = {}
            for violation in violations:
                by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
            breakdown = ", ".join(
                f"{rule}:{count}" for rule, count in sorted(by_rule.items())
            )
            lines.append(
                f"fluxlint: {len(violations)} violation(s) in "
                f"{files_checked} file(s) [{breakdown}]"
            )
        else:
            lines.append(f"fluxlint: OK ({files_checked} file(s) clean)")
    return "\n".join(lines)


def render_json(violations: List[Violation], files_checked: int) -> str:
    """A stable JSON document for CI annotation tooling."""
    registry = all_rules()
    payload = {
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule,
                "summary": registry[violation.rule].summary
                if violation.rule in registry
                else "",
                "message": violation.message,
            }
            for violation in violations
        ],
        "files_checked": files_checked,
        "violation_count": len(violations),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
