"""fluxlint output renderers: human text, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import Dict, List

from .core import Violation, all_rules

__all__ = ["render_text", "render_json", "render_sarif", "SARIF_SCHEMA_URI"]

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"


def render_text(
    violations: List[Violation], files_checked: int, show_summary: bool = True
) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [violation.render() for violation in violations]
    if show_summary:
        if violations:
            by_rule: Dict[str, int] = {}
            for violation in violations:
                by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
            breakdown = ", ".join(
                f"{rule}:{count}" for rule, count in sorted(by_rule.items())
            )
            lines.append(
                f"fluxlint: {len(violations)} violation(s) in "
                f"{files_checked} file(s) [{breakdown}]"
            )
        else:
            lines.append(f"fluxlint: OK ({files_checked} file(s) clean)")
    return "\n".join(lines)


def render_json(violations: List[Violation], files_checked: int) -> str:
    """A stable JSON document for CI annotation tooling."""
    catalogue = _rule_catalogue()
    payload = {
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule,
                "summary": catalogue.get(violation.rule, ""),
                "message": violation.message,
            }
            for violation in violations
        ],
        "files_checked": files_checked,
        "violation_count": len(violations),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_catalogue() -> Dict[str, str]:
    """Every known rule id -> one-line summary (lint + flow + perf + race)."""
    catalogue = {
        rule_id: rule_cls.summary for rule_id, rule_cls in all_rules().items()
    }
    from .flow.analyses import all_flow_analyses
    from .hot import all_perf_rules
    from .race import all_race_rules

    for rule_id, analysis_cls in all_flow_analyses().items():
        catalogue[rule_id] = analysis_cls.summary
    for rule_id, perf_cls in all_perf_rules().items():
        catalogue[rule_id] = perf_cls.summary
    for rule_id, race_cls in all_race_rules().items():
        catalogue[rule_id] = race_cls.summary
    return catalogue


def render_sarif(violations: List[Violation], files_checked: int = 0) -> str:
    """A minimal SARIF 2.1.0 log: one run, one result per violation.

    The document carries the pieces CI code-scanning upload endpoints
    require: ``$schema``/``version``, a tool driver with a rule catalogue,
    and per-result ``ruleId`` + physical location (1-based line/column;
    SARIF columns are 1-based while our columns are 0-based AST offsets).
    """
    catalogue = _rule_catalogue()
    used = sorted({violation.rule for violation in violations})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": catalogue.get(rule_id, rule_id)},
        }
        for rule_id in used
    ]
    rule_index = {rule_id: index for index, rule_id in enumerate(used)}
    results = [
        {
            "ruleId": violation.rule,
            "ruleIndex": rule_index[violation.rule],
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        for violation in violations
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "fluxlint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "properties": {"filesChecked": files_checked},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
