"""statcheck: project-specific static analysis (fluxlint) + runtime sanitizer (FluxSan).

PRs 1-2 made the scheduler crash-consistent; correctness of recovery replay
rests on three whole-codebase invariants:

* **determinism** — no wall-clock reads or unseeded randomness on any code
  path that feeds scheduler state (replay re-executes journaled commands and
  must reproduce identical decisions);
* **journaling** — every state mutation in a simulator command handler is
  appended to the write-ahead journal *before* it is applied;
* **span safety** — planner spans are freed exactly once, exclusive holds
  never overlap, and the pruning filters (SDFU) never diverge from the
  allocations that fed them.

Example-based tests cannot enforce these across ~50 modules, so this package
checks them mechanically:

* :mod:`repro.statcheck.core` / :mod:`repro.statcheck.rules` — **fluxlint**,
  an AST lint engine with project-specific rules (DET001, EXC001, FLT001,
  MUT001, JRN001, API001), per-line suppression via
  ``# fluxlint: disable=RULE`` and text/JSON reporters.  Run it with
  ``python -m repro.statcheck src/repro``.
* :mod:`repro.statcheck.sanitizer` — **FluxSan**, an opt-in runtime
  sanitizer (``FLUXSAN=1`` or ``ClusterSimulator(..., sanitize=True)``)
  that wraps the Planner/PlannerMulti/graph/traverser hot paths with
  checking proxies: span double-free, overlapping exclusive holds, SDFU
  divergence from ground truth, and a dual-run nondeterminism detector.

See ``docs/static_analysis.md`` for the rule catalogue and suppression
policy.
"""

from __future__ import annotations

from .core import (
    LintEngine,
    LintParseError,
    LintRule,
    SourceModule,
    Violation,
    all_rules,
    lint_paths,
    lint_source,
    register_rule,
)
from .reporters import render_json, render_sarif, render_text
from .sanitizer import DualRunReport, FluxSan, dual_run

# Importing the rules module populates the registry as a side effect.
from . import rules as _rules  # noqa: F401  (registration import)

# The flow package registers the interprocedural analyses (SPAN001,
# DET002, EXC002, JRN002) on import.
from .cache import LintCache
from .flow import (
    FlowEngine,
    all_flow_analyses,
    analyze_sources,
    register_flow_analysis,
)

# The race package registers the concurrency-readiness rules
# (RACE001-RACE004) on import.
from .race import RaceEngine, all_race_rules, render_race_report

__all__ = [
    "LintEngine",
    "LintParseError",
    "LintRule",
    "SourceModule",
    "Violation",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_text",
    "render_json",
    "render_sarif",
    "LintCache",
    "FlowEngine",
    "all_flow_analyses",
    "analyze_sources",
    "register_flow_analysis",
    "RaceEngine",
    "all_race_rules",
    "render_race_report",
    "FluxSan",
    "DualRunReport",
    "dual_run",
]
