"""The fluxlint rule catalogue.

Each rule enforces one invariant the recovery/resilience layers depend on;
the rationale for every rule lives in docs/static_analysis.md.  Rules are
deliberately conservative: they aim for zero false positives on this
codebase and accept missing exotic violations — a lint that cries wolf gets
suppressed wholesale.

========  ==============================================================
DET001    no wall-clock reads or unseeded RNG (breaks recovery replay)
EXC001    no broad exception handlers that can swallow or starve
          ``SimulatedCrash`` (a ``BaseException``)
FLT001    no ``==``/``!=`` on float-typed times (use repro.epsilon)
MUT001    no mutable default arguments
JRN001    simulator command handlers journal before they mutate
INT001    repair-engine mutations of scheduler state go through a
          journaled repair action (replay must regenerate repairs)
API001    public functions in core modules carry full type hints
OBS001    instrumentation goes through ``repro.obs``: no raw timer
          reads or hand-rolled stats-dict counters elsewhere
OBS002    prune/outcome bookkeeping goes through the decision
          recorder (``obs.why``), not ad-hoc accumulators
OVL001    overload-control signals (``AdmissionRejected``,
          ``SchedulingDeadlineExceeded``) are only absorbed by the
          overload machinery itself; everywhere else must re-raise
========  ==============================================================
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .core import LintRule, register_rule

__all__ = [
    "WallClockRule",
    "ExceptionSwallowRule",
    "FloatTimeEqualityRule",
    "MutableDefaultRule",
    "JournalBeforeMutateRule",
    "JournaledRepairRule",
    "TypeHintRule",
    "ObservabilityFunnelRule",
    "DecisionProvenanceRule",
    "OverloadSignalSwallowRule",
]


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class _ImportTracker:
    """Resolves local names back to the modules/objects they were imported as."""

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> imported module dotted name ("np" -> "numpy")
        self.modules: Dict[str, str] = {}
        #: local alias -> (module, original name) for from-imports
        self.names: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def resolve_call(self, func: ast.AST) -> Optional[Tuple[str, str]]:
        """Resolve a call target to ``(module, dotted attr)``.

        ``np.random.seed`` with ``import numpy as np`` resolves to
        ``("numpy", "random.seed")``; ``now()`` after ``from datetime import
        datetime as now``... does not arise — from-imported *names* resolve
        to ``(module, name)`` with any trailing attributes appended.
        """
        parts = _dotted_parts(func)
        if not parts:
            return None
        head, rest = parts[0], parts[1:]
        if head in self.modules:
            return self.modules[head], ".".join(rest)
        if head in self.names:
            module, original = self.names[head]
            return module, ".".join([original] + rest)
        return None


@register_rule
class WallClockRule(LintRule):
    """DET001: recovery replay re-executes journaled commands and must make
    byte-identical decisions; any wall-clock read or unseeded RNG on a
    scheduler code path diverges on replay."""

    rule_id = "DET001"
    summary = "wall-clock read or unseeded RNG breaks deterministic replay"

    _TIME_FNS = {
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "clock",
    }
    _DATETIME_FNS = {
        "datetime.now", "datetime.utcnow", "datetime.today",
        "date.today", "now", "utcnow", "today",
    }
    # random-module attributes that are *safe* to call: seeded-instance
    # construction and non-RNG helpers.
    _RANDOM_SAFE = {"Random", "getstate", "setstate"}
    _NUMPY_GLOBAL_FNS = {
        "random", "rand", "randn", "randint", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "uniform",
        "normal", "poisson", "exponential", "standard_normal", "bytes",
    }

    def visit_Call(self, node: ast.Call) -> None:
        self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.Call) -> None:
        tracker = self._tracker()
        resolved = tracker.resolve_call(node.func)
        if resolved is None:
            return
        module, attr = resolved
        if module == "time" and attr in self._TIME_FNS:
            self.report(
                node,
                f"wall-clock read time.{attr}() is not replayable; derive "
                "times from simulator state or suppress for observability-"
                "only metrics",
            )
        elif module == "datetime" and attr in self._DATETIME_FNS:
            self.report(
                node,
                f"wall-clock read datetime {attr}() is not replayable",
            )
        elif module == "random":
            first = attr.split(".")[0]
            if first in self._RANDOM_SAFE:
                if first == "Random" and not (node.args or node.keywords):
                    self.report(
                        node,
                        "random.Random() without a seed is nondeterministic; "
                        "pass an explicit seed",
                    )
            elif "." not in attr:
                self.report(
                    node,
                    f"random.{attr}() uses the unseeded global RNG; use a "
                    "seeded random.Random(seed) instance",
                )
        elif module == "numpy":
            if attr == "random.default_rng" and not (node.args or node.keywords):
                self.report(
                    node,
                    "numpy.random.default_rng() without a seed is "
                    "nondeterministic; pass an explicit seed",
                )
            elif (
                attr.startswith("random.")
                and attr.split(".")[1] in self._NUMPY_GLOBAL_FNS
            ):
                self.report(
                    node,
                    f"numpy.{attr}() uses the unseeded global RNG; use "
                    "numpy.random.default_rng(seed)",
                )

    def _tracker(self) -> _ImportTracker:
        tracker = getattr(self, "_tracker_cache", None)
        if tracker is None:
            tracker = _ImportTracker(self.module.tree)
            self._tracker_cache = tracker
        return tracker


def _handler_catches(handler: ast.ExceptHandler, name: str) -> bool:
    """True when the handler's type spec names ``name`` (directly or in a tuple)."""
    spec = handler.type
    if spec is None:
        return False
    specs = spec.elts if isinstance(spec, ast.Tuple) else [spec]
    for entry in specs:
        if isinstance(entry, ast.Name) and entry.id == name:
            return True
        if isinstance(entry, ast.Attribute) and entry.attr == name:
            return True
    return False


def _has_bare_reraise(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains a top-level bare ``raise``."""
    return any(
        isinstance(stmt, ast.Raise) and stmt.exc is None
        for stmt in handler.body
    )


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing observable (pass/.../continue)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare literal
        if isinstance(stmt, ast.Continue):
            continue
        return False
    return True


@register_rule
class ExceptionSwallowRule(LintRule):
    """EXC001: ``SimulatedCrash`` derives from ``BaseException`` so that
    cleanup written as ``except Exception`` cannot eat it — but handlers
    broad enough to catch it (bare / BaseException) must re-raise, and
    cleanup-then-reraise handlers must catch BaseException or the cleanup
    is silently skipped when the crash fires mid-block."""

    rule_id = "EXC001"
    summary = "broad exception handler can swallow or starve SimulatedCrash"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        bare = node.type is None
        catches_base = _handler_catches(node, "BaseException")
        catches_exc = _handler_catches(node, "Exception")
        if bare or catches_base:
            if not _has_bare_reraise(node):
                what = "bare except:" if bare else "except BaseException:"
                self.report(
                    node,
                    f"{what} can swallow SimulatedCrash; re-raise with a "
                    "bare `raise` or narrow the handler",
                )
        elif catches_exc:
            if _swallows(node):
                self.report(
                    node,
                    "except Exception: pass silently discards failures "
                    "adjacent to SimulatedCrash; handle or narrow it",
                )
            elif _has_bare_reraise(node) and len(node.body) > 1:
                self.report(
                    node,
                    "cleanup-then-reraise must catch BaseException, not "
                    "Exception: a SimulatedCrash here would skip the cleanup "
                    "and leak partially-applied state",
                )
        self.generic_visit(node)


@register_rule
class FloatTimeEqualityRule(LintRule):
    """FLT001: float-typed times (``sched_time`` and friends are wall-clock
    accumulations) must not be compared with ``==``/``!=`` — rounding makes
    the result platform-dependent.  Use :mod:`repro.epsilon` helpers."""

    rule_id = "FLT001"
    summary = "exact equality on float-typed times; use repro.epsilon"

    #: attribute/variable names known to hold float times in this codebase
    _FLOAT_TIME_NAMES = {
        "sched_time", "total_sched_time", "mttr_observed",
        "mean_wait", "mean_response", "avg_wait",
    }

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if self._is_float_time(left) or self._is_float_time(right):
                self.report(
                    node,
                    "== / != on a float-typed time is not portable; use "
                    "repro.epsilon.approx_eq / approx_zero",
                )
                break
        self.generic_visit(node)

    def _is_float_time(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "float":
                return True
            name = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else getattr(node.func, "id", None)
            )
            return name in self._FLOAT_TIME_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in self._FLOAT_TIME_NAMES
        if isinstance(node, ast.Name):
            return node.id in self._FLOAT_TIME_NAMES
        return False


@register_rule
class MutableDefaultRule(LintRule):
    """MUT001: a mutable default argument is shared across calls — in a
    simulator that replays commands this aliases state between the control
    run and the replay, corrupting both."""

    rule_id = "MUT001"
    summary = "mutable default argument"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.AST) -> None:
        args = node.args
        for default in list(args.defaults) + list(args.kw_defaults):
            if default is None:
                continue
            if self._is_mutable(default):
                label = getattr(node, "name", "<lambda>")
                self.report(
                    default,
                    f"mutable default argument in {label}(); default to None "
                    "and allocate inside the body",
                )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False


@register_rule
class JournalBeforeMutateRule(LintRule):
    """JRN001: write-ahead discipline in the simulator.

    Within ``sched/simulator.py``, every top-level command handler must
    append to the journal (``self._journal(...)``) and the append must come
    before the first mutation of simulator state — otherwise a crash between
    the mutation and the append loses the command and replay diverges.

    Checked mechanically: in the class that defines ``_journal``, (a) the
    handlers in :attr:`REQUIRED_HANDLERS` must contain a ``self._journal``
    call, and (b) in *any* method calling ``self._journal``, no statement
    before the first call may assign to ``self.<attr>`` (or a subscript of
    one) or invoke a known mutator rooted at ``self``.
    """

    rule_id = "JRN001"
    summary = "simulator command handler mutates state before journaling"

    REQUIRED_HANDLERS = {
        "submit", "cancel", "schedule_failure", "schedule_repair",
        "fail", "repair", "reschedule", "step", "inject_corruption",
    }
    _MUTATOR_NAMES = {
        "append", "add", "pop", "popleft", "push", "clear", "remove",
        "discard", "update", "extend", "insert", "setdefault",
        "transition", "mark_down", "mark_up", "heappush", "heappop",
        "_push", "_cycle", "_kill", "_dispatch", "record",
    }

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return path.endswith("sched/simulator.py")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "_journal" not in methods:
            self.generic_visit(node)
            return
        for name, method in methods.items():
            if name == "_journal":
                continue
            journal_call = self._first_journal_call(method)
            if name in self.REQUIRED_HANDLERS and journal_call is None:
                self.report(
                    method,
                    f"command handler {name}() never journals; append the "
                    "command with self._journal(...) before mutating state",
                )
                continue
            if journal_call is None:
                continue
            early = self._first_mutation_before(method, journal_call.lineno)
            if early is not None:
                self.report(
                    early,
                    f"{name}() mutates simulator state on line {early.lineno} "
                    f"before journaling on line {journal_call.lineno}; a "
                    "crash in between loses the command (write-ahead order)",
                )
        # Class bodies never nest another simulator here; no generic_visit
        # so nested defs are not double-walked.

    # -- helpers -------------------------------------------------------
    def _first_journal_call(self, method: ast.AST) -> Optional[ast.Call]:
        calls = [
            node
            for node in ast.walk(method)
            if isinstance(node, ast.Call) and self._is_self_call(node, "_journal")
        ]
        return min(calls, key=lambda c: c.lineno, default=None)

    def _is_self_call(self, node: ast.Call, name: str) -> bool:
        func = node.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == name
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        )

    def _rooted_at_self(self, node: ast.AST) -> bool:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and node.id == "self"

    def _first_mutation_before(
        self, method: ast.AST, journal_line: int
    ) -> Optional[ast.AST]:
        for node in ast.walk(method):
            if getattr(node, "lineno", journal_line) >= journal_line:
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) and (
                        self._rooted_at_self(target)
                    ):
                        return node
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._MUTATOR_NAMES
                ):
                    if self._rooted_at_self(func.value) or any(
                        self._rooted_at_self(arg) for arg in node.args
                    ):
                        return node
        return None


@register_rule
class JournaledRepairRule(LintRule):
    """INT001: repairs mutate scheduler state only via journaled actions.

    Within ``recovery/repair.py``, any function that mutates graph, planner
    or allocation state — a call to a known state mutator (``add_span``,
    ``rem_span``, ``rebuild``, ``mark_down``, ...) or an assignment to an
    attribute/subscript *not* rooted at ``self`` (the engine's own
    bookkeeping is exempt) — must call ``self._journal_action(...)`` on an
    earlier line of the same function.  Un-journaled repairs are invisible
    to replay: a recovered simulator would re-diverge at exactly the state
    the repair was supposed to fix.
    """

    rule_id = "INT001"
    summary = "repair mutates scheduler state without journaling the action"

    #: state mutators specific enough to repair targets that a call is a
    #: mutation; generic container verbs (pop/clear/remove) are excluded
    #: to keep the rule zero-false-positive on bookkeeping code
    _MUTATOR_NAMES = {
        "add_span", "rem_span", "update_span_end", "rebuild", "reset",
        "resize", "import_state", "install_allocation", "mark_down",
        "mark_up", "_kill", "transition",
    }

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return path.endswith("recovery/repair.py")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)

    def _check(self, node: ast.AST) -> None:
        if getattr(node, "name", "") == "_journal_action":
            return  # the journaling primitive itself writes the record
        journal_line = None
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else None
            )
            if name == "_journal_action":
                if journal_line is None or sub.lineno < journal_line:
                    journal_line = sub.lineno
        mutation = self._first_mutation(node)
        if mutation is None:
            return
        if journal_line is None:
            self.report(
                mutation,
                "repair mutates scheduler state on line "
                f"{mutation.lineno} without any _journal_action() call; "
                "journal the repair action first so replay regenerates it",
            )
        elif mutation.lineno < journal_line:
            self.report(
                mutation,
                f"repair mutates scheduler state on line {mutation.lineno} "
                f"before journaling on line {journal_line}; a crash in "
                "between leaves an unjournaled, unreplayable repair",
            )

    def _first_mutation(self, node: ast.AST) -> Optional[ast.AST]:
        found = None
        for sub in ast.walk(node):
            lineno = getattr(sub, "lineno", None)
            if lineno is None:
                continue
            if found is not None and lineno >= found.lineno:
                continue
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    if self._foreign_attribute_target(target):
                        found = sub
                        break
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._MUTATOR_NAMES
                ):
                    found = sub
        return found

    def _foreign_attribute_target(self, node: ast.AST) -> bool:
        """True for ``other.attr[...] = ...`` where ``other`` is not self.

        Plain subscripts of local names (``table[key] = v``) are local
        bookkeeping, not scheduler state, and are left alone.
        """
        has_attribute = False
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                has_attribute = True
            node = node.value
        return (
            has_attribute
            and isinstance(node, ast.Name)
            and node.id != "self"
        )


@register_rule
class ObservabilityFunnelRule(LintRule):
    """OBS001: instrumentation must funnel through :mod:`repro.obs`.

    Two patterns used to be scattered across the codebase and are now
    centralized: raw ``time.perf_counter()``-style wall-clock timing (the
    audited shim is :func:`repro.obs.clock.wall_now` / ``WallTimer``) and
    hand-rolled ``stats["key"] += n`` counter dicts (the replacement is a
    :class:`repro.obs.MetricsRegistry` counter).  Scattered instrumentation
    drifts: each site needs its own DET001 audit, and ad-hoc dicts never
    reach trace exports or ``repro.obs report``.
    """

    rule_id = "OBS001"
    summary = "raw timer read or stats-dict counter outside repro.obs"

    #: every ``time`` module entry point that reads a clock
    _TIMER_FNS = {
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
        "thread_time", "thread_time_ns", "clock",
    }

    @classmethod
    def applies_to(cls, path: str) -> bool:
        # repro.obs itself is the one place allowed to touch raw clocks
        # and accumulator internals.
        return "repro/" in path and "repro/obs/" not in path

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._tracker().resolve_call(node.func)
        if resolved is not None:
            module, attr = resolved
            if module == "time" and attr in self._TIMER_FNS:
                self.report(
                    node,
                    f"raw time.{attr}() bypasses the observability layer; "
                    "use repro.obs.wall_now()/WallTimer (audited clock shim) "
                    "or a MetricsRegistry histogram",
                )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Subscript) and self._is_stats_dict(
            target.value
        ):
            self.report(
                node,
                "manual stats-dict increment; register a counter on a "
                "repro.obs MetricsRegistry so it reaches trace exports "
                "and `python -m repro.obs report`",
            )
        self.generic_visit(node)

    def _is_stats_dict(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id == "stats"
        if isinstance(node, ast.Attribute):
            return node.attr == "stats"
        return False

    def _tracker(self) -> _ImportTracker:
        tracker = getattr(self, "_tracker_cache", None)
        if tracker is None:
            tracker = _ImportTracker(self.module.tree)
            self._tracker_cache = tracker
        return tracker


@register_rule
class DecisionProvenanceRule(LintRule):
    """OBS002: prune/outcome bookkeeping belongs to the decision recorder.

    The fluxwhy recorder (:mod:`repro.obs.why`) is the single store for
    match-failure attribution: per-vertex prune tallies, failure reasons,
    and attempt outcomes.  A shadow accumulator like
    ``prune_counts[reason] += 1`` or ``fail_reasons.append(...)`` outside
    ``repro/obs/`` never reaches ``report.explain()`` or
    ``python -m repro.obs why``, and its reason strings drift from the
    audited :data:`repro.obs.why.PRUNE_REASONS` taxonomy — so any mutation
    of a provenance-named accumulator is flagged.  Only compound names
    (a prune/outcome/fail/verdict noun plus a counter-ish suffix) match;
    domain state such as ``prune_types`` membership sets or the circuit
    breaker's ``_outcomes`` window is left alone.
    """

    rule_id = "OBS002"
    summary = "ad-hoc prune/outcome bookkeeping outside repro.obs"

    #: ``prune_counts``, ``outcome_tally``, ``fail_reasons``, ``verdict_log``…
    _BOOKKEEPING = re.compile(
        r"(?:^|_)(?:prune|outcome|verdict|fail(?:ure)?)s?_"
        r"(?:count|reason|stat|tally|log|hist|bucket)s?$"
    )
    #: mutators that grow an accumulator in place
    _MUTATORS = {"append", "add", "setdefault", "update", "extend"}

    @classmethod
    def applies_to(cls, path: str) -> bool:
        # the recorder itself is the one place allowed to keep these
        return "repro/" in path and "repro/obs/" not in path

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Subscript) and self._is_bookkeeping(
            target.value
        ):
            self._flag(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._MUTATORS
            and self._is_bookkeeping(func.value)
        ):
            self._flag(node)
        self.generic_visit(node)

    def _is_bookkeeping(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return False
        return self._BOOKKEEPING.search(name.lower()) is not None

    def _flag(self, node: ast.AST) -> None:
        self.report(
            node,
            "prune/outcome bookkeeping outside repro.obs; record it via "
            "the decision recorder (obs.why.prune()/fail()/end_attempt()) "
            "so it reaches report.explain() and `python -m repro.obs why`",
        )


@register_rule
class TypeHintRule(LintRule):
    """API001: public functions in the core layers (planner, match, sched,
    resource, recovery, resilience) are the recovery layer's serialization
    surface — they must carry full type hints so state documents and their
    producers cannot drift apart silently."""

    rule_id = "API001"
    summary = "public core-module function missing type hints"

    _CORE_PACKAGES = (
        "planner", "match", "sched", "resource", "recovery", "resilience",
    )

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return any(
            f"repro/{package}/" in path for package in cls._CORE_PACKAGES
        )

    def __init__(self, module: "SourceModule") -> None:  # noqa: F821
        super().__init__(module)
        self._class_stack: List[str] = []
        self._function_depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def _check(self, node: ast.AST) -> None:
        if self._function_depth:
            return  # nested helper functions are private by construction
        name = node.name
        if name.startswith("_") and name != "__init__":
            return
        if any(cls.startswith("_") for cls in self._class_stack):
            return
        in_class = bool(self._class_stack)
        missing: List[str] = []
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if in_class and positional and not self._is_static(node):
            positional = positional[1:]  # self / cls
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                missing.append(f"parameter {arg.arg!r}")
        if node.returns is None and name != "__init__":
            missing.append("return type")
        if missing:
            self.report(
                node,
                f"public function {name}() missing type hints: "
                + ", ".join(missing),
            )

    def _is_static(self, node: ast.AST) -> bool:
        return any(
            isinstance(dec, ast.Name) and dec.id == "staticmethod"
            for dec in node.decorator_list
        )


@register_rule
class OverloadSignalSwallowRule(LintRule):
    """OVL001: overload-control signals are scheduling *decisions*, not
    failures.  :class:`~repro.errors.AdmissionRejected` and
    :class:`~repro.errors.SchedulingDeadlineExceeded` (and their
    :class:`~repro.errors.OverloadError` base) are raised by the admission
    controller and work budgets so the overload machinery can route to a
    degraded path or surface backpressure to the submitter.  A handler
    elsewhere that catches one and does not re-raise converts a deliberate
    shed/deadline verdict into a silent no-op — the job vanishes from the
    accounting and the degradation ladder never sees the pressure.  Only
    the overload package itself (``repro/resilience/``), the budget-aware
    traverser, the simulator dispatch loop and the integrity scrubber
    (whose private scrub budget bounds a scan, not a scheduling decision)
    may absorb them."""

    rule_id = "OVL001"
    summary = "handler swallows an overload-control signal"

    _SIGNALS = (
        "OverloadError",
        "AdmissionRejected",
        "SchedulingDeadlineExceeded",
    )
    _ABSORBERS = (
        "repro/resilience/",
        "repro/match/traverser.py",
        "repro/sched/simulator.py",
        # The integrity scrubber runs under its own WorkBudget; an exhausted
        # scrub budget ends the pass early (cursor keeps its place), it is
        # not a scheduling verdict.
        "repro/recovery/integrity.py",
    )

    @classmethod
    def applies_to(cls, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return not any(part in normalized for part in cls._ABSORBERS)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        for name in self._SIGNALS:
            if _handler_catches(node, name) and not _has_bare_reraise(node):
                self.report(
                    node,
                    f"except {name}: outside the overload machinery must "
                    "re-raise with a bare `raise`; swallowing it here turns "
                    "a deliberate admission/deadline verdict into silent "
                    "job loss",
                )
                break
        self.generic_visit(node)
