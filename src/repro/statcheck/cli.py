"""fluxlint / fluxflow / FluxSan command line: ``python -m repro.statcheck``.

Exit codes follow the usual lint convention:

* ``0`` — no violations (or the dual run was deterministic);
* ``1`` — violations found / dual run diverged;
* ``2`` — usage error, unreadable input, or a file that does not parse.

Examples::

    python -m repro.statcheck src/repro              # lint the tree
    python -m repro.statcheck --flow src/repro       # + interprocedural
    python -m repro.statcheck --flow --baseline statcheck-baseline.json src/repro
    python -m repro.statcheck --format sarif --output lint.sarif src/repro
    python -m repro.statcheck --jobs 4 --cache src/  # parallel + cached
    python -m repro.statcheck --changed-only src/    # pre-commit speed
    python -m repro.statcheck --select DET001 src/   # one rule only
    python -m repro.statcheck --list-rules
    python -m repro.statcheck --dual-run tiny        # FluxSan determinism
    python -m repro.statcheck --perf src/repro       # profile-guided PRF rules
    python -m repro.statcheck hotprofile             # regenerate the manifest
    python -m repro.statcheck --race src/repro       # concurrency readiness
    python -m repro.statcheck --race --race-report fluxrace-report.txt src/repro
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import Callable, List, Optional, Set, Tuple

from ..errors import FluxionError, SanitizerError
from .core import LintEngine, LintParseError, Violation, all_rules
from .reporters import render_json, render_sarif, render_text
from .sanitizer import FluxSan, dual_run

__all__ = ["main", "build_preset_simulator", "DUAL_RUN_PRESETS"]


def build_preset_simulator(preset: str) -> "object":
    """Build a fully loaded simulator for one GRUG preset workload.

    The factory is deterministic by construction (seeded trace, seeded
    preset) — exactly what the dual-run detector requires.
    """
    from ..grug import tiny_cluster
    from ..sched.simulator import ClusterSimulator
    from ..workloads.trace import synthetic_trace

    if preset == "tiny":
        graph = tiny_cluster()
        trace = synthetic_trace(
            n_jobs=24, seed=7, max_nodes=4, min_duration=60,
            max_duration=1800, arrival_spread=600,
        )
    elif preset == "tiny-faulty":
        graph = tiny_cluster()
        trace = synthetic_trace(
            n_jobs=16, seed=11, max_nodes=4, min_duration=60,
            max_duration=900, arrival_spread=400,
        )
    else:
        raise FluxionError(
            f"unknown dual-run preset {preset!r}; "
            f"known: {sorted(DUAL_RUN_PRESETS)}"
        )
    sim = ClusterSimulator(graph, match_policy="first", queue="conservative")
    for job in trace:
        sim.submit(job.to_jobspec(), at=job.submit_time)
    if preset == "tiny-faulty":
        nodes = graph.find(type="node")
        sim.schedule_failure(nodes[0], at=300)
        sim.schedule_repair(nodes[0], at=700)
    return sim


DUAL_RUN_PRESETS = ("tiny", "tiny-faulty")


def _run_dual(preset: str, out: Callable[[str], None]) -> int:
    factory = lambda: build_preset_simulator(preset)  # noqa: E731
    with FluxSan():
        try:
            report = dual_run(factory, raise_on_divergence=False)
        except SanitizerError as exc:
            out(f"fluxsan: {exc}")
            return 1
    out(f"fluxsan [{preset}]: {report.summary()}")
    return 0 if report.ok else 1


def _list_rules(out: Callable[[str], None]) -> int:
    from .flow.analyses import all_flow_analyses
    from .hot import all_perf_rules
    from .race import all_race_rules

    groups = (
        ("fluxlint AST rules (always on)", all_rules()),
        ("fluxflow interprocedural analyses (--flow)", all_flow_analyses()),
        ("fluxhot profile-guided perf rules (--perf)", all_perf_rules()),
        ("fluxrace concurrency-readiness rules (--race)", all_race_rules()),
    )
    for title, registry in groups:
        out(f"{title}:")
        for rule_id, rule_cls in sorted(registry.items()):
            out(f"  {rule_id}  {rule_cls.summary}")
        out("")
    out("FluxSan runtime sanitizer (--dual-run PRESET / FLUXSAN=1):")
    out("  span double-free, exclusive-overlap, SDFU divergence, graph")
    out("  status sanity, dual-run nondeterminism (runtime checks; no")
    out("  static rule ids)")
    return 0


def _changed_files() -> Set[str]:
    """Absolute paths of files changed vs ``git merge-base HEAD main``,
    plus untracked files — the ``--changed-only`` working set."""

    def git(*argv: str) -> str:
        proc = subprocess.run(
            ("git",) + argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        if proc.returncode != 0:
            raise FluxionError(
                f"git {' '.join(argv)} failed: {proc.stderr.strip() or 'unknown error'}"
            )
        return proc.stdout

    toplevel = git("rev-parse", "--show-toplevel").strip()
    base = git("merge-base", "HEAD", "main").strip()
    changed = git("diff", "--name-only", base).splitlines()
    untracked = git("ls-files", "--others", "--exclude-standard").splitlines()
    return {
        os.path.realpath(os.path.join(toplevel, rel))
        for rel in changed + untracked
        if rel.strip()
    }


def _split_select(
    raw: Optional[str],
    flow_enabled: bool,
    role: str = "select",
    perf_enabled: bool = False,
    race_enabled: bool = False,
) -> Tuple[
    Optional[List[str]],
    Optional[List[str]],
    Optional[List[str]],
    Optional[List[str]],
]:
    """Split a ``--select``/``--ignore`` list into (lint, flow, perf, race)
    ids.

    Unknown ids raise; *selecting* a flow/perf/race id without ``--flow``/
    ``--perf``/``--race`` raises with a hint (ignoring one is a harmless
    no-op).
    """
    from .flow.analyses import all_flow_analyses
    from .hot import all_perf_rules
    from .race import all_race_rules

    if raw is None:
        return None, None, None, None
    ids = [part.strip().upper() for part in raw.split(",") if part.strip()]
    lint_registry = set(all_rules())
    flow_registry = set(all_flow_analyses())
    perf_registry = set(all_perf_rules())
    race_registry = set(all_race_rules())
    known = lint_registry | flow_registry | perf_registry | race_registry
    unknown = [i for i in ids if i not in known]
    if unknown:
        raise FluxionError(
            f"unknown rule ids: {sorted(set(unknown))}; known: {sorted(known)}"
        )
    flow_ids = [i for i in ids if i in flow_registry]
    if flow_ids and not flow_enabled and role == "select":
        raise FluxionError(
            f"rule ids {sorted(set(flow_ids))} are interprocedural; "
            "add --flow to run them"
        )
    perf_ids = [i for i in ids if i in perf_registry]
    if perf_ids and not perf_enabled and role == "select":
        raise FluxionError(
            f"rule ids {sorted(set(perf_ids))} are profile-guided; "
            "add --perf to run them"
        )
    race_ids = [i for i in ids if i in race_registry]
    if race_ids and not race_enabled and role == "select":
        raise FluxionError(
            f"rule ids {sorted(set(race_ids))} are concurrency-readiness "
            "rules; add --race to run them"
        )
    return (
        [i for i in ids if i in lint_registry],
        flow_ids,
        perf_ids,
        race_ids,
    )


def _run_hotprofile(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statcheck hotprofile",
        description="profile the test_bench_scale workload and write the "
        "hotspot manifest the --perf mode consumes",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="manifest path (default: statcheck-hotspots.json)",
    )
    parser.add_argument("--racks", type=int, default=4)
    parser.add_argument("--nodes-per-rack", type=int, default=16)
    args = parser.parse_args(argv)

    from .hot import DEFAULT_MANIFEST
    from .hot.workload import run_hotprofile

    target = args.output or DEFAULT_MANIFEST
    document = run_hotprofile(
        target, racks=args.racks, nodes_per_rack=args.nodes_per_rack
    )
    print(
        f"fluxhot: wrote {target}: {len(document['functions'])} function(s), "
        f"workload total {document['total_s']:.3f}s"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    raw_args = list(argv if argv is not None else sys.argv[1:])
    if raw_args and raw_args[0] == "hotprofile":
        try:
            return _run_hotprofile(raw_args[1:])
        except FluxionError as exc:
            print(f"fluxhot: error: {exc}", file=sys.stderr)
            return 2

    parser = argparse.ArgumentParser(
        prog="python -m repro.statcheck",
        description="fluxlint static analysis + fluxflow interprocedural "
        "analysis + FluxSan runtime checks",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="violation report format (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the interprocedural fluxflow analyses "
        "(SPAN001, DET002, EXC002, JRN002)",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="also run the profile-guided fluxhot perf rules "
        "(PRF001-PRF004) against the hotspot manifest",
    )
    parser.add_argument(
        "--hotspots", default=None, metavar="FILE",
        help="hotspot manifest for --perf (default: statcheck-hotspots.json; "
        "regenerate with 'python -m repro.statcheck hotprofile')",
    )
    parser.add_argument(
        "--hot-report", default=None, metavar="FILE",
        help="with --perf, also write the ranked hot-path report to FILE",
    )
    parser.add_argument(
        "--hot-threshold", type=float, default=None, metavar="FRACTION",
        help="hotness threshold for --perf as a fraction of workload time "
        "(default: 0.01)",
    )
    parser.add_argument(
        "--race", action="store_true",
        help="also run the concurrency-readiness fluxrace rules "
        "(RACE001-RACE004) against the service-entrypoint manifest",
    )
    parser.add_argument(
        "--entrypoints", default=None, metavar="FILE",
        help="service-entrypoint manifest for --race "
        "(default: statcheck-entrypoints.json)",
    )
    parser.add_argument(
        "--race-report", default=None, metavar="FILE",
        help="with --race, also write the per-module shared-state "
        "footprint table to FILE",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings recorded in this baseline file; only new "
        "findings fail the run",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file with the current findings and exit 0",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="lint files with N worker processes (default: 1)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="cache per-file lint results keyed by content hash",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: .statcheck-cache; implies --cache)",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="only report on files changed since `git merge-base HEAD main` "
        "(plus untracked files)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--dual-run", default=None, metavar="PRESET",
        help="run the FluxSan dual-run nondeterminism check on a preset "
        f"workload ({', '.join(DUAL_RUN_PRESETS)}) and exit",
    )
    args = parser.parse_args(raw_args)

    def out(line: str) -> None:
        print(line)

    if args.list_rules:
        return _list_rules(out)
    if args.dual_run is not None:
        try:
            return _run_dual(args.dual_run, out)
        except FluxionError as exc:
            print(f"fluxsan: error: {exc}", file=sys.stderr)
            return 2
    if not args.paths:
        parser.print_usage(sys.stderr)
        print(
            "python -m repro.statcheck: error: no paths given "
            "(try 'src/repro')",
            file=sys.stderr,
        )
        return 2

    try:
        return _run_lint(args, out)
    except (LintParseError, OSError) as exc:
        print(f"fluxlint: error: {exc}", file=sys.stderr)
        return 2
    except FluxionError as exc:
        print(f"fluxlint: error: {exc}", file=sys.stderr)
        return 2


def _run_lint(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    from .core import _expand

    lint_select, flow_select, perf_select, race_select = _split_select(
        args.select, args.flow, perf_enabled=args.perf,
        race_enabled=args.race,
    )
    lint_ignore, flow_ignore, perf_ignore, race_ignore = _split_select(
        args.ignore, args.flow, "ignore", perf_enabled=args.perf,
        race_enabled=args.race,
    )

    engine = LintEngine(select=lint_select, ignore=lint_ignore)

    cache = None
    if args.cache or args.cache_dir is not None:
        from .cache import DEFAULT_CACHE_DIR, LintCache

        cache = LintCache(
            root=args.cache_dir or DEFAULT_CACHE_DIR,
            rule_ids=[rule_cls.rule_id for rule_cls in engine.rules],
        )

    changed: Optional[Set[str]] = None
    if args.changed_only:
        try:
            changed = _changed_files()
        except FluxionError as exc:
            # Outside a git checkout, or detached HEAD with no main
            # merge-base: fall back to a full scan rather than crash.
            print(
                f"fluxlint: warning: --changed-only unavailable ({exc}); "
                "falling back to a full scan",
                file=sys.stderr,
            )
            changed = None

    lint_targets: List[str] = list(args.paths)
    if changed is not None:
        lint_targets = [
            path
            for path in _expand(args.paths)
            if os.path.realpath(path) in changed
        ]

    violations: List[Violation] = []
    files_checked = 0
    if lint_targets:
        violations, files_checked = engine.lint_paths(
            lint_targets, jobs=max(args.jobs, 1), cache=cache
        )

    if args.flow:
        from .flow import FlowEngine

        flow_engine = FlowEngine(select=flow_select, ignore=flow_ignore)
        # The whole program is always built from the full path set —
        # interprocedural facts need every module — but with --changed-only
        # findings are reported only for the changed files.
        flow_violations, _ = flow_engine.analyze_paths(args.paths)
        if changed is not None:
            flow_violations = [
                v
                for v in flow_violations
                if os.path.realpath(v.path) in changed
            ]
        violations = sorted(set(violations) | set(flow_violations))

    if args.perf:
        from .hot import DEFAULT_MANIFEST, HOT_THRESHOLD, PerfEngine
        from .hot.rules import render_hot_report

        perf_engine = PerfEngine(select=perf_select, ignore=perf_ignore)
        perf_violations, hot_model = perf_engine.analyze_paths(
            args.paths,
            args.hotspots or DEFAULT_MANIFEST,
            threshold=(
                args.hot_threshold
                if args.hot_threshold is not None
                else HOT_THRESHOLD
            ),
        )
        if changed is not None:
            perf_violations = [
                v
                for v in perf_violations
                if os.path.realpath(v.path) in changed
            ]
        violations = sorted(set(violations) | set(perf_violations))
        if args.hot_report is not None:
            with open(args.hot_report, "w", encoding="utf-8") as handle:
                handle.write(render_hot_report(hot_model))
                handle.write("\n")

    if args.race:
        from .race import DEFAULT_ENTRYPOINTS, RaceEngine, render_race_report

        race_engine = RaceEngine(select=race_select, ignore=race_ignore)
        race_violations, race_model = race_engine.analyze_paths(
            args.paths, args.entrypoints or DEFAULT_ENTRYPOINTS
        )
        if changed is not None:
            race_violations = [
                v
                for v in race_violations
                if os.path.realpath(v.path) in changed
            ]
        violations = sorted(set(violations) | set(race_violations))
        if args.race_report is not None:
            with open(args.race_report, "w", encoding="utf-8") as handle:
                handle.write(render_race_report(race_model))
                handle.write("\n")

    if args.update_baseline:
        from .flow.baseline import save_baseline

        target = args.baseline or "statcheck-baseline.json"
        save_baseline(target, violations)
        out(
            f"fluxlint: baseline {target} updated with "
            f"{len(violations)} finding(s)"
        )
        return 0

    if args.baseline is not None:
        from .flow.baseline import apply_baseline, load_baseline

        baseline = load_baseline(args.baseline)
        violations, stale = apply_baseline(violations, baseline)
        if stale:
            print(
                f"fluxlint: warning: {stale} stale baseline entr"
                f"{'y' if stale == 1 else 'ies'} in {args.baseline} no "
                "longer match any finding; regenerate with --update-baseline",
                file=sys.stderr,
            )

    if args.format == "json":
        report = render_json(violations, files_checked)
    elif args.format == "sarif":
        report = render_sarif(violations, files_checked)
    else:
        report = render_text(violations, files_checked)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
            handle.write("\n")
    else:
        out(report)
    return 1 if violations else 0
