"""fluxlint / FluxSan command line: ``python -m repro.statcheck``.

Exit codes follow the usual lint convention:

* ``0`` — no violations (or the dual run was deterministic);
* ``1`` — violations found / dual run diverged;
* ``2`` — usage error, unreadable input, or a file that does not parse.

Examples::

    python -m repro.statcheck src/repro              # lint the tree
    python -m repro.statcheck --format json src/     # CI-friendly output
    python -m repro.statcheck --select DET001 src/   # one rule only
    python -m repro.statcheck --list-rules
    python -m repro.statcheck --dual-run tiny        # FluxSan determinism
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, List, Optional

from ..errors import FluxionError, SanitizerError
from .core import LintEngine, LintParseError, all_rules
from .reporters import render_json, render_text
from .sanitizer import FluxSan, dual_run

__all__ = ["main", "build_preset_simulator", "DUAL_RUN_PRESETS"]


def build_preset_simulator(preset: str) -> "object":
    """Build a fully loaded simulator for one GRUG preset workload.

    The factory is deterministic by construction (seeded trace, seeded
    preset) — exactly what the dual-run detector requires.
    """
    from ..grug import tiny_cluster
    from ..sched.simulator import ClusterSimulator
    from ..workloads.trace import synthetic_trace

    if preset == "tiny":
        graph = tiny_cluster()
        trace = synthetic_trace(
            n_jobs=24, seed=7, max_nodes=4, min_duration=60,
            max_duration=1800, arrival_spread=600,
        )
    elif preset == "tiny-faulty":
        graph = tiny_cluster()
        trace = synthetic_trace(
            n_jobs=16, seed=11, max_nodes=4, min_duration=60,
            max_duration=900, arrival_spread=400,
        )
    else:
        raise FluxionError(
            f"unknown dual-run preset {preset!r}; "
            f"known: {sorted(DUAL_RUN_PRESETS)}"
        )
    sim = ClusterSimulator(graph, match_policy="first", queue="conservative")
    for job in trace:
        sim.submit(job.to_jobspec(), at=job.submit_time)
    if preset == "tiny-faulty":
        nodes = graph.find(type="node")
        sim.schedule_failure(nodes[0], at=300)
        sim.schedule_repair(nodes[0], at=700)
    return sim


DUAL_RUN_PRESETS = ("tiny", "tiny-faulty")


def _run_dual(preset: str, out: Callable[[str], None]) -> int:
    factory = lambda: build_preset_simulator(preset)  # noqa: E731
    with FluxSan():
        try:
            report = dual_run(factory, raise_on_divergence=False)
        except SanitizerError as exc:
            out(f"fluxsan: {exc}")
            return 1
    out(f"fluxsan [{preset}]: {report.summary()}")
    return 0 if report.ok else 1


def _list_rules(out: Callable[[str], None]) -> int:
    for rule_id, rule_cls in sorted(all_rules().items()):
        out(f"{rule_id}  {rule_cls.summary}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statcheck",
        description="fluxlint static analysis + FluxSan runtime checks",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="violation report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--dual-run", default=None, metavar="PRESET",
        help="run the FluxSan dual-run nondeterminism check on a preset "
        f"workload ({', '.join(DUAL_RUN_PRESETS)}) and exit",
    )
    args = parser.parse_args(argv)

    def out(line: str) -> None:
        print(line)

    if args.list_rules:
        return _list_rules(out)
    if args.dual_run is not None:
        try:
            return _run_dual(args.dual_run, out)
        except FluxionError as exc:
            print(f"fluxsan: error: {exc}", file=sys.stderr)
            return 2
    if not args.paths:
        parser.print_usage(sys.stderr)
        print(
            "python -m repro.statcheck: error: no paths given "
            "(try 'src/repro')",
            file=sys.stderr,
        )
        return 2

    split = lambda raw: [r for r in raw.split(",") if r.strip()]  # noqa: E731
    try:
        engine = LintEngine(
            select=split(args.select) if args.select else None,
            ignore=split(args.ignore) if args.ignore else None,
        )
        violations, files_checked = engine.lint_paths(args.paths)
    except (LintParseError, OSError) as exc:
        print(f"fluxlint: error: {exc}", file=sys.stderr)
        return 2
    except FluxionError as exc:
        print(f"fluxlint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        out(render_json(violations, files_checked))
    else:
        out(render_text(violations, files_checked))
    return 1 if violations else 0
