"""fluxlint core: source model, rule framework, suppression, engine.

A lint run parses each Python file once into a :class:`SourceModule`
(source text + AST + suppression directives), instantiates every selected
:class:`LintRule` against it, and collects :class:`Violation` records.
Rules are :class:`ast.NodeVisitor` subclasses registered through
:func:`register_rule`; each owns one rule id and decides with
:meth:`LintRule.applies_to` which files it inspects.

Suppression directives, checked per emitted violation:

* ``# fluxlint: disable=RULE1,RULE2`` on the violating line;
* ``# fluxlint: disable-next-line=RULE`` on the line above it;
* ``# fluxlint: disable-file=RULE`` anywhere in the file.

``RULE`` may be ``all`` to suppress every rule.  Suppressions are meant to
be rare and justified — pair each with a trailing comment explaining why
the invariant does not apply (see docs/static_analysis.md).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from ..errors import FluxionError

__all__ = [
    "Violation",
    "LintParseError",
    "SourceModule",
    "LintRule",
    "register_rule",
    "all_rules",
    "LintEngine",
    "lint_source",
    "lint_paths",
]


class LintParseError(FluxionError):
    """Raised when a file handed to fluxlint is not valid Python."""


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


_DIRECTIVE = re.compile(
    r"#\s*fluxlint:\s*(disable|disable-next-line|disable-file)"
    r"\s*=\s*([A-Za-z0-9_,\s]+)"
)


def _parse_rule_list(raw: str) -> Set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


@dataclass
class SourceModule:
    """A parsed source file plus its suppression directives."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: line number -> rule ids suppressed on that line ("ALL" = every rule)
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file
    file_suppressions: Set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, source: str, path: str = "<string>") -> "SourceModule":
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise LintParseError(
                f"{path}:{exc.lineno or 0}: cannot parse: {exc.msg}"
            ) from exc
        except ValueError as exc:
            # e.g. "source code string cannot contain null bytes"
            raise LintParseError(f"{path}:0: cannot parse: {exc}") from exc
        module = cls(path=path, source=source, tree=tree,
                     lines=source.splitlines())
        module._collect_directives()
        return module

    def _collect_directives(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            if "fluxlint" not in text:
                continue
            for match in _DIRECTIVE.finditer(text):
                kind, raw = match.group(1), match.group(2)
                rules = _parse_rule_list(raw)
                if kind == "disable-file":
                    self.file_suppressions |= rules
                elif kind == "disable-next-line":
                    bucket = self.line_suppressions.setdefault(lineno + 1, set())
                    bucket |= rules
                else:
                    bucket = self.line_suppressions.setdefault(lineno, set())
                    bucket |= rules

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rule_id = rule_id.upper()
        if "ALL" in self.file_suppressions or rule_id in self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(line, ())
        return "ALL" in on_line or rule_id in on_line


class LintRule(ast.NodeVisitor):
    """Base class for fluxlint rules.

    Subclasses set :attr:`rule_id` / :attr:`summary`, optionally override
    :meth:`applies_to`, and call :meth:`report` from their ``visit_*``
    methods.  One instance is created per (rule, file) pair, so instance
    state is per-file scratch space.
    """

    rule_id: str = ""
    summary: str = ""

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.violations: List[Violation] = []

    @classmethod
    def applies_to(cls, path: str) -> bool:
        """Whether this rule inspects the file at ``path`` (default: all)."""
        return True

    def run(self) -> List[Violation]:
        """Execute the rule over the module and return its violations."""
        self.visit(self.module.tree)
        return self.violations

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        if not self.module.is_suppressed(self.rule_id, line):
            self.violations.append(
                Violation(self.module.path, line, col, self.rule_id, message)
            )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(rule_cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding ``rule_cls`` to the global rule registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, Type[LintRule]]:
    """The registered rules, keyed by rule id."""
    return dict(_REGISTRY)


class LintEngine:
    """Runs a selected set of rules over files or source strings.

    Parameters
    ----------
    select:
        Rule ids to run (default: every registered rule).
    ignore:
        Rule ids to exclude after selection.
    """

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        registry = all_rules()
        chosen = (
            {r.upper() for r in select} if select is not None else set(registry)
        )
        dropped = {r.upper() for r in ignore} if ignore is not None else set()
        unknown = (chosen | dropped) - set(registry)
        if unknown:
            raise FluxionError(
                f"unknown rule ids: {sorted(unknown)}; "
                f"known: {sorted(registry)}"
            )
        self.rules: List[Type[LintRule]] = [
            registry[rule_id]
            for rule_id in sorted(chosen - dropped)
        ]

    # ------------------------------------------------------------------
    def lint_source(self, source: str, path: str = "<string>") -> List[Violation]:
        """Lint one source string as if it lived at ``path``."""
        module = SourceModule.parse(source, path)
        violations: List[Violation] = []
        for rule_cls in self.rules:
            if rule_cls.applies_to(module.path):
                violations.extend(rule_cls(module).run())
        return sorted(violations)

    def lint_file(self, path: str, cache: Optional["object"] = None) -> List[Violation]:
        with open(path, "rb") as handle:
            raw = handle.read()
        key = None
        if cache is not None:
            key = cache.key(_normalize(path), raw)
            cached = cache.get(key)
            if cached is not None:
                return cached
        try:
            source = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            # UnicodeDecodeError is a ValueError, *not* an OSError — without
            # this it escaped the CLI's error handling as a traceback.
            raise LintParseError(
                f"{_normalize(path)}:0: cannot decode as UTF-8: {exc}"
            ) from exc
        violations = self.lint_source(source, _normalize(path))
        if cache is not None and key is not None:
            cache.put(key, violations)
        return violations

    def lint_paths(
        self,
        paths: Sequence[str],
        jobs: int = 1,
        cache: Optional["object"] = None,
    ) -> Tuple[List[Violation], int]:
        """Lint files and directory trees; returns (violations, files seen).

        ``jobs > 1`` fans the file list out over a multiprocessing pool;
        ``cache`` is a :class:`repro.statcheck.cache.LintCache` (results are
        keyed by content hash, so hits skip parsing entirely).
        """
        files = list(_expand(paths))
        violations: List[Violation] = []
        if jobs > 1 and len(files) > 1:
            violations = self._lint_parallel(files, jobs, cache)
        else:
            for path in files:
                violations.extend(self.lint_file(path, cache=cache))
        return sorted(violations), len(files)

    def _lint_parallel(
        self,
        files: Sequence[str],
        jobs: int,
        cache: Optional["object"],
    ) -> List[Violation]:
        import multiprocessing

        rule_ids = [rule_cls.rule_id for rule_cls in self.rules]
        cache_root = getattr(cache, "root", None)
        tasks = [(path, rule_ids, cache_root) for path in files]
        violations: List[Violation] = []
        with multiprocessing.Pool(processes=min(jobs, len(files))) as pool:
            for ok, payload in pool.imap_unordered(_lint_worker, tasks):
                if not ok:
                    pool.terminate()
                    raise LintParseError(payload)
                violations.extend(payload)
        return violations


def _normalize(path: str) -> str:
    return path.replace(os.sep, "/")


def _expand(paths: Sequence[str]) -> Iterable[str]:
    seen: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        full = os.path.join(dirpath, name)
                        if full not in seen:
                            seen.add(full)
                            yield full
        elif path.endswith(".py") or os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
        else:
            raise FluxionError(f"no such file or directory: {path}")


#: per-process engine cache for the --jobs worker pool, keyed by rule ids
_WORKER_ENGINES: Dict[Tuple[str, ...], "LintEngine"] = {}


def _lint_worker(task: Tuple[str, List[str], Optional[str]]) -> Tuple[bool, "object"]:
    """Pool worker: lint one file, returning (ok, violations-or-error)."""
    path, rule_ids, cache_root = task
    key = tuple(rule_ids)
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        engine = LintEngine(select=rule_ids)
        _WORKER_ENGINES[key] = engine
    cache = None
    if cache_root is not None:
        from .cache import LintCache

        cache = LintCache(root=cache_root, rule_ids=rule_ids)
    try:
        return True, engine.lint_file(path, cache=cache)
    except (LintParseError, OSError, FluxionError) as exc:
        return False, str(exc)


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Convenience wrapper: lint one source string with a fresh engine."""
    return LintEngine(select=select, ignore=ignore).lint_source(source, path)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    jobs: int = 1,
    cache: Optional["object"] = None,
) -> Tuple[List[Violation], int]:
    """Convenience wrapper: lint files/trees with a fresh engine."""
    engine = LintEngine(select=select, ignore=ignore)
    return engine.lint_paths(paths, jobs=jobs, cache=cache)
