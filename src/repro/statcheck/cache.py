"""Per-file lint result cache.

Lint results are a pure function of (file content, rule set, lint engine
version), so they cache perfectly: the key is a SHA-256 over the raw file
bytes, the normalized path, the ids of the rules being run, and a schema
constant bumped whenever rule semantics change.  Entries are tiny JSON
documents under ``.statcheck-cache/`` (one file per key, two-level fanout
to keep directories small).

The cache is safe under concurrent writers (``--jobs N``): entries are
written to a temp file and ``os.replace``-d into place, and a corrupt or
truncated entry is treated as a miss and deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Iterable, List, Optional

from .core import Violation

__all__ = ["LintCache", "CACHE_SCHEMA_VERSION", "DEFAULT_CACHE_DIR"]

#: bump when a rule's behavior changes so stale entries never resurface
CACHE_SCHEMA_VERSION = 1

DEFAULT_CACHE_DIR = ".statcheck-cache"


class LintCache:
    """Content-addressed store of per-file lint results."""

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        rule_ids: Optional[Iterable[str]] = None,
    ) -> None:
        self.root = root
        self.signature = ",".join(sorted(rule_ids or ()))
        self.hits = 0
        self.misses = 0

    def key(self, path: str, raw: bytes) -> str:
        digest = hashlib.sha256()
        digest.update(raw)
        digest.update(b"\x00")
        digest.update(path.encode("utf-8", "replace"))
        digest.update(b"\x00")
        digest.update(self.signature.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(str(CACHE_SCHEMA_VERSION).encode("ascii"))
        return digest.hexdigest()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key[2:] + ".json")

    def get(self, key: str) -> Optional[List[Violation]]:
        entry = self._entry_path(key)
        try:
            with open(entry, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            violations = [
                Violation(
                    path=item["path"],
                    line=item["line"],
                    col=item["col"],
                    rule=item["rule"],
                    message=item["message"],
                )
                for item in document["violations"]
            ]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt/truncated entry: treat as a miss and drop it.
            self.misses += 1
            try:
                os.unlink(entry)
            except OSError:
                pass
            return None
        self.hits += 1
        return violations

    def put(self, key: str, violations: List[Violation]) -> None:
        entry = self._entry_path(key)
        directory = os.path.dirname(entry)
        try:
            os.makedirs(directory, exist_ok=True)
            document = {
                "violations": [
                    {
                        "path": v.path,
                        "line": v.line,
                        "col": v.col,
                        "rule": v.rule,
                        "message": v.message,
                    }
                    for v in violations
                ],
            }
            fd, temp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle)
                os.replace(temp, entry)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache directory must never fail the lint.
            return
