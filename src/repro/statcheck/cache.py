"""Per-file lint result cache.

Lint results are a pure function of (file content, rule set, lint engine
version), so they cache perfectly: the key is a SHA-256 over the raw file
bytes, the normalized path, the ids of the rules being run, a fingerprint
of the rule *implementations* (the source of every module defining a
registered rule — editing a rule invalidates the cache without a manual
schema bump), and a schema constant bumped whenever cache semantics
change.  Entries are tiny JSON documents under ``.statcheck-cache/`` (one
file per key, two-level fanout to keep directories small).

The cache is safe under concurrent writers (``--jobs N``): entries are
written to a temp file and ``os.replace``-d into place, and a corrupt or
truncated entry is treated as a miss and deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from typing import Iterable, List, Optional

from .core import Violation

__all__ = ["LintCache", "CACHE_SCHEMA_VERSION", "DEFAULT_CACHE_DIR"]

#: bump when cache entry *semantics* change (rule edits are covered by the
#: rule-source fingerprint below)
CACHE_SCHEMA_VERSION = 2

DEFAULT_CACHE_DIR = ".statcheck-cache"

#: memoized module-source digests; workers build one LintCache per file,
#: so the fingerprint must not re-read rule sources on every construction
_SOURCE_DIGESTS: dict = {}


def _rules_fingerprint(rule_ids: Iterable[str]) -> str:
    """Digest of the source of every module defining a selected rule.

    Editing or adding a rule changes its module's source, which changes
    this fingerprint and therefore every cache key — the fix for stale
    findings being served out of ``.statcheck-cache/`` after a rule edit.
    Unreadable sources (zipapps, frozen modules) degrade to the module
    name, keeping the cache usable rather than failing the lint.
    """
    import inspect

    from .core import all_rules
    from .flow.analyses import all_flow_analyses
    from .hot import all_perf_rules
    from .race import all_race_rules

    registry = dict(all_rules())
    registry.update(all_flow_analyses())
    registry.update(all_perf_rules())
    registry.update(all_race_rules())
    modules = sorted(
        {
            registry[rule_id].__module__
            for rule_id in rule_ids
            if rule_id in registry
        }
    )
    digest = hashlib.sha256()
    for module_name in modules:
        cached = _SOURCE_DIGESTS.get(module_name)
        if cached is None:
            try:
                source = inspect.getsource(sys.modules[module_name])
                cached = hashlib.sha256(source.encode("utf-8")).hexdigest()
            except (KeyError, OSError, TypeError):
                cached = f"unreadable:{module_name}"
            _SOURCE_DIGESTS[module_name] = cached
        digest.update(module_name.encode("utf-8"))
        digest.update(b"=")
        digest.update(cached.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class LintCache:
    """Content-addressed store of per-file lint results."""

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        rule_ids: Optional[Iterable[str]] = None,
    ) -> None:
        self.root = root
        ids = sorted(rule_ids or ())
        self.signature = ",".join(ids) + "#" + _rules_fingerprint(ids)
        self.hits = 0
        self.misses = 0

    def key(self, path: str, raw: bytes) -> str:
        digest = hashlib.sha256()
        digest.update(raw)
        digest.update(b"\x00")
        digest.update(path.encode("utf-8", "replace"))
        digest.update(b"\x00")
        digest.update(self.signature.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(str(CACHE_SCHEMA_VERSION).encode("ascii"))
        return digest.hexdigest()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key[2:] + ".json")

    def get(self, key: str) -> Optional[List[Violation]]:
        entry = self._entry_path(key)
        try:
            with open(entry, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            violations = [
                Violation(
                    path=item["path"],
                    line=item["line"],
                    col=item["col"],
                    rule=item["rule"],
                    message=item["message"],
                )
                for item in document["violations"]
            ]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt/truncated entry: treat as a miss and drop it.
            self.misses += 1
            try:
                os.unlink(entry)
            except OSError:
                pass
            return None
        self.hits += 1
        return violations

    def put(self, key: str, violations: List[Violation]) -> None:
        entry = self._entry_path(key)
        directory = os.path.dirname(entry)
        try:
            os.makedirs(directory, exist_ok=True)
            document = {
                "violations": [
                    {
                        "path": v.path,
                        "line": v.line,
                        "col": v.col,
                        "rule": v.rule,
                        "message": v.message,
                    }
                    for v in violations
                ],
            }
            fd, temp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle)
                os.replace(temp, entry)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache directory must never fail the lint.
            return
