"""The fluxhot hotness model: profile manifest x fluxflow call graph.

The profile manifest records measured per-function costs (cumulative and
self seconds, call counts) from one run of the scale workload.  Joining it
with the call graph assigns every function in the analyzed tree a *hotness
score* — the fraction of workload wall-clock its subtree accounts for:

* functions present in the manifest carry their measured ``cum_s / total_s``;
* functions absent from the manifest (below the recording cutoff, or simply
  not exercised) inherit a decayed share of their hottest caller's score by
  walking the forward call graph, so a helper only reachable from a hot loop
  is still ranked hot.

The walk also records a *hot-caller chain* per function — how the hottest
profiled root reaches it — which the PRF rules print in every finding
(mirroring the DET002/EXC002 chain diagnostics).
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...errors import FluxionError
from ..flow.callgraph import CallGraph
from ..flow.program import FlowProgram

__all__ = [
    "HOTSPOTS_VERSION",
    "DEFAULT_MANIFEST",
    "HOT_THRESHOLD",
    "CHAIN_DECAY",
    "HotFunction",
    "HotModel",
    "load_hotspots",
]

HOTSPOTS_VERSION = 1

#: default manifest filename, checked in at the repo root
DEFAULT_MANIFEST = "statcheck-hotspots.json"

#: a function is *hot* when its subtree accounts for at least this fraction
#: of the profiled workload's total time
HOT_THRESHOLD = 0.01

#: score multiplier per call-graph hop for functions absent from the profile
CHAIN_DECAY = 0.5


@dataclass
class HotFunction:
    """One function's hotness verdict."""

    qualname: str
    score: float  # fraction of workload total time (0..1)
    measured: bool  # True = from the manifest, False = inherited
    cum_s: float = 0.0
    self_s: float = 0.0
    calls: int = 0
    #: qualname of the caller this function inherited its chain from
    via: Optional[str] = None


def load_hotspots(path: str) -> dict:
    """Read and validate a ``statcheck-hotspots.json`` manifest."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise FluxionError(
            f"cannot read hotspot manifest {path}: {exc}; regenerate it with "
            "'python -m repro.statcheck hotprofile'"
        )
    except json.JSONDecodeError as exc:
        raise FluxionError(f"hotspot manifest {path} is not valid JSON: {exc}")
    if not isinstance(document, dict) or "functions" not in document:
        raise FluxionError(
            f"hotspot manifest {path} malformed: expected an object with "
            "'functions'"
        )
    version = document.get("version")
    if version != HOTSPOTS_VERSION:
        raise FluxionError(
            f"hotspot manifest {path} has unsupported version {version!r} "
            f"(expected {HOTSPOTS_VERSION})"
        )
    for entry in document["functions"]:
        if not isinstance(entry, dict) or not isinstance(
            entry.get("qualname"), str
        ):
            raise FluxionError(
                f"hotspot manifest {path} malformed: each function needs a "
                "string 'qualname'"
            )
    return document


@dataclass
class HotModel:
    """Hotness scores and hot-caller chains for one analyzed program."""

    total_s: float
    workload: str
    functions: Dict[str, HotFunction] = field(default_factory=dict)
    threshold: float = HOT_THRESHOLD

    @classmethod
    def build(
        cls,
        program: FlowProgram,
        graph: CallGraph,
        manifest: dict,
        threshold: float = HOT_THRESHOLD,
    ) -> "HotModel":
        """Join the manifest with the call graph (see module docstring)."""
        total = float(manifest.get("total_s") or 0.0)
        if total <= 0.0:
            total = sum(
                float(e.get("self_s", 0.0)) for e in manifest["functions"]
            ) or 1.0
        model = cls(
            total_s=total,
            workload=str(manifest.get("workload", "")),
            threshold=threshold,
        )
        measured: Dict[str, HotFunction] = {}
        for entry in manifest["functions"]:
            qualname = entry["qualname"]
            if qualname not in program.functions:
                continue
            cum = float(entry.get("cum_s", 0.0))
            measured[qualname] = HotFunction(
                qualname=qualname,
                score=min(cum / total, 1.0),
                measured=True,
                cum_s=cum,
                self_s=float(entry.get("self_s", 0.0)),
                calls=int(entry.get("calls", 0)),
            )
        model.functions = dict(measured)
        model._propagate(graph, measured)
        return model

    def _propagate(
        self, graph: CallGraph, measured: Dict[str, HotFunction]
    ) -> None:
        """Best-first walk down the forward call graph.

        Measured functions keep their scores; unmeasured callees inherit
        ``caller_score * CHAIN_DECAY`` (the best such offer wins).  The walk
        also assigns each reached function its ``via`` caller, which renders
        as the hot-caller chain.  Deterministic: ties break on qualname.
        """
        roots = measured_roots(measured, graph)
        heap: List[Tuple[float, str]] = [
            (-info.score, qualname) for qualname, info in measured.items()
        ]
        heapq.heapify(heap)
        done: set = set()
        while heap:
            neg_score, qualname = heapq.heappop(heap)
            if qualname in done:
                continue
            done.add(qualname)
            score = -neg_score
            for callee in sorted(graph.edges.get(qualname, ())):
                if callee in done:
                    continue
                known = self.functions.get(callee)
                if known is not None and known.measured:
                    # Measured callees keep their own score but still take
                    # the first (hottest) caller for their chain.
                    if known.via is None and callee not in roots:
                        known.via = qualname
                    heapq.heappush(heap, (-known.score, callee))
                    continue
                inherited = score * CHAIN_DECAY
                if known is None or inherited > known.score:
                    self.functions[callee] = HotFunction(
                        qualname=callee,
                        score=inherited,
                        measured=False,
                        via=qualname,
                    )
                    heapq.heappush(heap, (-inherited, callee))

    # -- queries --------------------------------------------------------
    def score(self, qualname: str) -> float:
        info = self.functions.get(qualname)
        return 0.0 if info is None else info.score

    def is_hot(self, qualname: str) -> bool:
        return self.score(qualname) >= self.threshold

    def hot_functions(self) -> List[HotFunction]:
        """Every hot function, hottest first (ties break on qualname)."""
        return sorted(
            (f for f in self.functions.values() if f.score >= self.threshold),
            key=lambda f: (-f.score, f.qualname),
        )

    def chain(self, qualname: str, limit: int = 16) -> List[str]:
        """Hot-caller chain ``[root, ..., qualname]`` (qualnames)."""
        names: List[str] = []
        current: Optional[str] = qualname
        seen: set = set()
        while current is not None and current not in seen and len(names) < limit:
            seen.add(current)
            names.append(current)
            info = self.functions.get(current)
            current = info.via if info is not None else None
        names.reverse()
        return names

    def chain_text(self, qualname: str) -> str:
        """The chain rendered with short names after the root, e.g.
        ``repro.match.traverser.Traverser.allocate -> _match_at -> _collect``.
        """
        chain = self.chain(qualname)
        if not chain:
            return qualname
        parts = [chain[0]]
        parts.extend(name.rsplit(".", 1)[-1] for name in chain[1:])
        return " -> ".join(parts)


def measured_roots(
    functions: Dict[str, HotFunction], graph: CallGraph
) -> set:
    """Measured functions with no measured caller — the chain roots."""
    roots = set()
    for qualname, info in functions.items():
        if not info.measured:
            continue
        callers = graph.callers_of(qualname)
        if not any(
            c in functions and functions[c].measured for c in callers
        ):
            roots.add(qualname)
    return roots
