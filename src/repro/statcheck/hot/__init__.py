"""fluxhot: profile-guided hot-path performance analysis.

Joins a measured profile of the scale workload (``statcheck-hotspots.json``,
regenerated with ``python -m repro.statcheck hotprofile``) with the fluxflow
call graph to rank every function by hotness, then runs the PRF perf rules
only where the profile says they matter (see docs/static_analysis.md).
"""

from .model import (
    DEFAULT_MANIFEST,
    HOT_THRESHOLD,
    HOTSPOTS_VERSION,
    HotFunction,
    HotModel,
    load_hotspots,
)
from .rules import (
    PerfContext,
    PerfEngine,
    PerfRule,
    all_perf_rules,
    register_perf_rule,
    render_hot_report,
)
from .workload import run_hotprofile

__all__ = [
    "DEFAULT_MANIFEST",
    "HOT_THRESHOLD",
    "HOTSPOTS_VERSION",
    "HotFunction",
    "HotModel",
    "load_hotspots",
    "PerfContext",
    "PerfEngine",
    "PerfRule",
    "all_perf_rules",
    "register_perf_rule",
    "render_hot_report",
    "run_hotprofile",
]
