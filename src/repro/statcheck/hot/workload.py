"""Profile the scale workload and emit ``statcheck-hotspots.json``.

``python -m repro.statcheck hotprofile`` runs the same workload as
``benchmarks/test_bench_scale.py`` (fill a Med-LOD system with the §6.1
jobspec, core pruning on) under :mod:`cProfile`, maps the measured frames
back to fluxflow qualnames, and writes the manifest the ``--perf`` mode
consumes.  Checked in so CI and reviewers share one hotness ranking; the
manifest is a ranking input, not a benchmark — absolute times vary by host
but the *shape* (which functions dominate) is stable.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import pstats
import time
from typing import Dict, List, Optional, Tuple

from ..flow.program import FlowProgram, FunctionInfo, ModuleInfo
from .model import DEFAULT_MANIFEST, HOTSPOTS_VERSION

__all__ = ["run_scale_workload", "run_hotprofile"]

#: drop manifest entries whose cumulative share of total time is below this
RECORD_CUTOFF = 0.005

#: tolerance (lines) between a frame's co_firstlineno and the matched
#: ``def`` line — decorated functions report the decorator's line
_DEF_LINE_SLACK = 10


def run_scale_workload(racks: int = 4, nodes_per_rack: int = 16) -> dict:
    """The ``test_bench_scale`` fill: Med LOD, core pruning, §6.1 jobspec.

    Mirrors ``benchmarks/harness.fig6a_run_one("med", True, ...)`` so the
    profile ranks exactly the code path the scale benchmarks time.
    """
    from ...grug import build_lod
    from ...jobspec import simple_node_jobspec
    from ...match import Traverser

    graph = build_lod(
        "med",
        racks=racks,
        nodes_per_rack=nodes_per_rack,
        prune_types=("core",),
    )
    traverser = Traverser(graph, policy="first", prune=True)
    jobspec = simple_node_jobspec(cores=10, memory=8, ssds=1, duration=10_000)
    jobs = 0
    while traverser.allocate(jobspec, at=0) is not None:
        jobs += 1
    return {"jobs": jobs, "visits": traverser.stats["visits"]}


def run_hotprofile(
    output_path: str = DEFAULT_MANIFEST,
    racks: int = 4,
    nodes_per_rack: int = 16,
    cutoff: float = RECORD_CUTOFF,
) -> dict:
    """Profile the scale workload and write the hotspot manifest.

    Returns the manifest document (also written to ``output_path``).
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    repro_dir = os.path.join(src_root, "repro")

    profiler = cProfile.Profile()
    # Wall-clock is the measurement here, not simulator state:
    t0 = time.perf_counter()  # fluxlint: disable=DET001,OBS001
    profiler.enable()
    meta = run_scale_workload(racks=racks, nodes_per_rack=nodes_per_rack)
    profiler.disable()
    total_s = time.perf_counter() - t0  # fluxlint: disable=DET001,OBS001

    stats = pstats.Stats(profiler, stream=io.StringIO())
    program = FlowProgram.from_paths([repro_dir])
    entries = _map_frames(stats, program, src_root)

    functions = [
        entry
        for entry in entries
        if entry["cum_s"] >= cutoff * total_s
    ]
    functions.sort(key=lambda e: (-e["cum_s"], e["qualname"]))

    document = {
        "version": HOTSPOTS_VERSION,
        "workload": (
            f"test_bench_scale fill: med LOD, prune, "
            f"{racks}x{nodes_per_rack} = {racks * nodes_per_rack} nodes, "
            f"{meta['jobs']} jobs, {meta['visits']} visits"
        ),
        "total_s": round(total_s, 6),
        "functions": functions,
    }
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return document


def _map_frames(
    stats: pstats.Stats, program: FlowProgram, src_root: str
) -> List[dict]:
    """pstats rows ``(filename, lineno, funcname)`` -> qualname entries.

    Frames outside the analyzed tree (stdlib, builtins) are dropped; frames
    mapping to the same qualname (e.g. a function and a nested lambda)
    accumulate.
    """
    by_path: Dict[str, ModuleInfo] = {}
    for path, info in program.modules_by_path.items():
        by_path[os.path.abspath(path).replace(os.sep, "/")] = info

    merged: Dict[str, dict] = {}
    for (filename, lineno, funcname), row in stats.stats.items():
        calls, _primitive, self_t, cum_t = row[0], row[1], row[2], row[3]
        if not filename or filename.startswith("<"):
            continue
        info = by_path.get(os.path.abspath(filename).replace(os.sep, "/"))
        if info is None:
            continue
        fn = _match_function(program, info, lineno, funcname)
        if fn is None:
            continue
        entry = merged.setdefault(
            fn.qualname,
            {
                "qualname": fn.qualname,
                "file": _repo_relative(info.path, src_root),
                "line": fn.node.lineno,
                "calls": 0,
                "self_s": 0.0,
                "cum_s": 0.0,
            },
        )
        entry["calls"] += int(calls)
        entry["self_s"] = round(entry["self_s"] + self_t, 6)
        entry["cum_s"] = round(max(entry["cum_s"], cum_t), 6)
    return list(merged.values())


def _match_function(
    program: FlowProgram,
    info: ModuleInfo,
    lineno: int,
    funcname: str,
) -> Optional[FunctionInfo]:
    fn = program.function_at(info, lineno)
    if fn is not None and fn.name == funcname:
        return fn
    # Decorated functions profile under the decorator's line, which sits
    # just above the ``def`` — fall back to a nearest name match.
    best: Optional[Tuple[int, FunctionInfo]] = None
    for candidate in program.functions.values():
        if candidate.module is not info or candidate.name != funcname:
            continue
        distance = abs(candidate.node.lineno - lineno)
        if distance <= _DEF_LINE_SLACK and (best is None or distance < best[0]):
            best = (distance, candidate)
    return best[1] if best is not None else None


def _repo_relative(path: str, src_root: str) -> str:
    absolute = os.path.abspath(path).replace(os.sep, "/")
    root = os.path.abspath(src_root).replace(os.sep, "/")
    if absolute.startswith(root + "/"):
        return "src/" + absolute[len(root) + 1 :]
    return absolute
