"""fluxhot PRF rules: perf anti-patterns, checked only where the profile
says they matter.

========  ==============================================================
PRF001    per-iteration allocation in a hot loop: list/dict/set/tuple
          construction, comprehensions, or string concatenation inside
          a loop of a hot function
PRF002    repeated attribute/global lookups inside a hot loop that
          should be hoisted to locals before the loop
PRF003    hot class with no ``__slots__``: every instance built on the
          hot path allocates an attribute dict
PRF004    accidental O(n) scan on a hot path: membership tests against
          lists, ``list.index``, or re-sorting inside a loop
========  ==============================================================

Each finding carries the fluxflow hot-caller chain (how the profiled root
reaches the offending function) and the function's share of workload time.
Findings report through the standard :class:`Violation` records, honour
``# fluxlint: disable=`` suppressions, and gate through the same baseline
files as every other rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple, Type

from ...errors import FluxionError
from ..core import Violation
from ..flow.callgraph import CallGraph, build_call_graph, walk_own
from ..flow.program import FlowProgram, FunctionInfo, ModuleInfo
from .model import HOT_THRESHOLD, HotModel, load_hotspots

__all__ = [
    "PerfContext",
    "PerfRule",
    "PerfEngine",
    "register_perf_rule",
    "all_perf_rules",
    "render_hot_report",
]

#: lookups per iteration before PRF002 calls it worth hoisting
_LOOKUP_THRESHOLD = 3


@dataclass
class PerfContext:
    """Everything a PRF rule needs: program, call graph, hotness model."""

    program: FlowProgram
    graph: CallGraph
    model: HotModel

    def hot_suffix(self, qualname: str) -> str:
        """The per-finding diagnostic tail: share of time + caller chain."""
        score = self.model.score(qualname)
        return (
            f" [{score * 100:.1f}% of workload; "
            f"hot path: {self.model.chain_text(qualname)}]"
        )


class PerfRule:
    """Base class for profile-guided perf rules (one instance per run)."""

    rule_id: str = ""
    summary: str = ""

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def run(self, ctx: PerfContext) -> List[Violation]:
        """Default driver: visit every hot function, hottest first."""
        for info in ctx.model.hot_functions():
            fn = ctx.program.functions.get(info.qualname)
            if fn is not None:
                self.check_function(fn, ctx)
        return self.violations

    def check_function(self, fn: FunctionInfo, ctx: PerfContext) -> None:
        raise NotImplementedError

    def report(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> None:
        line = getattr(node, "lineno", 0)
        if not module.source_module.is_suppressed(self.rule_id, line):
            self.violations.append(
                Violation(
                    module.path,
                    line,
                    getattr(node, "col_offset", 0),
                    self.rule_id,
                    message,
                )
            )


_PERF_REGISTRY: Dict[str, Type[PerfRule]] = {}


def register_perf_rule(cls: Type[PerfRule]) -> Type[PerfRule]:
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _PERF_REGISTRY:
        raise ValueError(f"duplicate perf rule id {cls.rule_id}")
    _PERF_REGISTRY[cls.rule_id] = cls
    return cls


def all_perf_rules() -> Dict[str, Type[PerfRule]]:
    return dict(_PERF_REGISTRY)


# ---------------------------------------------------------------------------
# loop helpers
# ---------------------------------------------------------------------------


def _own_loops(fn: FunctionInfo) -> List[ast.AST]:
    """Every for/while loop in the function's own body (nested defs skipped)."""
    return [
        node
        for node in walk_own(fn.node)
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While))
    ]


def _loop_body_nodes(loop: ast.AST) -> Iterable[ast.AST]:
    """Nodes executed per iteration: the loop body and else, excluding
    nested function/class definitions."""
    stack: List[ast.AST] = list(loop.body) + list(loop.orelse)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _dotted_chain(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` for an Attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


# ---------------------------------------------------------------------------
# PRF001 — per-iteration allocation in hot loops
# ---------------------------------------------------------------------------


@register_perf_rule
class HotLoopAllocationRule(PerfRule):
    """PRF001: the match/planner hot path visits tens of thousands of
    vertices per dispatch; a container built per visit is a constant
    factor the paper's §6 scaling results cannot afford."""

    rule_id = "PRF001"
    summary = "container allocated on every iteration of a hot loop"

    _CTORS = ("list", "dict", "set", "tuple", "frozenset")
    _COMP_NAMES = {
        ast.ListComp: "list comprehension",
        ast.SetComp: "set comprehension",
        ast.DictComp: "dict comprehension",
    }

    def check_function(self, fn: FunctionInfo, ctx: PerfContext) -> None:
        suffix = ctx.hot_suffix(fn.qualname)
        for loop in _own_loops(fn):
            for node in _loop_body_nodes(loop):
                what = self._allocation(node)
                if what is not None:
                    self.report(
                        fn.module,
                        node,
                        f"{what} allocated on every iteration of the loop "
                        f"on line {loop.lineno} in {fn.name}(); build it "
                        "once outside the loop or restructure to avoid the "
                        f"per-cycle allocation{suffix}",
                    )

    def _allocation(self, node: ast.AST) -> Optional[str]:
        kind = self._COMP_NAMES.get(type(node))
        if kind is not None:
            return f"a {kind} is"
        if isinstance(node, (ast.List, ast.Set)) and node.elts:
            return f"a {type(node).__name__.lower()} literal is"
        if isinstance(node, ast.Dict) and node.keys:
            return "a dict literal is"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._CTORS
        ):
            return f"{node.func.id}() is"
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            if self._is_stringy(node.value):
                return "a string concatenation result is"
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            if self._is_stringy(node.left) or self._is_stringy(node.right):
                return "a string concatenation result is"
        return None

    @staticmethod
    def _is_stringy(node: ast.AST) -> bool:
        return isinstance(node, ast.JoinedStr) or (
            isinstance(node, ast.Constant) and isinstance(node.value, str)
        )


# ---------------------------------------------------------------------------
# PRF002 — repeated lookups in hot loops
# ---------------------------------------------------------------------------


@register_perf_rule
class HotLoopLookupRule(PerfRule):
    """PRF002: every ``self.x.y`` inside a loop re-runs the descriptor
    machinery per iteration; a local binding before the loop is the
    classic CPython hoist."""

    rule_id = "PRF002"
    summary = "repeated attribute/global lookup in a hot loop; hoist to a local"

    def check_function(self, fn: FunctionInfo, ctx: PerfContext) -> None:
        suffix = ctx.hot_suffix(fn.qualname)
        for loop in _own_loops(fn):
            body = list(_loop_body_nodes(loop))
            rebound = self._names_rebound(body)
            chain_counts: Dict[str, Tuple[int, ast.AST]] = {}
            global_counts: Dict[str, Tuple[int, ast.AST]] = {}
            for node in body:
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    chain = _dotted_chain(node)
                    if chain is None or chain.split(".", 1)[0] in rebound:
                        continue
                    count, first = chain_counts.get(chain, (0, node))
                    chain_counts[chain] = (count + 1, first)
                elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load
                ):
                    if node.id in rebound or not self._is_module_global(
                        fn.module, node.id
                    ):
                        continue
                    count, first = global_counts.get(node.id, (0, node))
                    global_counts[node.id] = (count + 1, first)
            self._report_best(
                fn, loop, chain_counts, "attribute chain", suffix
            )
            self._report_best(
                fn, loop, global_counts, "module-global name", suffix
            )

    def _report_best(
        self,
        fn: FunctionInfo,
        loop: ast.AST,
        counts: Dict[str, Tuple[int, ast.AST]],
        kind: str,
        suffix: str,
    ) -> None:
        best = None
        for chain, (count, node) in counts.items():
            if count < _LOOKUP_THRESHOLD:
                continue
            key = (-count, chain)
            if best is None or key < best[0]:
                best = (key, chain, count, node)
        if best is not None:
            _, chain, count, node = best
            self.report(
                fn.module,
                node,
                f"{kind} '{chain}' is looked up {count} times per "
                f"iteration of the loop on line {loop.lineno} in "
                f"{fn.name}(); bind it to a local before the loop{suffix}",
            )

    @staticmethod
    def _names_rebound(body: List[ast.AST]) -> Set[str]:
        return {
            node.id
            for node in body
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, (ast.Store, ast.Del))
        }

    @staticmethod
    def _is_module_global(module: ModuleInfo, name: str) -> bool:
        return (
            name in module.functions
            or name in module.classes
            or name in module.import_names
            or name in module.import_modules
        )


# ---------------------------------------------------------------------------
# PRF003 — hot classes without __slots__
# ---------------------------------------------------------------------------


@register_perf_rule
class HotClassSlotsRule(PerfRule):
    """PRF003: vertex/edge/span/candidate objects are built per visit on
    the hot path; without ``__slots__`` each instance also allocates an
    attribute dict."""

    rule_id = "PRF003"
    summary = "hot class has no __slots__ (per-instance dict on the hot path)"

    def run(self, ctx: PerfContext) -> List[Violation]:
        constructed = self._hot_constructions(ctx)
        for qualname in sorted(ctx.program.classes):
            ci = ctx.program.classes[qualname]
            hot_method = next(
                (
                    m.qualname
                    for m in ci.methods.values()
                    if ctx.model.is_hot(m.qualname)
                ),
                None,
            )
            hot_site = constructed.get(qualname)
            if hot_method is None and hot_site is None:
                continue
            if self._has_slots(ci.node) or not self._bases_slotted(ctx, ci):
                continue
            witness = hot_method or hot_site
            self.report(
                ci.module,
                ci.node,
                f"hot class '{ci.name}' has no __slots__: instances are "
                "built on the hot path and each allocates an attribute "
                f"dict{ctx.hot_suffix(witness)}",
            )
        return self.violations

    @staticmethod
    def _hot_constructions(ctx: PerfContext) -> Dict[str, str]:
        """Class qualname -> hot function that constructs it."""
        out: Dict[str, str] = {}
        for info in ctx.model.hot_functions():
            fn = ctx.program.functions.get(info.qualname)
            if fn is None:
                continue
            for site in ctx.graph.sites_in(fn):
                if site.constructed is not None:
                    out.setdefault(site.constructed.qualname, info.qualname)
        return out

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False

    def _bases_slotted(self, ctx: PerfContext, ci) -> bool:
        """Only flag when every resolvable project base already has
        ``__slots__`` (adding slots under a dict-carrying base is useless);
        unresolvable (external) bases disqualify the class entirely."""
        for base in ci.base_exprs:
            resolved = ctx.program.resolve_expr(ci.module, base)
            if resolved is None or not hasattr(resolved, "node"):
                return False
            if not isinstance(resolved.node, ast.ClassDef):
                return False
            if not self._has_slots(resolved.node) and not _is_dataclass_node(
                resolved.node
            ):
                return False
        return True


def _is_dataclass_node(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        chain = _dotted_chain(target)
        if chain is not None and chain.split(".")[-1] == "dataclass":
            return True
    return False


# ---------------------------------------------------------------------------
# PRF004 — accidental O(n) scans in hot paths
# ---------------------------------------------------------------------------


@register_perf_rule
class HotLinearScanRule(PerfRule):
    """PRF004: an ``in list`` or ``list.index`` buried in a hot function
    turns an O(log N) dispatch into O(N); the chain shows how the hot
    caller reaches it."""

    rule_id = "PRF004"
    summary = "O(n) list scan or per-call re-sort on a hot path"

    def check_function(self, fn: FunctionInfo, ctx: PerfContext) -> None:
        suffix = ctx.hot_suffix(fn.qualname)
        list_locals = self._list_locals(fn)
        loop_nodes = {
            id(node)
            for loop in _own_loops(fn)
            for node in _loop_body_nodes(loop)
        }
        for node in walk_own(fn.node):
            if isinstance(node, ast.Compare):
                self._check_membership(fn, node, list_locals, suffix)
            elif isinstance(node, ast.Call):
                self._check_call(fn, node, list_locals, loop_nodes, suffix)

    def _check_membership(
        self,
        fn: FunctionInfo,
        node: ast.Compare,
        list_locals: Set[str],
        suffix: str,
    ) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            if self._is_listy(comparator, list_locals):
                self.report(
                    fn.module,
                    node,
                    f"membership test against a list in {fn.name}() is an "
                    "O(n) scan per call; use a set or dict for hot-path "
                    f"membership{suffix}",
                )

    def _check_call(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        list_locals: Set[str],
        loop_nodes: Set[int],
        suffix: str,
    ) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "index":
            if self._is_listy(func.value, list_locals):
                self.report(
                    fn.module,
                    node,
                    f"list.index() in {fn.name}() is an O(n) scan per "
                    f"call; keep a position map instead{suffix}",
                )
        elif id(node) in loop_nodes:
            if isinstance(func, ast.Name) and func.id == "sorted":
                self.report(
                    fn.module,
                    node,
                    f"sorted() runs on every iteration of a loop in "
                    f"{fn.name}(); sort once outside the loop or maintain "
                    f"sorted order incrementally{suffix}",
                )
            elif isinstance(func, ast.Attribute) and func.attr == "sort":
                self.report(
                    fn.module,
                    node,
                    f".sort() runs on every iteration of a loop in "
                    f"{fn.name}(); sort once outside the loop or maintain "
                    f"sorted order incrementally{suffix}",
                )

    @staticmethod
    def _is_listy(node: ast.AST, list_locals: Set[str]) -> bool:
        if isinstance(node, (ast.List, ast.ListComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "list"
        ):
            return True
        return isinstance(node, ast.Name) and node.id in list_locals

    @staticmethod
    def _list_locals(fn: FunctionInfo) -> Set[str]:
        """Locals assigned a list literal/comprehension/list() call."""
        out: Set[str] = set()
        for stmt in walk_own(fn.node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and HotLinearScanRule._is_listy(
                stmt.value, set()
            ):
                out.add(target.id)
        return out


# ---------------------------------------------------------------------------
# engine + ranked report
# ---------------------------------------------------------------------------


class PerfEngine:
    """Runs a selected set of PRF rules over a whole program + manifest."""

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        registry = all_perf_rules()
        chosen = (
            {r.upper() for r in select} if select is not None else set(registry)
        )
        dropped = {r.upper() for r in ignore} if ignore is not None else set()
        unknown = (chosen | dropped) - set(registry)
        if unknown:
            raise FluxionError(
                f"unknown perf rule ids: {sorted(unknown)}; "
                f"known: {sorted(registry)}"
            )
        self.rules: List[Type[PerfRule]] = [
            registry[rule_id] for rule_id in sorted(chosen - dropped)
        ]

    def analyze_program(
        self,
        program: FlowProgram,
        manifest: dict,
        threshold: float = HOT_THRESHOLD,
    ) -> Tuple[List[Violation], HotModel]:
        graph = build_call_graph(program)
        model = HotModel.build(program, graph, manifest, threshold)
        ctx = PerfContext(program=program, graph=graph, model=model)
        violations: List[Violation] = []
        for rule_cls in self.rules:
            violations.extend(rule_cls().run(ctx))
        return sorted(set(violations)), model

    def analyze_paths(
        self,
        paths,
        manifest_path: str,
        threshold: float = HOT_THRESHOLD,
    ) -> Tuple[List[Violation], HotModel]:
        program = FlowProgram.from_paths(paths)
        manifest = load_hotspots(manifest_path)
        return self.analyze_program(program, manifest, threshold)


def render_hot_report(model: HotModel) -> str:
    """The ranked hot-path worklist (CI artifact; ROADMAP item 2 input)."""
    lines = [
        f"fluxhot ranked hot-path report — workload: "
        f"{model.workload or 'unknown'}, total {model.total_s:.3f}s, "
        f"hot threshold {model.threshold * 100:.1f}%",
        "",
        f"{'rank':>4}  {'share':>6}  {'cum_s':>8}  {'self_s':>8}  "
        f"{'calls':>9}  function",
    ]
    for rank, info in enumerate(model.hot_functions(), start=1):
        origin = "" if info.measured else "  (inherited)"
        lines.append(
            f"{rank:>4}  {info.score * 100:>5.1f}%  {info.cum_s:>8.4f}  "
            f"{info.self_s:>8.4f}  {info.calls:>9}  {info.qualname}{origin}"
        )
        chain = model.chain_text(info.qualname)
        if chain != info.qualname:
            lines.append(f"{'':>4}  {'':>6}  via {chain}")
    if len(lines) == 3:
        lines.append("(no hot functions above the threshold)")
    return "\n".join(lines)
