"""Entry point: ``python -m repro.statcheck [paths...]``."""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
