"""FluxSan: opt-in runtime sanitizer for span-safety and determinism.

FluxSan wraps the Planner/PlannerMulti/graph/traverser hot paths with
checking proxies while at least one :class:`FluxSan` instance is active
(``with FluxSan() as san:``, or for a whole simulation
``ClusterSimulator(..., sanitize=True)`` / environment ``FLUXSAN=1``).
Four checks, all raising :class:`~repro.errors.SanitizerError` with a
usable report:

* **span double-free** — releasing a planner span twice.  The error names
  the span, the planner, and the call site of the *first* free, which is
  the information a plain :class:`SpanNotFoundError` cannot give.
* **overlapping exclusive holds** — two live allocations touching the same
  vertex in overlapping windows while either holds it exclusively.  The
  planners' X_LIMIT accounting makes this impossible through the normal
  booking path, so seeing it means state was corrupted (typically by a
  recovery-rewiring or manual ``install_allocation`` bug).
* **SDFU divergence** — after every booking, the pruning-filter spans the
  traverser actually wrote are compared against an independent recompute of
  the Scheduler-Driven Filter Update from the allocation's selections
  (explicit amounts plus exclusive-subtree extras, §3.4).
* **graph status sanity** — draining an already-down vertex or resuming an
  already-up one indicates a lost guard in the failure/repair path.

Determinism is checked by :func:`dual_run`: build the same simulation
twice from a zero-argument factory, step both in lockstep, and diff
:func:`~repro.recovery.state_fingerprint` after every event.  Any
divergence — a wall-clock read, unseeded RNG, or iteration-order leak —
surfaces as a named fingerprint path at the first event it poisons.

Proxies are installed by class-level patching with activation
refcounting: nested/overlapping FluxSan activations compose, and the
original methods are restored when the last instance deactivates.  The
overhead is deliberately unbounded (ground-truth recomputes); FluxSan is
a debugging and CI tool, not a production mode.
"""

from __future__ import annotations

# FluxSan's stats dict is a diagnostic self-count rendered by its own
# report(), not scheduler observability — routing it through a
# MetricsRegistry would make the sanitizer depend on the layer it audits.
# fluxlint: disable-file=OBS001

import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import SanitizerError
from ..match.traverser import Traverser
from ..match.writer import Allocation
from ..planner.multi import PlannerMulti
from ..planner.planner import Planner
from ..resource.graph import ResourceGraph
from ..resource.vertex import ResourceVertex

__all__ = ["FluxSan", "DualRunReport", "dual_run"]

#: per-planner cap on remembered freed-span sites (oldest evicted first)
_FREED_SITE_LIMIT = 1024

_SKIP_SITE_FRAGMENTS = ("statcheck/sanitizer", "repro/planner/")

#: serializes proxy (un)installation and the active-instance list —
#: class-level patching is inherently process-wide, so concurrent
#: activations from two threads must not interleave
_SAN_LOCK = threading.Lock()


def _call_site() -> str:
    """Innermost stack frame outside the sanitizer and planner internals."""
    for frame in reversed(traceback.extract_stack()):
        filename = frame.filename.replace("\\", "/")
        if any(fragment in filename for fragment in _SKIP_SITE_FRAGMENTS):
            continue
        return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class FluxSan:
    """Activatable bundle of runtime invariant checks.

    Parameters
    ----------
    check_double_free / check_exclusive / check_sdfu / check_status:
        Toggle individual checks (all on by default).

    Use as a context manager, or call :meth:`activate` / :meth:`deactivate`
    explicitly.  :attr:`stats` counts checks performed; :meth:`report`
    renders them.
    """

    _active: List["FluxSan"] = []  # guarded-by: _SAN_LOCK
    _originals: Dict[Tuple[type, str], Callable] = {}  # guarded-by: _SAN_LOCK

    def __init__(
        self,
        check_double_free: bool = True,
        check_exclusive: bool = True,
        check_sdfu: bool = True,
        check_status: bool = True,
    ) -> None:
        self.check_double_free = check_double_free
        self.check_exclusive = check_exclusive
        self.check_sdfu = check_sdfu
        self.check_status = check_status
        #: id(planner) -> {span_id: call site of the free}
        self._freed: Dict[int, Dict[int, str]] = {}
        self.stats: Dict[str, int] = {
            "frees_tracked": 0,
            "double_frees": 0,
            "exclusive_checks": 0,
            "sdfu_checks": 0,
            "status_checks": 0,
        }

    # ------------------------------------------------------------------
    # activation / patching
    # ------------------------------------------------------------------
    @classmethod
    def active(cls) -> List["FluxSan"]:
        """The currently active sanitizer instances (usually 0 or 1)."""
        return list(cls._active)

    def activate(self) -> "FluxSan":
        """Install the checking proxies (refcounted; idempotent per instance)."""
        with _SAN_LOCK:
            if self not in FluxSan._active:
                if not FluxSan._active:
                    _install_proxies()
                FluxSan._active.append(self)
        return self

    def deactivate(self) -> None:
        """Remove this instance; restores originals when none remain active."""
        with _SAN_LOCK:
            if self in FluxSan._active:
                FluxSan._active.remove(self)
                if not FluxSan._active:
                    _uninstall_proxies()

    def __enter__(self) -> "FluxSan":
        return self.activate()

    def __exit__(self, *exc_info: object) -> None:
        self.deactivate()

    def report(self) -> str:
        """One-line summary of the checks this instance performed."""
        return (
            "FluxSan: "
            f"{self.stats['frees_tracked']} frees tracked, "
            f"{self.stats['exclusive_checks']} exclusive-overlap checks, "
            f"{self.stats['sdfu_checks']} SDFU ground-truth checks, "
            f"{self.stats['status_checks']} status checks, "
            f"{self.stats['double_frees']} double-frees caught"
        )

    # ------------------------------------------------------------------
    # span double-free
    # ------------------------------------------------------------------
    def _pre_rem_span(self, planner: object, span_id: int) -> None:
        if not self.check_double_free:
            return
        has = planner.has_span(span_id)
        if has:
            return
        site = self._freed.get(id(planner), {}).get(span_id)
        if site is not None:
            self.stats["double_frees"] += 1
            raise SanitizerError(
                f"span double-free: span {span_id} on {planner!r} was "
                f"already freed at {site}; second free at {_call_site()}"
            )

    def _post_rem_span(self, planner: object, span_id: int) -> None:
        if not self.check_double_free:
            return
        sites = self._freed.setdefault(id(planner), {})
        if len(sites) >= _FREED_SITE_LIMIT:
            sites.pop(next(iter(sites)))
        sites[span_id] = _call_site()
        self.stats["frees_tracked"] += 1

    def _post_add_span(self, planner: object, span_id: int) -> None:
        # An explicit-id re-insert (crash recovery) legitimately reuses a
        # previously freed id; it is live again, so drop the free record.
        self._freed.get(id(planner), {}).pop(span_id, None)

    # ------------------------------------------------------------------
    # allocation checks (exclusive overlap + SDFU ground truth)
    # ------------------------------------------------------------------
    def _check_allocation(
        self, traverser: Traverser, alloc: Allocation, booked: bool
    ) -> None:
        if self.check_exclusive:
            self._check_exclusive_overlap(traverser, alloc)
        if self.check_sdfu and booked:
            self._check_sdfu(traverser, alloc)

    def _check_exclusive_overlap(
        self, traverser: Traverser, alloc: Allocation
    ) -> None:
        self.stats["exclusive_checks"] += 1
        mine: Dict[int, Any] = {}
        for sel in alloc.selections:
            if not sel.passthrough:
                mine[sel.vertex.uniq_id] = sel
        for other in traverser.allocations.values():
            if other.alloc_id == alloc.alloc_id:
                continue
            if not (alloc.at < other.end and other.at < alloc.end):
                continue
            for osel in other.selections:
                sel = mine.get(osel.vertex.uniq_id)
                if sel is None:
                    continue
                if sel.exclusive or (osel.exclusive and not osel.passthrough):
                    raise SanitizerError(
                        "overlapping allocations on exclusively-held vertex "
                        f"{sel.vertex.name!r}: allocation {alloc.alloc_id} "
                        f"[{alloc.at},{alloc.end}) vs allocation "
                        f"{other.alloc_id} [{other.at},{other.end}) "
                        f"(exclusive={sel.exclusive}/{osel.exclusive}); "
                        "planner X-accounting was bypassed or corrupted"
                    )

    def _check_sdfu(self, traverser: Traverser, alloc: Allocation) -> None:
        """Compare the filter spans actually booked for ``alloc`` against an
        independent recompute of the SDFU charges from its selections."""
        graph = traverser.graph
        prune_types = set(graph.prune_types)
        expected = _expected_sdfu_charges(
            graph, traverser.subsystem, alloc, prune_types
        )
        actual: Dict[int, Dict[str, int]] = {}
        for planner, span_id in alloc._span_records:
            if not isinstance(planner, PlannerMulti):
                continue
            booked = planner._spans.get(span_id)
            if booked is None:
                raise SanitizerError(
                    f"allocation {alloc.alloc_id} records filter span "
                    f"{span_id} that the filter does not hold"
                )
            per_type: Dict[str, int] = {}
            for rtype, sid in booked.items():
                span = planner.planner(rtype).get_span(sid)
                per_type[rtype] = span.request
                if (span.start, span.end) != (alloc.at, alloc.end):
                    raise SanitizerError(
                        f"SDFU window mismatch on allocation {alloc.alloc_id}: "
                        f"filter span for {rtype!r} covers "
                        f"[{span.start},{span.end}) but the allocation is "
                        f"[{alloc.at},{alloc.end})"
                    )
            actual[id(planner)] = per_type
        if expected != actual:
            names = _filter_owner_names(graph)
            raise SanitizerError(
                "SDFU divergence on allocation "
                f"{alloc.alloc_id} [{alloc.at},{alloc.end}): expected filter "
                f"charges {_render_charges(expected, names)} but the "
                f"traverser booked {_render_charges(actual, names)}"
            )
        self.stats["sdfu_checks"] += 1

    # ------------------------------------------------------------------
    # graph status sanity
    # ------------------------------------------------------------------
    def _pre_mark(self, vertex: ResourceVertex, target: str) -> None:
        if not self.check_status:
            return
        self.stats["status_checks"] += 1
        if vertex.status == target:
            verb = "drain" if target == "down" else "resume"
            raise SanitizerError(
                f"double {verb}: vertex {vertex.name!r} is already "
                f"{target!r} (at {_call_site()}); the failure/repair guard "
                "was bypassed"
            )


# ----------------------------------------------------------------------
# independent SDFU recompute (the ground truth the check compares against)
# ----------------------------------------------------------------------
def _expected_sdfu_charges(
    graph: ResourceGraph,
    subsystem: str,
    alloc: Allocation,
    prune_types: set,
) -> Dict[int, Dict[str, int]]:
    """What §3.4 says the filters must be charged for ``alloc``.

    Explicit (non-pass-through, amount-carrying) selections charge their
    amount to every ancestor filter tracking their type; top-level exclusive
    selections additionally charge their whole subtree totals (minus
    explicitly selected descendants) to their own filter and every ancestor
    filter.  Charges that net to zero or less are dropped.
    """
    if not prune_types:
        return {}
    charges: Dict[int, Dict[str, int]] = {}

    def charge(vertex: ResourceVertex, counts: Dict[str, int],
               include_self: bool) -> None:
        targets = list(graph.ancestors(vertex, subsystem))
        if include_self:
            targets.insert(0, vertex)
        for target in targets:
            filters = target.prune_filters
            if filters is None:
                continue
            bucket = charges.setdefault(id(filters), {})
            for rtype, qty in counts.items():
                if filters.tracks(rtype):
                    bucket[rtype] = bucket.get(rtype, 0) + qty

    explicit = [
        sel for sel in alloc.selections if not sel.passthrough and sel.amount
    ]
    for sel in explicit:
        if sel.type in prune_types:
            charge(sel.vertex, {sel.type: sel.amount}, include_self=False)

    exclusive = [
        sel for sel in alloc.selections if sel.exclusive and not sel.passthrough
    ]
    paths = {id(sel): sel.vertex.path(subsystem) for sel in exclusive}
    for sel in exclusive:
        path = paths[id(sel)]
        if any(
            other is not sel and path.startswith(paths[id(other)] + "/")
            for other in exclusive
        ):
            continue  # nested under another exclusive hold
        extras = {
            rtype: total
            for rtype, total in graph.subtree_totals(
                sel.vertex, subsystem
            ).items()
            if rtype in prune_types
        }
        extras[sel.type] = extras.get(sel.type, 0) - sel.vertex.size
        prefix = path + "/"
        for other in explicit:
            if other.vertex is sel.vertex:
                continue
            if other.vertex.path(subsystem).startswith(prefix):
                if other.type in extras:
                    extras[other.type] -= other.amount
        extras = {rtype: qty for rtype, qty in extras.items() if qty > 0}
        if extras:
            charge(sel.vertex, extras, include_self=True)

    return {
        fid: {rtype: qty for rtype, qty in bucket.items() if qty > 0}
        for fid, bucket in charges.items()
        if any(qty > 0 for qty in bucket.values())
    }


def _filter_owner_names(graph: ResourceGraph) -> Dict[int, str]:
    names: Dict[int, str] = {}
    for vertex in graph.vertices():
        if vertex.prune_filters is not None:
            names[id(vertex.prune_filters)] = vertex.name
    return names


def _render_charges(
    charges: Dict[int, Dict[str, int]], names: Dict[int, str]
) -> str:
    rendered = {
        names.get(fid, f"<filter {fid}>"): dict(sorted(bucket.items()))
        for fid, bucket in charges.items()
    }
    return repr(dict(sorted(rendered.items()))) if rendered else "{}"


# ----------------------------------------------------------------------
# class-level proxies
# ----------------------------------------------------------------------
def _install_proxies() -> None:  # guarded-by: _SAN_LOCK
    _patch(Planner, "rem_span", _wrap_rem_span)
    _patch(Planner, "add_span", _wrap_add_span)
    _patch(PlannerMulti, "rem_span", _wrap_rem_span)
    _patch(PlannerMulti, "add_span", _wrap_add_span)
    _patch(Traverser, "_book", _wrap_book)
    _patch(Traverser, "install_allocation", _wrap_install)
    _patch(ResourceGraph, "mark_down", _wrap_mark("down"))
    _patch(ResourceGraph, "mark_up", _wrap_mark("up"))


def _patch(cls: type, name: str, factory: Callable) -> None:  # guarded-by: _SAN_LOCK
    key = (cls, name)
    original = cls.__dict__[name]
    FluxSan._originals[key] = original
    setattr(cls, name, factory(original))


def _uninstall_proxies() -> None:  # guarded-by: _SAN_LOCK
    for (cls, name), original in FluxSan._originals.items():
        setattr(cls, name, original)
    FluxSan._originals.clear()


def _wrap_rem_span(original: Callable) -> Callable:
    def rem_span(self: object, span_id: int) -> Any:
        for sanitizer in FluxSan.active():
            sanitizer._pre_rem_span(self, span_id)
        result = original(self, span_id)
        for sanitizer in FluxSan.active():
            sanitizer._post_rem_span(self, span_id)
        return result

    rem_span.__doc__ = original.__doc__
    return rem_span


def _wrap_add_span(original: Callable) -> Callable:
    def add_span(self: object, *args: Any, **kwargs: Any) -> int:
        span_id = original(self, *args, **kwargs)
        for sanitizer in FluxSan.active():
            sanitizer._post_add_span(self, span_id)
        return span_id

    add_span.__doc__ = original.__doc__
    return add_span


def _wrap_book(original: Callable) -> Callable:
    def _book(self: Traverser, *args: Any, **kwargs: Any) -> Allocation:
        alloc = original(self, *args, **kwargs)
        for sanitizer in FluxSan.active():
            sanitizer._check_allocation(self, alloc, booked=True)
        return alloc

    _book.__doc__ = original.__doc__
    return _book


def _wrap_install(original: Callable) -> Callable:
    def install_allocation(self: Traverser, alloc: Allocation) -> None:
        original(self, alloc)
        for sanitizer in FluxSan.active():
            # Recovery re-installs book no new filter spans, so only the
            # overlap check applies here.
            sanitizer._check_allocation(self, alloc, booked=False)

    install_allocation.__doc__ = original.__doc__
    return install_allocation


def _wrap_mark(target: str) -> Callable:
    def factory(original: Callable) -> Callable:
        def mark(self: ResourceGraph, vertex: ResourceVertex) -> None:
            for sanitizer in FluxSan.active():
                sanitizer._pre_mark(vertex, target)
            original(self, vertex)

        mark.__doc__ = original.__doc__
        return mark

    return factory


# ----------------------------------------------------------------------
# dual-run nondeterminism detector
# ----------------------------------------------------------------------
@dataclass
class DualRunReport:
    """Outcome of a lockstep dual run.

    ``diverged_at`` is ``None`` when the runs were identical; otherwise the
    zero-based event index at which the fingerprints first differed
    (``0`` = the factories already built different initial states), with
    ``diffs`` naming the differing fingerprint paths.
    """

    events: int
    diverged_at: Optional[int] = None
    diffs: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.diverged_at is None

    def summary(self) -> str:
        if self.ok:
            return (
                f"dual run deterministic over {self.events} event(s): "
                "fingerprints identical at every step"
            )
        shown = "; ".join(self.diffs[:5])
        more = len(self.diffs) - 5
        if more > 0:
            shown += f"; ... {more} more"
        return (
            f"dual run DIVERGED at event {self.diverged_at}: {shown}"
        )


def dual_run(
    build: Callable[[], Any],
    max_events: Optional[int] = None,
    raise_on_divergence: bool = True,
) -> DualRunReport:
    """Execute a simulation twice with identical inputs and diff states.

    ``build`` is a zero-argument factory returning a fully prepared
    :class:`~repro.sched.simulator.ClusterSimulator` (graph built, workload
    submitted).  It is called twice; both simulators are stepped in
    lockstep and their :func:`~repro.recovery.state_fingerprint` values are
    compared after every event.  Any hidden wall-clock read, unseeded RNG,
    or iteration-order dependence shows up as a divergence at the first
    event it influences.

    Raises :class:`~repro.errors.SanitizerError` on divergence (or returns
    the failing :class:`DualRunReport` when ``raise_on_divergence`` is
    false).
    """
    from ..recovery.diff import state_fingerprint, _walk

    first = build()
    second = build()
    events = 0
    while True:
        diffs: List[str] = []
        _walk(state_fingerprint(first), state_fingerprint(second), "", diffs)
        if diffs:
            report = DualRunReport(
                events=events, diverged_at=events, diffs=diffs
            )
            if raise_on_divergence:
                raise SanitizerError(report.summary())
            return report
        if max_events is not None and events >= max_events:
            return DualRunReport(events=events)
        when_first = first.step()
        when_second = second.step()
        if when_first != when_second:
            report = DualRunReport(
                events=events,
                diverged_at=events,
                diffs=[
                    f"event time: {when_first!r} != {when_second!r}"
                ],
            )
            if raise_on_divergence:
                raise SanitizerError(report.summary())
            return report
        if when_first is None:
            return DualRunReport(events=events)
        events += 1
