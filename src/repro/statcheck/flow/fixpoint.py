"""Worklist fixpoint solvers for fluxflow.

Two solvers, both classic chaotic iteration over a monotone transfer
function on a finite lattice:

* :func:`solve_cfg` — forward data-flow over one function's control-flow
  graph (:mod:`repro.statcheck.flow.cfg`).  Exception edges propagate the
  *pre*-state of the raising statement (the statement's effects are assumed
  not to have happened when it raised), normal edges propagate the
  post-state.
* :func:`solve_summaries` — fixpoint over a dependency graph of function
  summaries: recompute a function whenever one of its callees' summaries
  changed, until nothing changes.  Used for the interprocedural
  release/escape/mutation summaries and taint seeds.

Both terminate because states grow monotonically in finite lattices
(sets of facts drawn from the finite program text).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Iterable, List, Set, Tuple, TypeVar

__all__ = ["solve_cfg", "solve_summaries"]

S = TypeVar("S")
K = TypeVar("K", bound=Hashable)


def solve_cfg(
    cfg: "object",
    init: S,
    bottom: S,
    transfer: Callable[["object", S], S],
    join: Callable[[S, S], S],
    max_iterations: int = 100_000,
) -> Dict[int, S]:
    """Forward worklist solve; returns the IN state per node id.

    ``cfg`` is a :class:`repro.statcheck.flow.cfg.CFG`; ``transfer`` maps a
    node's IN state to its normal-exit OUT state.  The solver iterates to a
    fixpoint (bounded by ``max_iterations`` as a defensive backstop against
    a non-monotone transfer — never hit in practice).
    """
    IN: Dict[int, S] = {node.node_id: bottom for node in cfg.nodes}
    IN[cfg.entry.node_id] = init
    # Seed with every node: transfer effects must be applied at least once
    # even when no IN state differs from bottom yet.
    work = deque(cfg.nodes)
    queued: Set[int] = {node.node_id for node in cfg.nodes}
    iterations = 0
    while work:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - defensive
            break
        node = work.popleft()
        queued.discard(node.node_id)
        in_state = IN[node.node_id]
        out_state = transfer(node, in_state)
        for succ, is_exception in node.succs:
            flowed = in_state if is_exception else out_state
            merged = join(IN[succ.node_id], flowed)
            if merged != IN[succ.node_id]:
                IN[succ.node_id] = merged
                if succ.node_id not in queued:
                    queued.add(succ.node_id)
                    work.append(succ)
    return IN


def solve_summaries(
    keys: Iterable[K],
    dependents: Callable[[K], Iterable[K]],
    recompute: Callable[[K], bool],
    max_iterations: int = 1_000_000,
) -> None:
    """Iterate ``recompute`` over ``keys`` until stable.

    ``recompute(key)`` returns True when the summary for ``key`` changed;
    ``dependents(key)`` yields the keys whose summaries read ``key``'s (for
    call summaries: the callers of ``key``).  Every key is computed at
    least once.
    """
    work = deque(keys)
    queued: Set[K] = set(work)
    iterations = 0
    while work:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - defensive
            break
        key = work.popleft()
        queued.discard(key)
        if recompute(key):
            for dep in dependents(key):
                if dep not in queued:
                    queued.add(dep)
                    work.append(dep)
