"""fluxflow program model: every module of the analyzed tree, parsed once,
with import maps and symbol tables for whole-program resolution.

The model deliberately mirrors how the tree is laid out rather than how
Python's import machinery works at runtime: a module's dotted name is
derived from its path (walking up through ``__init__.py`` packages, with a
``src/``-stripping fallback for in-memory sources), and name resolution
chases ``from x import y`` chains through package ``__init__`` re-exports
up to a bounded depth.  That is enough to resolve every project-internal
call the analyses care about; anything else is treated as *external* and
handled conservatively by each analysis.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core import SourceModule, _expand

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "FlowProgram",
    "module_name_for_path",
]

_MAX_RESOLVE_DEPTH = 16


def module_name_for_path(path: str, package_dirs: Optional[Set[str]] = None) -> str:
    """Derive a dotted module name from a file path.

    Walks parent directories upward for as long as they are packages — a
    directory counts as a package when it holds an ``__init__.py`` on disk
    or appears in ``package_dirs`` (directories of in-memory sources that
    include an ``__init__.py``).  When no package chain exists (synthetic
    fixture paths), falls back to the path itself with a leading ``src``
    component stripped: ``src/repro/sched/ops.py`` -> ``repro.sched.ops``.
    """
    norm = path.replace(os.sep, "/")
    parts = [p for p in norm.split("/") if p not in ("", ".")]
    if not parts:
        return norm
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    dir_parts = parts[:-1]
    pkg_parts: List[str] = []
    while dir_parts:
        candidate = "/".join(dir_parts)
        is_pkg = (package_dirs is not None and candidate in package_dirs) or (
            os.path.isfile(os.path.join(*dir_parts, "__init__.py"))
            if not norm.startswith("/")
            else os.path.isfile("/" + os.path.join(*dir_parts, "__init__.py"))
        )
        if not is_pkg:
            break
        pkg_parts.insert(0, dir_parts[-1])
        dir_parts = dir_parts[:-1]
    if not pkg_parts:
        # Fallback for paths with no importable package chain on disk.
        fallback = [p for p in parts[:-1] if p != "src"]
        pkg_parts = fallback
    if stem == "__init__":
        return ".".join(pkg_parts) if pkg_parts else stem
    return ".".join(pkg_parts + [stem])


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    name: str
    qualname: str  # e.g. "repro.sched.simulator.ClusterSimulator.submit"
    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_info: Optional["ClassInfo"] = None
    params: List[str] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_info is not None

    def __hash__(self) -> int:
        return hash(self.qualname)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


@dataclass
class ClassInfo:
    """One class definition with its methods and tracked attribute types."""

    name: str
    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_exprs: List[ast.expr] = field(default_factory=list)
    #: attribute name -> class qualname, from ``self.x = ClassName(...)``,
    #: annotated parameters assigned to attributes, and ``self.x: T`` forms
    attr_types: Dict[str, str] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.qualname)


@dataclass
class ModuleInfo:
    """One parsed source module plus its import maps and symbols."""

    name: str
    path: str
    source_module: SourceModule
    #: local alias -> imported module dotted name (``import a.b as c``)
    import_modules: Dict[str, str] = field(default_factory=dict)
    #: local alias -> (module dotted name, original name) for from-imports
    import_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    is_package: bool = False

    @property
    def tree(self) -> ast.Module:
        return self.source_module.tree


class FlowProgram:
    """Whole-program index over a set of modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.modules_by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def from_paths(cls, paths: Sequence[str]) -> "FlowProgram":
        """Parse every ``.py`` file under ``paths`` into a program."""
        sources: Dict[str, str] = {}
        for path in _expand(paths):
            with open(path, "rb") as handle:
                raw = handle.read()
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                from ..core import LintParseError

                raise LintParseError(f"{path}: cannot decode as UTF-8: {exc}")
            sources[path.replace(os.sep, "/")] = text
        return cls.from_sources(sources)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "FlowProgram":
        """Build a program from ``{path: source}`` (paths may be virtual)."""
        program = cls()
        package_dirs = {
            os.path.dirname(path.replace(os.sep, "/"))
            for path in sources
            if os.path.basename(path) == "__init__.py"
        }
        for path in sorted(sources):
            norm = path.replace(os.sep, "/")
            module = SourceModule.parse(sources[path], norm)
            name = module_name_for_path(norm, package_dirs)
            info = ModuleInfo(
                name=name,
                path=norm,
                source_module=module,
                is_package=os.path.basename(norm) == "__init__.py",
            )
            program.modules[name] = info
            program.modules_by_path[norm] = info
        for info in program.modules.values():
            program._index_module(info)
        for info in program.modules.values():
            program._infer_attr_types(info)
        return program

    # -- per-module indexing -------------------------------------------
    def _index_module(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            self._collect_imports(info, node)
        for node in ast.walk(info.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._collect_imports(info, node)
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    name=node.name,
                    qualname=f"{info.name}.{node.name}",
                    module=info,
                    node=node,
                    params=_param_names(node),
                )
                info.functions[node.name] = fn
                self.functions[fn.qualname] = fn
            elif isinstance(node, ast.ClassDef):
                ci = ClassInfo(
                    name=node.name,
                    qualname=f"{info.name}.{node.name}",
                    module=info,
                    node=node,
                    base_exprs=list(node.bases),
                )
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = FunctionInfo(
                            name=stmt.name,
                            qualname=f"{ci.qualname}.{stmt.name}",
                            module=info,
                            node=stmt,
                            class_info=ci,
                            params=_param_names(stmt),
                        )
                        ci.methods[stmt.name] = method
                        self.functions[method.qualname] = method
                info.classes[node.name] = ci
                self.classes[ci.qualname] = ci

    def _collect_imports(self, info: ModuleInfo, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.import_modules[alias.asname] = alias.name
                else:
                    info.import_modules[alias.name.split(".")[0]] = (
                        alias.name.split(".")[0]
                    )
                    # ``import a.b`` also makes ``a.b`` reachable as a chain
                    # starting at ``a``; resolution handles the tail.
        elif isinstance(node, ast.ImportFrom):
            base = self._resolve_relative(info, node)
            if base is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.import_names[alias.asname or alias.name] = (base, alias.name)

    def _resolve_relative(
        self, info: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if not node.level:
            return node.module
        parts = info.name.split(".")
        if not info.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop:
            if drop > len(parts):
                return None
            parts = parts[: len(parts) - drop]
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base or None

    # -- attribute type inference --------------------------------------
    def _infer_attr_types(self, info: ModuleInfo) -> None:
        for ci in info.classes.values():
            for method in ci.methods.values():
                param_types = self.param_types(method)
                for stmt in ast.walk(method.node):
                    target: Optional[str] = None
                    value: Optional[ast.expr] = None
                    annotation: Optional[ast.expr] = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        tgt = stmt.targets[0]
                        if _is_self_attr(tgt):
                            target, value = tgt.attr, stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        if _is_self_attr(stmt.target):
                            target = stmt.target.attr
                            value = stmt.value
                            annotation = stmt.annotation
                    if target is None or target in ci.attr_types:
                        continue
                    inferred: Optional[str] = None
                    if annotation is not None:
                        resolved = self.resolve_annotation(info, annotation)
                        if resolved is not None:
                            inferred = resolved.qualname
                    if inferred is None and value is not None:
                        inferred = self._infer_expr_type(info, value, param_types)
                    if inferred is not None:
                        ci.attr_types[target] = inferred

    def _infer_expr_type(
        self,
        info: ModuleInfo,
        value: ast.expr,
        param_types: Dict[str, str],
    ) -> Optional[str]:
        if isinstance(value, ast.Call):
            resolved = self.resolve_expr(info, value.func)
            if isinstance(resolved, ClassInfo):
                return resolved.qualname
        elif isinstance(value, ast.Name):
            return param_types.get(value.id)
        return None

    # -- resolution -----------------------------------------------------
    def resolve_expr(
        self, info: ModuleInfo, expr: ast.AST, depth: int = 0
    ) -> Optional[object]:
        """Resolve a Name/Attribute chain to a project symbol.

        Returns a :class:`FunctionInfo`, :class:`ClassInfo` or
        :class:`ModuleInfo`, or None for anything external/dynamic.
        """
        parts = _dotted_parts(expr)
        if parts is None:
            return None
        return self.resolve_dotted(info, parts, depth)

    def resolve_dotted(
        self, info: ModuleInfo, parts: Sequence[str], depth: int = 0
    ) -> Optional[object]:
        if depth > _MAX_RESOLVE_DEPTH or not parts:
            return None
        head, rest = parts[0], list(parts[1:])
        if head in info.classes:
            return self._descend_class(info.classes[head], rest)
        if head in info.functions:
            return info.functions[head] if not rest else None
        if head in info.import_names:
            target_module, original = info.import_names[head]
            return self._resolve_in_module(
                target_module, [original] + rest, depth + 1
            )
        if head in info.import_modules:
            return self._resolve_in_module(
                info.import_modules[head], rest, depth + 1
            )
        return None

    def _resolve_in_module(
        self, module_name: str, parts: Sequence[str], depth: int
    ) -> Optional[object]:
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        # Longest module prefix wins: ``repro`` + [sched, simulator, X]
        # resolves inside module ``repro.sched.simulator``.
        parts = list(parts)
        best: Optional[Tuple[ModuleInfo, List[str]]] = None
        candidate = module_name
        if candidate in self.modules:
            best = (self.modules[candidate], parts)
        for index, part in enumerate(parts):
            candidate = f"{candidate}.{part}"
            if candidate in self.modules:
                best = (self.modules[candidate], parts[index + 1 :])
        if best is None:
            return None
        module, remainder = best
        if not remainder:
            return module
        return self.resolve_dotted(module, remainder, depth + 1)

    def _descend_class(
        self, ci: ClassInfo, rest: Sequence[str]
    ) -> Optional[object]:
        if not rest:
            return ci
        if len(rest) == 1:
            return self.find_method(ci, rest[0])
        return None

    def find_method(self, ci: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Look up ``name`` on ``ci`` or its resolvable project bases."""
        seen: Set[str] = set()
        stack = [ci]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            for base in current.base_exprs:
                resolved = self.resolve_expr(current.module, base)
                if isinstance(resolved, ClassInfo):
                    stack.append(resolved)
        return None

    def resolve_annotation(
        self, info: ModuleInfo, annotation: ast.AST
    ) -> Optional[ClassInfo]:
        """Resolve a type annotation to a project class (through
        ``Optional[T]``, ``"T"`` strings, and ``T | None``)."""
        node: Optional[ast.AST] = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            base = _dotted_parts(node.value)
            if base and base[-1] in ("Optional", "Annotated"):
                inner = node.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self.resolve_annotation(info, inner)
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            for side in (node.left, node.right):
                if not (isinstance(side, ast.Constant) and side.value is None):
                    resolved = self.resolve_annotation(info, side)
                    if resolved is not None:
                        return resolved
            return None
        resolved = self.resolve_expr(info, node) if node is not None else None
        return resolved if isinstance(resolved, ClassInfo) else None

    # -- typing helpers -------------------------------------------------
    def param_types(self, fn: FunctionInfo) -> Dict[str, str]:
        """Annotated parameter types as ``{param: class qualname}``."""
        types: Dict[str, str] = {}
        args = fn.node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if arg.annotation is not None:
                resolved = self.resolve_annotation(fn.module, arg.annotation)
                if resolved is not None:
                    types[arg.arg] = resolved.qualname
        return types

    def function_at(self, info: ModuleInfo, lineno: int) -> Optional[FunctionInfo]:
        """Innermost indexed function/method containing ``lineno``."""
        best: Optional[FunctionInfo] = None
        best_span = None
        for fn in self.functions.values():
            if fn.module is not info:
                continue
            start = fn.node.lineno
            end = getattr(fn.node, "end_lineno", start)
            if start <= lineno <= end:
                span = end - start
                if best_span is None or span < best_span:
                    best, best_span = fn, span
        return best


def _param_names(node: ast.AST) -> List[str]:
    args = node.args
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    names.extend(a.arg for a in args.kwonlyargs)
    return names


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None
