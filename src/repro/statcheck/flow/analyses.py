"""fluxflow analyses: interprocedural rules on top of the flow substrate.

========  ==============================================================
SPAN001   planner span leak: a path reaches function exit holding an
          ``add_span`` handle that was never ``rem_span``-ed, stored,
          or handed to a releasing helper (exception edges included)
DET002    transitive determinism taint: a critical-package call site
          whose callee reaches wall-clock/unseeded RNG through any
          resolved call chain (the chain is printed)
EXC002    transitive crash swallowing: a critical-package call site
          whose callee (transitively) contains a handler that absorbs
          ``SimulatedCrash`` without re-raising
JRN002    journal-before-mutate across helpers: in any class with a
          ``_journal`` method, a journaling method must not call a
          (transitively) state-mutating helper before the journal append
========  ==============================================================

Analyses report through the same :class:`repro.statcheck.core.Violation`
records as the intraprocedural rules, honour the same suppression
directives, and are gated by the same baseline file (see ``baseline.py``).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Type

from ..core import Violation
from ..rules import WallClockRule, _handler_catches, _has_bare_reraise
from .callgraph import CallGraph, CallSite, build_call_graph, walk_own
from .cfg import build_cfg
from .fixpoint import solve_cfg
from .program import FlowProgram, FunctionInfo, ModuleInfo
from .summaries import (
    ACQUIRE_METHOD,
    RELEASE_METHOD,
    MUTATOR_NAMES,
    SummaryTable,
    compute_summaries,
    _classify_use,
    _parent_map,
    _rooted_at_self,
)

__all__ = [
    "FlowAnalysis",
    "FlowContext",
    "FlowEngine",
    "register_flow_analysis",
    "all_flow_analyses",
    "analyze_sources",
    "SpanLeakAnalysis",
    "DeterminismTaintAnalysis",
    "CrashSwallowTaintAnalysis",
    "JournalHelperAnalysis",
]

#: packages whose code paths feed the journal/replay contract (mirrors API001)
_CORE_PACKAGES = (
    "planner", "match", "sched", "resource", "recovery", "resilience",
)


def _is_critical(path: str) -> bool:
    return any(f"repro/{package}/" in path for package in _CORE_PACKAGES)


@dataclass
class FlowContext:
    """Everything an analysis needs: program, call graph, summaries."""

    program: FlowProgram
    graph: CallGraph
    summaries: SummaryTable


class FlowAnalysis:
    """Base class for interprocedural analyses (one instance per run)."""

    rule_id: str = ""
    summary: str = ""

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def run(self, ctx: FlowContext) -> List[Violation]:
        raise NotImplementedError

    def report(
        self, module: ModuleInfo, line: int, col: int, message: str
    ) -> None:
        if not module.source_module.is_suppressed(self.rule_id, line):
            self.violations.append(
                Violation(module.path, line, col, self.rule_id, message)
            )


_FLOW_REGISTRY: Dict[str, Type[FlowAnalysis]] = {}


def register_flow_analysis(cls: Type[FlowAnalysis]) -> Type[FlowAnalysis]:
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _FLOW_REGISTRY:
        raise ValueError(f"duplicate flow rule id {cls.rule_id}")
    _FLOW_REGISTRY[cls.rule_id] = cls
    return cls


def all_flow_analyses() -> Dict[str, Type[FlowAnalysis]]:
    return dict(_FLOW_REGISTRY)


# ---------------------------------------------------------------------------
# taint propagation shared by DET002 / EXC002
# ---------------------------------------------------------------------------


def _propagate(
    seeds: Mapping[str, Tuple], graph: CallGraph
) -> Dict[str, Tuple[Optional[str], Tuple]]:
    """BFS taint up the reverse call graph.

    Returns ``{qualname: (next_qualname_toward_seed, seed_payload)}``; seed
    functions map to ``(None, payload)``.
    """
    taint: Dict[str, Tuple[Optional[str], Tuple]] = {
        qualname: (None, payload) for qualname, payload in seeds.items()
    }
    queue = deque(seeds)
    while queue:
        current = queue.popleft()
        payload = taint[current][1]
        for caller in sorted(graph.callers_of(current)):
            if caller not in taint:
                taint[caller] = (current, payload)
                queue.append(caller)
    return taint


def _chain(
    program: FlowProgram,
    taint: Mapping[str, Tuple[Optional[str], Tuple]],
    start: str,
) -> str:
    names: List[str] = []
    current: Optional[str] = start
    hops = 0
    while current is not None and hops < 32:
        fn = program.functions.get(current)
        names.append(fn.name if fn is not None else current)
        current = taint[current][0] if current in taint else None
        hops += 1
    return " -> ".join(names)


# ---------------------------------------------------------------------------
# SPAN001
# ---------------------------------------------------------------------------


@register_flow_analysis
class SpanLeakAnalysis(FlowAnalysis):
    """SPAN001: planner spans (paper §4.1) must stay exactly consistent
    with allocations — a span id that is neither freed, stored, nor
    handed off is unreachable garbage in every planner, and rollback on
    the recovery path can no longer remove it."""

    rule_id = "SPAN001"
    summary = "add_span handle can leak: a path exits without rem_span"

    def run(self, ctx: FlowContext) -> List[Violation]:
        for fn in ctx.program.functions.values():
            _SpanChecker(self, ctx, fn).check()
        return self.violations


#: one tracked acquisition: (variable, line, col of the add_span call)
_Acq = Tuple[str, int, int]


class _SpanChecker:
    def __init__(
        self, analysis: SpanLeakAnalysis, ctx: FlowContext, fn: FunctionInfo
    ) -> None:
        self.analysis = analysis
        self.ctx = ctx
        self.fn = fn
        #: acq -> (reason, detail line or None); first reason wins
        self.leaks: Dict[_Acq, Tuple[str, Optional[int]]] = {}
        #: acq -> inert helper qualnames consulted while held
        self.notes: Dict[_Acq, Set[str]] = {}
        self.drops: Set[Tuple[int, int]] = set()

    def check(self) -> None:
        if not self._mentions_acquire():
            return
        cfg = build_cfg(self.fn.node)
        in_states = solve_cfg(
            cfg,
            init=frozenset(),
            bottom=frozenset(),
            transfer=self._transfer,
            join=lambda a, b: a | b,
        )
        for acq in in_states[cfg.exit.node_id]:
            self.leaks.setdefault(acq, ("exit", None))
        self._emit()

    def _mentions_acquire(self) -> bool:
        for node in walk_own(self.fn.node):
            if isinstance(node, ast.Attribute) and node.attr == ACQUIRE_METHOD:
                return True
        return False

    # -- transfer -------------------------------------------------------
    def _transfer(self, node: "object", state: frozenset) -> frozenset:
        stmt = getattr(node, "stmt", None)
        if stmt is None:
            return state
        held: Dict[str, List[_Acq]] = {}
        for acq in state:
            held.setdefault(acq[0], []).append(acq)
        removed: Set[_Acq] = set()
        added: List[_Acq] = []

        # 1) classify uses of held variables in this statement's own exprs
        if held:
            for fragment in _fragments(stmt):
                effects = self._scan_fragment(fragment, set(held))
                for var, (effect, helpers) in effects.items():
                    for acq in held[var]:
                        if effect in ("release", "escape"):
                            removed.add(acq)
                        elif helpers:
                            self.notes.setdefault(acq, set()).update(helpers)

        # 2) rebinding a held variable loses the span id permanently
        targets, value = _assign_parts(stmt)
        for name in _names_stored(targets, stmt):
            for acq in held.get(name, []):
                if acq not in removed:
                    removed.add(acq)
                    self.leaks.setdefault(acq, ("rebound", stmt.lineno))

        # 3) new acquisition: v = X.add_span(...) without span_id=
        if (
            value is not None
            and len(targets) == 1
            and isinstance(targets[0], ast.Name)
        ):
            call = _direct_acquire(value)
            if call is not None:
                added.append(
                    (targets[0].id, call.lineno, call.col_offset)
                )

        # 4) bare expression drop: the span id is unrecoverable immediately
        if isinstance(stmt, ast.Expr):
            call = _direct_acquire(stmt.value)
            if call is not None:
                self.drops.add((call.lineno, call.col_offset))

        if not removed and not added:
            return state
        return frozenset((state - removed) | set(added))

    def _scan_fragment(
        self, fragment: ast.AST, names: Set[str]
    ) -> Dict[str, Tuple[str, Set[str]]]:
        """Per-variable strongest effect in one expression fragment.

        Effects: ``release`` > ``escape`` > ``inert``; for inert uses that
        flowed through a resolved helper, the helper qualnames are noted
        for the diagnostic chain.
        """
        parents = _parent_map(fragment)
        own = set(map(id, walk_own(fragment)))
        own.add(id(fragment))
        results: Dict[str, Tuple[str, Set[str]]] = {}
        for node in ast.walk(fragment):
            if not (isinstance(node, ast.Name) and node.id in names):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            if id(node) not in own:
                effect, witness = "escape", None  # captured by a closure
            else:
                effect, witness = _classify_use(
                    node, parents, self.ctx.graph, self.ctx.summaries
                )
            previous, helpers = results.get(node.id, ("inert", set()))
            order = {"inert": 0, "escape": 1, "release": 2}
            if order[effect] > order[previous]:
                previous = effect
            if (
                effect == "inert"
                and witness is not None
                and "inspected by" in witness
            ):
                helpers.add(witness.split("inspected by ", 1)[1].split("(")[0])
            results[node.id] = (previous, helpers)
        return results

    # -- reporting ------------------------------------------------------
    def _emit(self) -> None:
        module = self.fn.module
        for line, col in sorted(self.drops):
            self.analysis.report(
                module,
                line,
                col,
                f"{ACQUIRE_METHOD}() result is discarded; without the span "
                f"id a later {RELEASE_METHOD}() is impossible and the span "
                "leaks (bind the result or pass an explicit span_id=)",
            )
        for acq in sorted(self.leaks):
            var, line, col = acq
            reason, detail = self.leaks[acq]
            if reason == "rebound":
                message = (
                    f"span handle '{var}' acquired here is overwritten on "
                    f"line {detail} before {RELEASE_METHOD}(); the span id "
                    "is lost and the span leaks"
                )
            else:
                message = (
                    f"span handle '{var}' acquired here can leak: a path "
                    f"through {self.fn.name}() reaches its exit without "
                    f"{RELEASE_METHOD}(), storing, or returning it"
                )
                helpers = self.notes.get(acq)
                if helpers:
                    chain = ", ".join(sorted(helpers))
                    message += (
                        f" [held across {chain}(), which neither releases "
                        "nor stores it]"
                    )
            self.analysis.report(module, line, col, message)


def _direct_acquire(value: Optional[ast.AST]) -> Optional[ast.Call]:
    """``X.add_span(...)`` with no explicit ``span_id=`` (an explicit id is
    a crash-recovery re-insert whose id is already journaled)."""
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == ACQUIRE_METHOD
        and not any(kw.arg == "span_id" for kw in value.keywords)
    ):
        return value
    return None


def _fragments(stmt: ast.AST) -> List[ast.AST]:
    """The expression parts evaluated *at* this CFG node (compound
    statements contribute only their headers; bodies are separate nodes)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    return [stmt]


def _assign_parts(
    stmt: ast.AST,
) -> Tuple[List[ast.expr], Optional[ast.expr]]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets), stmt.value
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [stmt.target], stmt.value
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target], None
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target], None
    return [], None


def _names_stored(targets: Sequence[ast.expr], stmt: ast.AST) -> List[str]:
    names: List[str] = []
    queue: List[ast.AST] = list(targets)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        queue.extend(
            item.optional_vars
            for item in stmt.items
            if item.optional_vars is not None
        )
    if isinstance(stmt, ast.Delete):
        queue.extend(stmt.targets)
    while queue:
        node = queue.pop()
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            queue.extend(node.elts)
        elif isinstance(node, ast.Starred):
            queue.append(node.value)
    return names


# ---------------------------------------------------------------------------
# DET002
# ---------------------------------------------------------------------------


@register_flow_analysis
class DeterminismTaintAnalysis(FlowAnalysis):
    """DET002: recovery replay (PR 2) re-executes journaled commands;
    DET001 flags direct wall-clock/RNG reads, this rule flags critical
    call sites whose callee reaches one through any resolved chain."""

    rule_id = "DET002"
    summary = "call chain reaches wall-clock/unseeded RNG (replay diverges)"

    def run(self, ctx: FlowContext) -> List[Violation]:
        seeds: Dict[str, Tuple] = {}
        for module in ctx.program.modules.values():
            for violation in WallClockRule(module.source_module).run():
                fn = ctx.program.function_at(module, violation.line)
                if fn is None or fn.qualname in seeds:
                    continue
                cause = violation.message.split(";")[0]
                seeds[fn.qualname] = (cause, module.path, violation.line)
        if not seeds:
            return self.violations
        taint = _propagate(seeds, ctx.graph)
        for fn in ctx.program.functions.values():
            if not _is_critical(fn.module.path):
                continue
            for site in ctx.graph.sites_in(fn):
                callee = site.callee
                if callee is None or callee.qualname not in taint:
                    continue
                cause, path, line = taint[callee.qualname][1]
                chain = _chain(ctx.program, taint, callee.qualname)
                self.report(
                    fn.module,
                    site.node.lineno,
                    site.node.col_offset,
                    f"call into {callee.name}() reaches nondeterminism: "
                    f"{chain} => {cause} at {path}:{line}; replay of "
                    "journaled commands will diverge",
                )
        return self.violations


# ---------------------------------------------------------------------------
# EXC002
# ---------------------------------------------------------------------------


@register_flow_analysis
class CrashSwallowTaintAnalysis(FlowAnalysis):
    """EXC002: fault injection relies on ``SimulatedCrash`` propagating to
    the simulator loop.  EXC001 flags broad handlers intraprocedurally;
    this rule flags critical call sites whose callee (transitively)
    contains a handler that absorbs the crash — including handlers that
    catch ``SimulatedCrash`` *by name* without re-raising, which EXC001
    does not look for."""

    rule_id = "EXC002"
    summary = "call chain can absorb SimulatedCrash before the sim loop"

    def run(self, ctx: FlowContext) -> List[Violation]:
        seeds: Dict[str, Tuple] = {}
        for fn in ctx.program.functions.values():
            seed = self._absorbing_handler(fn)
            if seed is not None:
                seeds[fn.qualname] = seed
        if not seeds:
            return self.violations
        taint = _propagate(seeds, ctx.graph)
        for fn in ctx.program.functions.values():
            if not _is_critical(fn.module.path):
                continue
            for site in ctx.graph.sites_in(fn):
                callee = site.callee
                if callee is None or callee.qualname not in taint:
                    continue
                what, path, line = taint[callee.qualname][1]
                chain = _chain(ctx.program, taint, callee.qualname)
                self.report(
                    fn.module,
                    site.node.lineno,
                    site.node.col_offset,
                    f"call into {callee.name}() can absorb SimulatedCrash: "
                    f"{chain} => handler at {path}:{line} catches {what} "
                    "without re-raising; injected crashes must reach the "
                    "simulator loop",
                )
        return self.violations

    def _absorbing_handler(self, fn: FunctionInfo) -> Optional[Tuple]:
        module = fn.module.source_module
        for node in walk_own(fn.node):
            if not isinstance(node, ast.ExceptHandler):
                continue
            # A justified EXC001/EXC002 suppression vets the handler.
            if module.is_suppressed("EXC002", node.lineno) or (
                module.is_suppressed("EXC001", node.lineno)
            ):
                continue
            if _has_bare_reraise(node):
                continue
            if _handler_catches(node, "SimulatedCrash"):
                return ("SimulatedCrash", fn.module.path, node.lineno)
            if node.type is None:
                return ("everything (bare except)", fn.module.path, node.lineno)
            if _handler_catches(node, "BaseException"):
                return ("BaseException", fn.module.path, node.lineno)
        return None


# ---------------------------------------------------------------------------
# JRN002
# ---------------------------------------------------------------------------


@register_flow_analysis
class JournalHelperAnalysis(FlowAnalysis):
    """JRN002: write-ahead order, generalized.  JRN001 checks direct
    mutations inside ``sched/simulator.py``; this rule checks *any* class
    with a ``_journal`` method and follows helper calls — a handler that
    delegates its mutation to ``self._admit()`` before journaling is just
    as lossy on crash as one that mutates inline."""

    rule_id = "JRN002"
    summary = "journaling method runs a mutating helper before _journal"

    _EXEMPT = {"_journal", "_crashpoint"}

    def run(self, ctx: FlowContext) -> List[Violation]:
        for ci in ctx.program.classes.values():
            if "_journal" not in ci.methods:
                continue
            for name, method in ci.methods.items():
                if name in self._EXEMPT:
                    continue
                self._check_method(ctx, name, method)
        return self.violations

    def _check_method(
        self, ctx: FlowContext, name: str, method: FunctionInfo
    ) -> None:
        journal_line = self._first_journal_line(method)
        if journal_line is None:
            return
        module = method.module
        on_simulator = module.path.endswith("sched/simulator.py")
        best: Optional[Tuple[int, int, str]] = None
        for node in walk_own(method.node):
            line = getattr(node, "lineno", None)
            if line is None or line >= journal_line:
                continue
            message = self._offence(ctx, name, node, journal_line, on_simulator)
            if message is None:
                continue
            col = getattr(node, "col_offset", 0)
            if best is None or (line, col) < (best[0], best[1]):
                best = (line, col, message)
        if best is not None:
            self.report(module, best[0], best[1], best[2])

    def _offence(
        self,
        ctx: FlowContext,
        name: str,
        node: ast.AST,
        journal_line: int,
        on_simulator: bool,
    ) -> Optional[str]:
        # Direct mutation: JRN001 already owns this inside sched/simulator.py.
        if not on_simulator and isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and (
                    _rooted_at_self(target)
                ):
                    return (
                        f"{name}() mutates state on line {node.lineno} before "
                        f"journaling on line {journal_line}; a crash in "
                        "between loses the command (write-ahead order)"
                    )
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not on_simulator and (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_NAMES
            and (
                _rooted_at_self(func.value)
                or any(_rooted_at_self(arg) for arg in node.args)
            )
        ):
            return (
                f"{name}() mutates state on line {node.lineno} before "
                f"journaling on line {journal_line} (write-ahead order)"
            )
        # Transitive mutation through a resolved helper on self/self.attr.
        site = ctx.graph.site_for.get(id(node))
        if site is None or site.callee is None or not site.bound:
            return None
        receiver = site.receiver or ""
        if receiver != "self" and not receiver.startswith("self."):
            return None
        if site.callee.name in self._EXEMPT:
            return None
        summary = ctx.summaries.get(site.callee.qualname)
        if not summary.mutates_self or summary.mutation is None:
            return None
        witness = summary.mutation
        chain = " -> ".join((name, site.callee.name) + witness.chain)
        return (
            f"{name}() calls {site.callee.name}() on line {node.lineno} "
            f"before journaling on line {journal_line}, and that helper "
            f"mutates state: {chain} => {witness.what} at "
            f"{witness.path}:{witness.line}; journal first (write-ahead "
            "order)"
        )

    def _first_journal_line(self, method: FunctionInfo) -> Optional[int]:
        lines = [
            node.lineno
            for node in walk_own(method.node)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "_journal"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ]
        return min(lines, default=None)


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


class FlowEngine:
    """Runs a selected set of flow analyses over a whole program."""

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        from ...errors import FluxionError

        registry = all_flow_analyses()
        chosen = (
            {r.upper() for r in select} if select is not None else set(registry)
        )
        dropped = {r.upper() for r in ignore} if ignore is not None else set()
        unknown = (chosen | dropped) - set(registry)
        if unknown:
            raise FluxionError(
                f"unknown flow rule ids: {sorted(unknown)}; "
                f"known: {sorted(registry)}"
            )
        self.analyses: List[Type[FlowAnalysis]] = [
            registry[rule_id] for rule_id in sorted(chosen - dropped)
        ]

    def analyze_program(self, program: FlowProgram) -> List[Violation]:
        graph = build_call_graph(program)
        summaries = compute_summaries(program, graph)
        ctx = FlowContext(program=program, graph=graph, summaries=summaries)
        violations: List[Violation] = []
        for analysis_cls in self.analyses:
            violations.extend(analysis_cls().run(ctx))
        return sorted(set(violations))

    def analyze_paths(
        self, paths: Sequence[str]
    ) -> Tuple[List[Violation], int]:
        program = FlowProgram.from_paths(paths)
        return self.analyze_program(program), len(program.modules)

    def analyze_sources(self, sources: Mapping[str, str]) -> List[Violation]:
        return self.analyze_program(FlowProgram.from_sources(sources))


def analyze_sources(
    sources: Mapping[str, str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Convenience wrapper: run flow analyses over in-memory sources."""
    return FlowEngine(select=select, ignore=ignore).analyze_sources(sources)
