"""Whole-program call graph with method resolution.

Every :class:`ast.Call` in every indexed function becomes a
:class:`CallSite`.  Resolution handles the forms that actually occur in
this tree:

* ``helper(...)`` / ``mod.helper(...)`` / ``pkg.mod.helper(...)`` via the
  module import maps (:class:`repro.statcheck.flow.program.FlowProgram`);
* ``self.meth(...)`` via the enclosing class (including project base
  classes);
* ``self.attr.meth(...)`` via class attribute types inferred from
  ``self.attr = ClassName(...)`` and annotated constructor parameters;
* ``var.meth(...)`` via local variable types (annotated parameters,
  ``var = ClassName(...)``, ``var = self.attr``);
* ``ClassName(...)`` resolves to the class (and its ``__init__`` when
  defined in-project).

Anything else is an *unresolved* call site; analyses treat those
conservatively (arguments escape, effects unknown but pure-by-default for
journaling — each analysis documents its own choice).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .program import ClassInfo, FlowProgram, FunctionInfo, ModuleInfo

__all__ = ["CallSite", "CallGraph", "build_call_graph", "walk_own"]


def walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """Like :func:`ast.walk` but does not descend into nested function or
    class definitions (their bodies run at call time, not in this frame)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


@dataclass
class CallSite:
    """One call expression inside an analyzed function."""

    caller: FunctionInfo
    node: ast.Call
    callee: Optional[FunctionInfo] = None
    #: set when the call constructs a project class (callee is its __init__)
    constructed: Optional[ClassInfo] = None
    #: textual receiver ("self", "self.attr", "var", "mod") for diagnostics
    receiver: Optional[str] = None
    #: True when ``callee`` is a method invoked on an instance (self is bound)
    bound: bool = False
    #: True when the call site lives inside a nested def/lambda of the caller
    in_nested: bool = False

    @property
    def resolved(self) -> bool:
        return self.callee is not None

    def param_for_arg(self, arg: ast.AST) -> Optional[str]:
        """The callee parameter that receives ``arg``, or None."""
        if self.callee is None:
            return None
        params = list(self.callee.params)
        if self.bound and params:
            params = params[1:]  # drop self/cls
        for index, actual in enumerate(self.node.args):
            if actual is arg:
                if isinstance(actual, ast.Starred):
                    return None
                return params[index] if index < len(params) else None
        for keyword in self.node.keywords:
            if keyword.value is arg:
                return keyword.arg  # None for **kwargs — caller handles
        return None


class CallGraph:
    """Call sites plus forward/reverse qualname edges."""

    def __init__(self) -> None:
        #: caller qualname -> its call sites, in source order
        self.sites: Dict[str, List[CallSite]] = {}
        #: id(ast.Call) -> CallSite, for analyses walking statement ASTs
        self.site_for: Dict[int, CallSite] = {}
        self.edges: Dict[str, Set[str]] = {}
        self.reverse: Dict[str, Set[str]] = {}

    def add(self, site: CallSite) -> None:
        caller = site.caller.qualname
        self.sites.setdefault(caller, []).append(site)
        self.site_for[id(site.node)] = site
        if site.callee is not None:
            self.edges.setdefault(caller, set()).add(site.callee.qualname)
            self.reverse.setdefault(site.callee.qualname, set()).add(caller)

    def sites_in(self, fn: FunctionInfo) -> List[CallSite]:
        return self.sites.get(fn.qualname, [])

    def callers_of(self, qualname: str) -> Set[str]:
        return self.reverse.get(qualname, set())


def build_call_graph(program: FlowProgram) -> CallGraph:
    graph = CallGraph()
    for fn in program.functions.values():
        local_types = infer_local_types(program, fn)
        own = set(map(id, walk_own(fn.node)))
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            site = _resolve_call(program, fn, node, local_types)
            site.in_nested = id(node) not in own
            graph.add(site)
    return graph


def infer_local_types(
    program: FlowProgram, fn: FunctionInfo
) -> Dict[str, str]:
    """Local variable name -> project class qualname, flow-insensitively."""
    types: Dict[str, str] = dict(program.param_types(fn))
    if fn.class_info is not None and fn.params and fn.params[0] in ("self", "cls"):
        types[fn.params[0]] = fn.class_info.qualname
    for stmt in walk_own(fn.node):
        target: Optional[str] = None
        value: Optional[ast.expr] = None
        annotation: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            if isinstance(stmt.targets[0], ast.Name):
                target, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            target = stmt.target.id
            value = stmt.value
            annotation = stmt.annotation
        if target is None:
            continue
        inferred: Optional[str] = None
        if annotation is not None:
            resolved = program.resolve_annotation(fn.module, annotation)
            if resolved is not None:
                inferred = resolved.qualname
        if inferred is None and value is not None:
            inferred = _value_type(program, fn, value, types)
        if inferred is not None:
            types[target] = inferred
        elif target in types and value is not None:
            del types[target]  # rebound to something we cannot type
    return types


def _value_type(
    program: FlowProgram,
    fn: FunctionInfo,
    value: ast.expr,
    types: Dict[str, str],
) -> Optional[str]:
    if isinstance(value, ast.Call):
        resolved = program.resolve_expr(fn.module, value.func)
        if isinstance(resolved, ClassInfo):
            return resolved.qualname
        return None
    if isinstance(value, ast.Name):
        return types.get(value.id)
    if (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
        and fn.class_info is not None
    ):
        return fn.class_info.attr_types.get(value.attr)
    return None


def _resolve_call(
    program: FlowProgram,
    fn: FunctionInfo,
    node: ast.Call,
    local_types: Dict[str, str],
) -> CallSite:
    site = CallSite(caller=fn, node=node)
    func = node.func
    parts = _dotted_parts(func)
    if parts is None:
        return site

    # self.meth(...) / self.attr.meth(...)
    if parts[0] == "self" and fn.class_info is not None:
        if len(parts) == 2:
            method = program.find_method(fn.class_info, parts[1])
            if method is not None:
                site.callee, site.bound, site.receiver = method, True, "self"
            return site
        if len(parts) == 3:
            attr_type = fn.class_info.attr_types.get(parts[1])
            if attr_type in program.classes:
                method = program.find_method(program.classes[attr_type], parts[2])
                if method is not None:
                    site.callee, site.bound = method, True
                    site.receiver = f"self.{parts[1]}"
            return site
        return site

    # var.meth(...) with a typed local
    if len(parts) == 2 and parts[0] in local_types:
        type_name = local_types[parts[0]]
        if type_name in program.classes:
            method = program.find_method(program.classes[type_name], parts[1])
            if method is not None:
                site.callee, site.bound, site.receiver = method, True, parts[0]
        return site

    resolved = program.resolve_dotted(fn.module, parts)
    if isinstance(resolved, FunctionInfo):
        site.callee = resolved
        site.receiver = ".".join(parts[:-1]) or None
        # ClassName.method(instance, ...) — unbound: first param is explicit.
        site.bound = False
        if resolved.is_method and len(parts) >= 2:
            # Reached through a class object: unbound (self passed by caller)
            site.bound = False
    elif isinstance(resolved, ClassInfo):
        site.constructed = resolved
        init = program.find_method(resolved, "__init__")
        if init is not None:
            site.callee, site.bound = init, True
        site.receiver = parts[-1]
    return site


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None
