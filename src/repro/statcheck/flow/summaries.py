"""Interprocedural function summaries.

Two summary families, both computed to a fixpoint over the call graph
(:func:`repro.statcheck.flow.fixpoint.solve_summaries`):

* **Parameter summaries** (for SPAN001): for each parameter, does the
  function *release* it (``X.rem_span(p)`` anywhere, directly or via a
  resolved callee that releases its corresponding parameter) and does it
  *escape* it (stored, returned, or passed to an unresolved call — the
  caller can no longer assume it still owns the handle exclusively)?  A
  parameter that neither releases nor escapes is *inert*: the helper
  looked at the value but the caller still holds the obligation.
* **Mutation summaries** (for JRN002): does calling this method mutate the
  receiver's state — directly (assignment to a ``self``-rooted target or a
  known mutator call on one, the JRN001 notion) or transitively through a
  resolved method call on ``self`` / a ``self`` attribute?  The witness
  chain records where the actual mutation happens.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, CallSite, walk_own
from .fixpoint import solve_summaries
from .program import FlowProgram, FunctionInfo

__all__ = [
    "ParamSummary",
    "MutationWitness",
    "FunctionSummary",
    "SummaryTable",
    "compute_summaries",
    "ACQUIRE_METHOD",
    "RELEASE_METHOD",
]

ACQUIRE_METHOD = "add_span"
RELEASE_METHOD = "rem_span"

#: method names treated as in-place mutators when invoked on self-rooted
#: receivers (mirrors JRN001's list — keep in sync with rules.py)
MUTATOR_NAMES = {
    "append", "add", "pop", "popleft", "push", "clear", "remove",
    "discard", "update", "extend", "insert", "setdefault",
    "transition", "mark_down", "mark_up", "heappush", "heappop",
    "_push", "_cycle", "_kill", "_dispatch", "record",
}

#: AST contexts in which reading a tracked name neither releases nor leaks
#: it — comparisons, arithmetic, formatting, indexing, attribute reads.
_NEUTRAL_PARENTS = (
    ast.Compare, ast.BoolOp, ast.UnaryOp, ast.BinOp,
    ast.JoinedStr, ast.FormattedValue, ast.Attribute,
    ast.If, ast.While, ast.Assert, ast.IfExp, ast.Expr,
)


@dataclass
class ParamSummary:
    releases: bool = False
    escapes: bool = False
    #: human-readable witnesses ("rem_span at repro/x.py:12", "via helper()")
    flows: List[str] = field(default_factory=list)

    @property
    def inert(self) -> bool:
        return not (self.releases or self.escapes)


@dataclass(frozen=True)
class MutationWitness:
    path: str
    line: int
    what: str  # e.g. "self.jobs.append(...)"
    #: call chain of function short names from the summarized function down
    #: to the mutation site (empty for a direct mutation)
    chain: Tuple[str, ...] = ()


@dataclass
class FunctionSummary:
    params: Dict[str, ParamSummary] = field(default_factory=dict)
    mutates_self: bool = False
    mutation: Optional[MutationWitness] = None


class SummaryTable:
    """Summaries per function qualname, with convenience accessors."""

    def __init__(self) -> None:
        self.by_qualname: Dict[str, FunctionSummary] = {}

    def get(self, qualname: str) -> FunctionSummary:
        summary = self.by_qualname.get(qualname)
        if summary is None:
            summary = FunctionSummary()
            self.by_qualname[qualname] = summary
        return summary

    def param(self, fn: FunctionInfo, name: Optional[str]) -> Optional[ParamSummary]:
        if name is None:
            return None
        return self.get(fn.qualname).params.get(name)


def compute_summaries(program: FlowProgram, graph: CallGraph) -> SummaryTable:
    table = SummaryTable()
    for qualname, fn in program.functions.items():
        summary = table.get(qualname)
        for param in fn.params:
            if param not in ("self", "cls"):
                summary.params[param] = ParamSummary()

    def recompute(qualname: str) -> bool:
        fn = program.functions.get(qualname)
        if fn is None:
            return False
        summary = table.get(qualname)
        changed = False
        for param in summary.params:
            changed |= _update_param(fn, param, summary.params[param], graph, table)
        changed |= _update_mutation(fn, summary, graph, table)
        return changed

    solve_summaries(
        list(program.functions),
        dependents=lambda q: graph.callers_of(q),
        recompute=recompute,
    )
    return table


# ---------------------------------------------------------------------------
# parameter release / escape classification
# ---------------------------------------------------------------------------


def _update_param(
    fn: FunctionInfo,
    param: str,
    summary: ParamSummary,
    graph: CallGraph,
    table: SummaryTable,
) -> bool:
    if summary.releases and summary.escapes:
        return False
    releases, escapes, flows = classify_name_uses(fn.node, param, graph, table)
    changed = False
    if releases and not summary.releases:
        summary.releases = True
        changed = True
    if escapes and not summary.escapes:
        summary.escapes = True
        changed = True
    if changed:
        for flow in flows:
            if flow not in summary.flows:
                summary.flows.append(flow)
    return changed


def classify_name_uses(
    scope: ast.AST,
    name: str,
    graph: CallGraph,
    table: SummaryTable,
) -> Tuple[bool, bool, List[str]]:
    """Classify every read of ``name`` inside ``scope``.

    Returns ``(releases, escapes, flow_witnesses)``.  Reads inside nested
    functions/lambdas count as escapes (the closure may outlive the frame).
    """
    parents = _parent_map(scope)
    releases = False
    escapes = False
    flows: List[str] = []
    own = set(map(id, walk_own(scope)))
    for node in ast.walk(scope):
        if not (isinstance(node, ast.Name) and node.id == name):
            continue
        if not isinstance(node.ctx, ast.Load):
            continue
        if id(node) not in own:
            escapes = True
            flows.append(f"captured by a nested function (line {node.lineno})")
            continue
        effect, witness = _classify_use(node, parents, graph, table)
        if effect == "release":
            releases = True
        elif effect == "escape":
            escapes = True
        if witness:
            flows.append(witness)
    return releases, escapes, flows


def _classify_use(
    node: ast.AST,
    parents: Dict[int, ast.AST],
    graph: CallGraph,
    table: SummaryTable,
) -> Tuple[str, Optional[str]]:
    """Classify one Load of a tracked name: 'release' | 'escape' | 'inert'."""
    parent = parents.get(id(node))
    while parent is not None and isinstance(parent, ast.Starred):
        node, parent = parent, parents.get(id(parent))
    if parent is None:
        return "inert", None
    if isinstance(parent, ast.Call):
        if node is parent.func:
            return "inert", None  # calling the handle itself: not a store
        return _classify_call_arg(node, parent, graph, table)
    if isinstance(parent, ast.keyword):
        call = parents.get(id(parent))
        if isinstance(call, ast.Call):
            return _classify_call_arg(node, call, graph, table)
        return "escape", None
    if isinstance(parent, ast.Subscript):
        if node is parent.value:
            return "inert", None  # p[...] read
        return "inert", None  # used as an index
    if isinstance(parent, _NEUTRAL_PARENTS):
        return "inert", None
    if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom, ast.Await)):
        line = getattr(parent, "lineno", 0)
        return "escape", f"returned to the caller (line {line})"
    # Stored somewhere: assignment value, container literal, comprehension,
    # raise cause, default value, f-string conversion — all escapes.
    line = getattr(parent, "lineno", getattr(node, "lineno", 0))
    return "escape", f"stored via {type(parent).__name__} (line {line})"


def _classify_call_arg(
    node: ast.AST,
    call: ast.Call,
    graph: CallGraph,
    table: SummaryTable,
) -> Tuple[str, Optional[str]]:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == RELEASE_METHOD:
        return "release", f"{RELEASE_METHOD} at line {call.lineno}"
    site = graph.site_for.get(id(call))
    if site is None or site.callee is None:
        return "escape", f"passed to an unresolved call (line {call.lineno})"
    param = site.param_for_arg(node)
    if param is None:
        return "escape", f"passed via */** to {site.callee.name}()"
    callee_summary = table.param(site.callee, param)
    if callee_summary is None:
        return "escape", f"passed to {site.callee.name}() (untracked param)"
    if callee_summary.releases:
        return "release", f"released by {site.callee.qualname}()"
    if callee_summary.escapes:
        return "escape", f"escapes via {site.callee.qualname}()"
    return "inert", f"inspected by {site.callee.qualname}() which keeps it inert"


# ---------------------------------------------------------------------------
# mutation summaries (JRN002)
# ---------------------------------------------------------------------------


def _update_mutation(
    fn: FunctionInfo,
    summary: FunctionSummary,
    graph: CallGraph,
    table: SummaryTable,
) -> bool:
    if summary.mutates_self or fn.class_info is None:
        return False
    witness = find_direct_mutation(fn)
    if witness is None:
        witness = _find_transitive_mutation(fn, graph, table)
    if witness is not None:
        summary.mutates_self = True
        summary.mutation = witness
        return True
    return False


def find_direct_mutation(fn: FunctionInfo) -> Optional[MutationWitness]:
    """First JRN001-style direct self-mutation in ``fn``, in line order."""
    best: Optional[MutationWitness] = None
    for node in walk_own(fn.node):
        what: Optional[str] = None
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and (
                    _rooted_at_self(target)
                ):
                    what = f"assignment to {_describe(target)}"
                    break
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in MUTATOR_NAMES:
                if _rooted_at_self(func.value) or any(
                    _rooted_at_self(arg) for arg in node.args
                ):
                    what = f"{_describe(func)}(...)"
        if what is not None:
            line = getattr(node, "lineno", 0)
            candidate = MutationWitness(fn.module.path, line, what)
            if best is None or candidate.line < best.line:
                best = candidate
    return best


def _find_transitive_mutation(
    fn: FunctionInfo,
    graph: CallGraph,
    table: SummaryTable,
) -> Optional[MutationWitness]:
    for site in graph.sites_in(fn):
        if site.in_nested or site.callee is None or not site.bound:
            continue
        if site.receiver not in ("self",) and not (
            site.receiver or ""
        ).startswith("self."):
            continue
        callee_summary = table.get(site.callee.qualname)
        if callee_summary.mutates_self and callee_summary.mutation is not None:
            inner = callee_summary.mutation
            return MutationWitness(
                inner.path,
                inner.line,
                inner.what,
                chain=(site.callee.name,) + inner.chain,
            )
    return None


def _rooted_at_self(node: ast.AST) -> bool:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _describe(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our inputs
        return "<expr>"


def _parent_map(scope: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(scope):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents
