"""fluxflow: interprocedural data-flow analysis for fluxlint.

Layered on the intraprocedural rule engine in :mod:`repro.statcheck.core`:

* :mod:`program` — whole-program model (modules, imports, classes,
  functions, attribute/local type inference);
* :mod:`callgraph` — call-site resolution and qualname edges;
* :mod:`cfg` — per-function control-flow graphs with exception edges;
* :mod:`fixpoint` — worklist solvers for CFG data-flow and summaries;
* :mod:`summaries` — per-parameter release/escape and mutation summaries;
* :mod:`analyses` — the SPAN001 / DET002 / EXC002 / JRN002 rules;
* :mod:`baseline` — accepted-findings gating for CI.
"""

from .analyses import (
    CrashSwallowTaintAnalysis,
    DeterminismTaintAnalysis,
    FlowAnalysis,
    FlowContext,
    FlowEngine,
    JournalHelperAnalysis,
    SpanLeakAnalysis,
    all_flow_analyses,
    analyze_sources,
    register_flow_analysis,
)
from .baseline import apply_baseline, load_baseline, save_baseline
from .callgraph import CallGraph, CallSite, build_call_graph
from .cfg import CFG, CFGNode, build_cfg
from .fixpoint import solve_cfg, solve_summaries
from .program import FlowProgram, FunctionInfo, ModuleInfo
from .summaries import FunctionSummary, SummaryTable, compute_summaries

__all__ = [
    "FlowAnalysis",
    "FlowContext",
    "FlowEngine",
    "SpanLeakAnalysis",
    "DeterminismTaintAnalysis",
    "CrashSwallowTaintAnalysis",
    "JournalHelperAnalysis",
    "all_flow_analyses",
    "analyze_sources",
    "register_flow_analysis",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
    "CallGraph",
    "CallSite",
    "build_call_graph",
    "CFG",
    "CFGNode",
    "build_cfg",
    "solve_cfg",
    "solve_summaries",
    "FlowProgram",
    "FunctionInfo",
    "ModuleInfo",
    "FunctionSummary",
    "SummaryTable",
    "compute_summaries",
]
