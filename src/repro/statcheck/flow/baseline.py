"""Baseline gating for fluxlint/fluxflow findings.

A baseline file records *accepted* pre-existing findings so CI can fail on
new findings only.  Matching is resilient to line-number drift: a finding
matches a baseline entry when ``(rule, path, message-with-numbers-
normalized)`` agree; matching is multiset-aware, so two identical findings
need two baseline entries.

File format (checked in as ``statcheck-baseline.json``)::

    {
      "version": 1,
      "findings": [
        {"rule": "SPAN001", "path": "src/x.py", "message": "..."}
      ]
    }

Workflow: run with ``--baseline statcheck-baseline.json`` to gate; run with
``--update-baseline`` to accept the current findings wholesale (review the
diff!).  Stale entries — baseline entries that no longer match anything —
are reported on stderr so the file shrinks over time instead of rotting.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from ...errors import FluxionError
from ..core import Violation

__all__ = [
    "BASELINE_VERSION",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "baseline_key",
]

BASELINE_VERSION = 1

_NUMBERS = re.compile(r"\d+")


def baseline_key(rule: str, path: str, message: str) -> Tuple[str, str, str]:
    """Match key for one finding; line/col and embedded numbers are
    normalized away so pure line drift does not invalidate the baseline."""
    return (rule, path, _NUMBERS.sub("N", message))


def load_baseline(path: str) -> "Counter[Tuple[str, str, str]]":
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise FluxionError(f"cannot read baseline {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise FluxionError(f"baseline {path} is not valid JSON: {exc}")
    if not isinstance(document, dict) or "findings" not in document:
        raise FluxionError(
            f"baseline {path} malformed: expected an object with 'findings'"
        )
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise FluxionError(
            f"baseline {path} has unsupported version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    keys: "Counter[Tuple[str, str, str]]" = Counter()
    for entry in document["findings"]:
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(k), str) for k in ("rule", "path", "message")
        ):
            raise FluxionError(
                f"baseline {path} malformed: each finding needs string "
                "'rule', 'path', and 'message' fields"
            )
        keys[baseline_key(entry["rule"], entry["path"], entry["message"])] += 1
    return keys


def save_baseline(path: str, violations: Sequence[Violation]) -> None:
    document = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": v.rule, "path": v.path, "message": v.message}
            for v in sorted(violations)
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(
    violations: Sequence[Violation],
    baseline: "Counter[Tuple[str, str, str]]",
) -> Tuple[List[Violation], int]:
    """Split findings against the baseline.

    Returns ``(new_violations, stale_entry_count)`` where stale entries are
    baseline entries that matched nothing this run.
    """
    remaining = Counter(baseline)
    fresh: List[Violation] = []
    for violation in sorted(violations):
        key = baseline_key(violation.rule, violation.path, violation.message)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(violation)
    stale = sum(count for count in remaining.values() if count > 0)
    return fresh, stale
