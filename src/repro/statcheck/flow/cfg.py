"""Per-function control-flow graphs built from the AST.

Statement-granularity CFG covering the shapes the flow analyses need:
``if``/``elif``/``else``, ``while``/``for`` (with ``break``/``continue``
and loop ``else``), ``try``/``except``/``else``/``finally``, ``with``,
``return``/``raise``, and plain statement sequences.

Modelling choices (deliberate, conservative approximations):

* Every statement lexically inside a ``try`` gets an *exception edge* to
  each of the try's handler entries — any call can raise, and we do not
  reason about exception types.  Exception edges carry the raising
  statement's **pre**-state (its effects are assumed not to have happened).
* ``finally`` blocks are built once, not duplicated per entry path.  Abrupt
  exits (``return``/``break``/``continue``/uncaught exceptions) route
  *through* the finally entry, and the finally's exits fan out to every
  continuation that was actually requested — a standard single-instance
  approximation that can create infeasible cross-paths but never skips the
  finally body.
* Functions have three pseudo-nodes: ``entry``, ``exit`` (normal
  completion, including every ``return``) and ``exit_exc`` (exception
  propagating out of the function).  Leak-style analyses typically only
  report at ``exit``: an exception propagating to the caller is the
  caller's cleanup problem (see SPAN001 in docs/static_analysis.md).
* Nested ``def``/``lambda`` bodies are opaque single statements — their
  bodies execute at call time, not at definition time.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set, Tuple

__all__ = ["CFGNode", "CFG", "build_cfg"]


class CFGNode:
    """One statement (or pseudo-node) in a function's CFG."""

    __slots__ = ("node_id", "stmt", "kind", "succs")

    def __init__(self, node_id: int, stmt: Optional[ast.AST], kind: str) -> None:
        self.node_id = node_id
        self.stmt = stmt
        #: "entry" | "exit" | "exit_exc" | "stmt" | "cond" | "join"
        self.kind = kind
        #: outgoing edges: (successor, is_exception_edge)
        self.succs: List[Tuple["CFGNode", bool]] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        line = getattr(self.stmt, "lineno", "-")
        return f"<CFGNode {self.node_id} {self.kind} L{line}>"


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        self.exit_exc = self._new(None, "exit_exc")

    def _new(self, stmt: Optional[ast.AST], kind: str) -> CFGNode:
        node = CFGNode(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node


class _FinallyFrame:
    """A single-instance ``finally`` block plus its requested continuations."""

    __slots__ = ("entry", "requests")

    def __init__(self, entry: CFGNode) -> None:
        self.entry = entry
        self.requests: Set[int] = set()  # node ids, resolved via _by_id

    def request(self, by_id: dict, node: CFGNode) -> None:
        self.requests.add(node.node_id)
        by_id[node.node_id] = node


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.cfg = CFG()
        self.func = func
        #: stack of (break_target, continue_target, frame_depth_at_loop)
        self.loops: List[Tuple[CFGNode, CFGNode, int]] = []
        #: innermost-last stack of active finally frames
        self.frames: List[_FinallyFrame] = []
        #: current exception targets (handler entries / finally / exit_exc)
        self.exc_targets: List[CFGNode] = [self.cfg.exit_exc]
        self._by_id: dict = {}

    # -- edges ---------------------------------------------------------
    def _edge(self, frm: CFGNode, to: CFGNode, is_exc: bool = False) -> None:
        if (to, is_exc) not in frm.succs:
            frm.succs.append((to, is_exc))

    def _connect(self, preds: Sequence[CFGNode], to: CFGNode) -> None:
        for pred in preds:
            self._edge(pred, to)

    def _stmt_node(self, stmt: ast.stmt) -> CFGNode:
        node = self.cfg._new(stmt, "stmt")
        for target in self.exc_targets:
            if target is not self.cfg.exit_exc or len(self.exc_targets) > 1:
                self._edge(node, target, is_exc=True)
        return node

    # -- abrupt transfers ----------------------------------------------
    def _abrupt(
        self, preds: Sequence[CFGNode], target: CFGNode, frame_depth: int
    ) -> None:
        """Route ``preds`` to ``target`` through every finally frame opened
        since ``frame_depth`` (innermost first)."""
        pending = self.frames[frame_depth:]
        if not pending:
            self._connect(preds, target)
            return
        route = [frame.entry for frame in reversed(pending)]
        self._connect(preds, route[0])
        for index, frame in enumerate(reversed(pending)):
            nxt = route[index + 1] if index + 1 < len(route) else target
            frame.request(self._by_id, nxt)

    # -- statement sequencing ------------------------------------------
    def seq(self, stmts: Sequence[ast.stmt], preds: List[CFGNode]) -> List[CFGNode]:
        """Wire ``stmts`` after ``preds``; returns the normal-exit nodes."""
        current = list(preds)
        for stmt in stmts:
            if not current:
                break  # unreachable code after return/raise/break
            current = self.one(stmt, current)
        return current

    def one(self, stmt: ast.stmt, preds: List[CFGNode]) -> List[CFGNode]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._stmt_node(stmt)
            self._connect(preds, node)
            return self.seq(stmt.body, [node])
        if isinstance(stmt, ast.Return):
            node = self._stmt_node(stmt)
            self._connect(preds, node)
            self._abrupt([node], self.cfg.exit, 0)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._stmt_node(stmt)
            self._connect(preds, node)
            # A raise reaches the innermost handlers/finally (already wired
            # as exception successors of the node); with no enclosing try it
            # must still leave the function.
            for target in self.exc_targets:
                self._edge(node, target, is_exc=True)
            return []
        if isinstance(stmt, ast.Break):
            node = self._stmt_node(stmt)
            self._connect(preds, node)
            if self.loops:
                target, _, depth = self.loops[-1]
                self._abrupt([node], target, depth)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._stmt_node(stmt)
            self._connect(preds, node)
            if self.loops:
                _, target, depth = self.loops[-1]
                self._abrupt([node], target, depth)
            return []
        # Plain statement (including nested def/lambda/class: opaque).
        node = self._stmt_node(stmt)
        self._connect(preds, node)
        return [node]

    # -- compound statements -------------------------------------------
    def _if(self, stmt: ast.If, preds: List[CFGNode]) -> List[CFGNode]:
        cond = self.cfg._new(stmt, "cond")
        for target in self.exc_targets:
            if target is not self.cfg.exit_exc or len(self.exc_targets) > 1:
                self._edge(cond, target, is_exc=True)
        self._connect(preds, cond)
        then_out = self.seq(stmt.body, [cond])
        else_out = self.seq(stmt.orelse, [cond]) if stmt.orelse else [cond]
        return then_out + else_out

    def _loop(self, stmt: ast.stmt, preds: List[CFGNode]) -> List[CFGNode]:
        head = self.cfg._new(stmt, "cond")
        for target in self.exc_targets:
            if target is not self.cfg.exit_exc or len(self.exc_targets) > 1:
                self._edge(head, target, is_exc=True)
        self._connect(preds, head)
        after = self.cfg._new(None, "join")
        self.loops.append((after, head, len(self.frames)))
        body_out = self.seq(stmt.body, [head])
        self.loops.pop()
        self._connect(body_out, head)  # back edge
        orelse = getattr(stmt, "orelse", None)
        if orelse:
            else_out = self.seq(orelse, [head])
            self._connect(else_out, after)
        else:
            self._edge(head, after)
        return [after]

    def _try(self, stmt: ast.Try, preds: List[CFGNode]) -> List[CFGNode]:
        has_finally = bool(stmt.finalbody)
        handler_entries = [self.cfg._new(None, "join") for _ in stmt.handlers]
        frame: Optional[_FinallyFrame] = None
        after = self.cfg._new(None, "join")

        if has_finally:
            fin_entry = self.cfg._new(None, "join")
            frame = _FinallyFrame(fin_entry)
            self.frames.append(frame)

        # Exception targets inside the try body: the handlers, plus the
        # propagation route for exceptions no handler catches (through the
        # finally when present, else the enclosing targets).
        saved_targets = self.exc_targets
        if has_finally:
            propagate: List[CFGNode] = [frame.entry]
            for target in saved_targets:
                frame.request(self._by_id, target)
        else:
            propagate = list(saved_targets)
        self.exc_targets = handler_entries + propagate
        body_out = self.seq(stmt.body, list(preds))
        if stmt.orelse:
            body_out = self.seq(stmt.orelse, body_out)
        self.exc_targets = saved_targets

        # Handler bodies: exceptions raised inside a handler propagate
        # outward (through the finally when present).
        handler_targets = [frame.entry] if has_finally else list(saved_targets)
        handler_outs: List[CFGNode] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            self.exc_targets = handler_targets
            handler_outs.extend(self.seq(handler.body, [entry]))
            self.exc_targets = saved_targets

        normal_out = body_out + handler_outs
        if not has_finally:
            self._connect(normal_out, after)
            return [after]

        # Build the finally once; wire every continuation it was asked for.
        self.frames.pop()
        self._connect(normal_out, frame.entry)
        fin_out = self.seq(stmt.finalbody, [frame.entry])
        self._connect(fin_out, after)
        for node_id in frame.requests:
            self._connect(fin_out, self._by_id[node_id])
        return [after]


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of one ``FunctionDef``/``AsyncFunctionDef`` body."""
    builder = _Builder(func)
    out = builder.seq(func.body, [builder.cfg.entry])
    builder._connect(out, builder.cfg.exit)
    return builder.cfg
