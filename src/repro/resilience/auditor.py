"""Scheduler-state invariant auditing: silent corruption becomes loud.

Cancel-and-requeue storms exercise every bookkeeping path at once —
traverser allocations, planner spans, pruning filters, exclusivity holds
and job state machines all mutate together, and a single missed release
turns into quiet schedule corruption that only surfaces as inexplicable
placements much later.  The :class:`InvariantAuditor` cross-checks all of
that after every scheduling cycle (attach it with
``ClusterSimulator(..., audit=True)``) and raises a structured
:class:`InvariantViolation` carrying an expected-vs-actual diff per broken
invariant.

Checked invariants
------------------
* **alloc-ownership** — every live traverser allocation is held by exactly
  one active job, and inactive jobs hold no live allocations;
* **span-accounting** — every planner (vertex ``plans``/``xplans`` and
  pruning filters) carries exactly the spans the live allocations (plus any
  registered :class:`~repro.sched.capacity.CapacitySchedule` outages)
  booked, with matching windows;
* **exclusivity** — no two active jobs overlap in time on a vertex either
  holds exclusively, including descendants of exclusively-held subtrees;
* **job-state** — PENDING jobs hold nothing, RUNNING/RESERVED jobs hold a
  consistent window around ``now``, CANCELED jobs carry a cancel reason;
* **down-vertex** — no active job holds resources on a drained vertex or
  inside a drained subtree.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import FluxionError
from ..planner import Planner
from ..sched.job import JobState

__all__ = ["InvariantAuditor", "InvariantViolation", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant, as an expected-vs-actual diff entry."""

    invariant: str  # which invariant family (e.g. "span-accounting")
    subject: str  # what it is about (a job, vertex, allocation, planner)
    expected: str
    actual: str

    def __str__(self) -> str:
        return (
            f"[{self.invariant}] {self.subject}: "
            f"expected {self.expected}, actual {self.actual}"
        )


class InvariantViolation(FluxionError):
    """Scheduler state failed an audit; ``violations`` lists every diff."""

    def __init__(self, violations: Sequence[Violation], now: int) -> None:
        self.violations = list(violations)
        self.now = now
        lines = "\n".join(f"  {v}" for v in self.violations)
        super().__init__(
            f"{len(self.violations)} invariant violation(s) at t={now}:\n{lines}"
        )


class InvariantAuditor:
    """Cross-checks a :class:`~repro.sched.simulator.ClusterSimulator`.

    Parameters
    ----------
    capacity_schedules:
        :class:`~repro.sched.capacity.CapacitySchedule` instances whose
        outage spans legitimately live on the audited graph's planners
        outside any traverser allocation.
    deep:
        Additionally run every planner's internal
        ``check_invariants()`` (tree-structure self-checks) each audit —
        the **planner-invariants** family.  Off by default: it is O(spans)
        per planner and the recovery tests are its main consumer.
    """

    def __init__(self, capacity_schedules: Sequence = (), deep: bool = False) -> None:
        self.capacity_schedules = list(capacity_schedules)
        self.deep = deep
        #: audits performed (each one covers every invariant family)
        self.checks_run = 0

    def check(self, sim: "ClusterSimulator") -> None:
        """Audit ``sim``; raise :class:`InvariantViolation` on any breakage."""
        violations = self.collect(sim)
        self.checks_run += 1
        if violations:
            raise InvariantViolation(violations, sim.now)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def collect(self, sim: "ClusterSimulator") -> List[Violation]:
        """Run every check and return the violations (empty = healthy)."""
        out: List[Violation] = []
        live = sim.traverser.allocations
        active = [j for j in sim.jobs.values() if j.is_active]
        self._check_ownership(sim, live, active, out)
        self._check_spans(sim, live, out)
        self._check_exclusivity(sim, active, out)
        self._check_job_states(sim, out)
        self._check_down_vertices(sim, active, out)
        if self.deep:
            self._check_planner_invariants(sim, out)
        return out

    def _check_planner_invariants(self, sim, out: List[Violation]) -> None:
        """Run every planner's internal self-checks (``deep`` mode).

        Restored planners must be indistinguishable from organically built
        ones down to their tree structure; any assertion a planner trips is
        surfaced as a **planner-invariants** violation.
        """
        for vertex in sim.graph.vertices():
            named = [
                (vertex.plans.resource_type or "plans", vertex.plans),
                (vertex.xplans.resource_type or "xplans", vertex.xplans),
            ]
            if vertex.prune_filters is not None:
                named.append(("filter", vertex.prune_filters))
            for label, planner in named:
                try:
                    planner.check_invariants()
                except (AssertionError, FluxionError) as exc:
                    out.append(
                        Violation(
                            "planner-invariants",
                            f"{vertex.name}.{label}",
                            "internal planner invariants hold",
                            f"{exc!r}",
                        )
                    )

    def _check_ownership(self, sim, live, active, out: List[Violation]) -> None:
        owner: Dict[int, int] = {}
        for job in sim.jobs.values():
            for alloc in job.allocations:
                aid = alloc.alloc_id
                if job.is_active:
                    if aid in owner:
                        out.append(
                            Violation(
                                "alloc-ownership",
                                f"allocation {aid}",
                                f"one owner (job {owner[aid]})",
                                f"also held by job {job.job_id}",
                            )
                        )
                    owner[aid] = job.job_id
                    if live.get(aid) is not alloc:
                        out.append(
                            Violation(
                                "alloc-ownership",
                                f"job {job.job_id}",
                                f"allocation {aid} live in the traverser",
                                "missing or replaced there",
                            )
                        )
                elif aid in live:
                    out.append(
                        Violation(
                            "alloc-ownership",
                            f"job {job.job_id} ({job.state.value})",
                            "no live allocations after release",
                            f"allocation {aid} still live",
                        )
                    )
        for aid in live:
            if aid not in owner:
                out.append(
                    Violation(
                        "alloc-ownership",
                        f"allocation {aid}",
                        "an active owning job",
                        "orphaned in the traverser",
                    )
                )

    def _check_spans(self, sim, live, out: List[Violation]) -> None:
        expected: Dict[int, int] = {}  # id(planner-like) -> span count

        def book(records, label: str) -> None:
            for planner, span_id in records:
                expected[id(planner)] = expected.get(id(planner), 0) + 1
                if not planner.has_span(span_id):
                    out.append(
                        Violation(
                            "span-accounting",
                            label,
                            f"span {span_id} active on "
                            f"{getattr(planner, 'resource_type', 'filter')}",
                            "span missing from its planner",
                        )
                    )

        for alloc in live.values():
            book(alloc._span_records, f"allocation {alloc.alloc_id}")
            for planner, span_id in alloc._span_records:
                if not isinstance(planner, Planner) or not planner.has_span(
                    span_id
                ):
                    continue  # PlannerMulti bundles / already reported
                record = planner.get_span(span_id)
                if (record.start, record.end) != (alloc.at, alloc.end):
                    out.append(
                        Violation(
                            "span-accounting",
                            f"allocation {alloc.alloc_id}",
                            f"span window [{alloc.at},{alloc.end})",
                            f"[{record.start},{record.end})",
                        )
                    )
        for schedule in self.capacity_schedules:
            for outage in schedule.outages.values():
                book(outage._span_records, f"outage {outage.outage_id}")
        for vertex in sim.graph.vertices():
            planners = [vertex.plans, vertex.xplans]
            if vertex.prune_filters is not None:
                planners.append(vertex.prune_filters)
            for planner in planners:
                want = expected.get(id(planner), 0)
                have = planner.span_count
                if want != have:
                    out.append(
                        Violation(
                            "span-accounting",
                            f"{vertex.name}."
                            f"{getattr(planner, 'resource_type', 'filter') or 'filter'}",
                            f"{want} spans from live allocations",
                            f"{have} spans booked",
                        )
                    )

    def _check_exclusivity(self, sim, active, out: List[Violation]) -> None:
        # entries: one per live selection of an active job
        entries: List[Tuple[object, int, object, object]] = []
        by_vertex: Dict[int, List[int]] = {}
        for job in active:
            for alloc in job.allocations:
                for sel in alloc.selections:
                    index = len(entries)
                    entries.append((sel, job.job_id, alloc, sel.vertex))
                    by_vertex.setdefault(sel.vertex.uniq_id, []).append(index)

        def overlaps(a, b) -> bool:
            return a.at < b.end and b.at < a.end

        # same-vertex conflicts: an exclusive hold vs. any overlapping use
        for indices in by_vertex.values():
            if len(indices) < 2:
                continue
            exclusive = [i for i in indices if entries[i][0].exclusive]
            if not exclusive:
                continue
            for i in exclusive:
                sel_i, job_i, alloc_i, vertex = entries[i]
                for k in indices:
                    if k == i:
                        continue
                    sel_k, job_k, alloc_k, _ = entries[k]
                    if job_k != job_i and overlaps(alloc_i, alloc_k):
                        out.append(
                            Violation(
                                "exclusivity",
                                vertex.name,
                                f"exclusive hold by job {job_i} over "
                                f"[{alloc_i.at},{alloc_i.end})",
                                f"job {job_k} also holds it over "
                                f"[{alloc_k.at},{alloc_k.end})",
                            )
                        )
        # subtree conflicts: nothing of another job below an exclusive hold
        paths = sorted(
            (entry[3].path("containment"), i)
            for i, entry in enumerate(entries)
            if entry[3].path("containment")
        )
        keys = [p for p, _ in paths]
        for i, (sel, job_id, alloc, vertex) in enumerate(entries):
            if not sel.exclusive:
                continue
            prefix = vertex.path("containment")
            if not prefix:
                continue
            prefix += "/"
            pos = bisect_left(keys, prefix)
            while pos < len(keys) and keys[pos].startswith(prefix):
                k = paths[pos][1]
                _, job_k, alloc_k, vertex_k = entries[k]
                if job_k != job_id and overlaps(alloc, alloc_k):
                    out.append(
                        Violation(
                            "exclusivity",
                            vertex_k.name,
                            f"free: inside job {job_id}'s exclusive "
                            f"{vertex.name} subtree",
                            f"held by job {job_k} over "
                            f"[{alloc_k.at},{alloc_k.end})",
                        )
                    )
                pos += 1

    def _check_job_states(self, sim, out: List[Violation]) -> None:
        now = sim.now
        for job in sim.jobs.values():
            alloc = job.allocation
            if job.state is JobState.PENDING and job.allocations:
                out.append(
                    Violation(
                        "job-state",
                        f"job {job.job_id}",
                        "PENDING with no allocations",
                        f"{len(job.allocations)} allocation(s) attached",
                    )
                )
            elif job.state is JobState.RUNNING:
                if alloc is None:
                    out.append(
                        Violation(
                            "job-state",
                            f"job {job.job_id}",
                            "RUNNING with an allocation",
                            "no allocation",
                        )
                    )
                elif not (alloc.at <= now <= alloc.end):
                    out.append(
                        Violation(
                            "job-state",
                            f"job {job.job_id}",
                            f"RUNNING inside its window at t={now}",
                            f"window [{alloc.at},{alloc.end})",
                        )
                    )
            elif job.state is JobState.RESERVED:
                if alloc is None or alloc.at < now:
                    out.append(
                        Violation(
                            "job-state",
                            f"job {job.job_id}",
                            f"RESERVED with a future start (t={now})",
                            "no allocation"
                            if alloc is None
                            else f"start {alloc.at}",
                        )
                    )
            elif job.state is JobState.CANCELED and job.cancel_reason is None:
                out.append(
                    Violation(
                        "job-state",
                        f"job {job.job_id}",
                        "CANCELED with a cancel reason",
                        "no reason recorded",
                    )
                )

    def _check_down_vertices(self, sim, active, out: List[Violation]) -> None:
        down = [v for v in sim.graph.vertices() if v.status != "up"]
        if not down:
            return
        closed = set()
        for vertex in down:
            closed.add(vertex.uniq_id)
            for v in sim.graph.descendants(vertex):
                closed.add(v.uniq_id)
        for job in active:
            for alloc in job.allocations:
                for sel in alloc.selections:
                    if sel.vertex.uniq_id in closed:
                        out.append(
                            Violation(
                                "down-vertex",
                                f"job {job.job_id}",
                                "no holds on drained subtrees",
                                f"holds {sel.vertex.name} over "
                                f"[{alloc.at},{alloc.end})",
                            )
                        )
