"""Resilience layer: stochastic faults, retries, and state auditing.

Production resource managers live with hardware that fails under running
jobs (Milroy et al., arXiv:2109.03739 treat resources as continuously
appearing and disappearing).  This package supplies the pieces the
simulator needs to model that credibly:

``repro.resilience.faults``
    :class:`FaultModel` / :class:`FaultInjector` — seeded MTBF/MTTR
    distributions (exponential or Weibull) per resource type, or explicit
    failure traces, converted into first-class failure/repair events on the
    simulator's heap.
``repro.resilience.retry``
    :class:`RetryPolicy` — bounded retries with exponential backoff,
    jitter, optional priority boost and checkpoint-aware work crediting.
``repro.resilience.auditor``
    :class:`InvariantAuditor` / :class:`InvariantViolation` — cross-checks
    traverser allocations against planner span accounting, graph
    exclusivity and job states after every scheduling cycle, turning
    silent state corruption into loud, structured failures.
"""

from .auditor import InvariantAuditor, InvariantViolation, Violation
from .faults import FaultEvent, FaultInjector, FaultModel, install_trace
from .retry import RetryPolicy

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "InvariantAuditor",
    "InvariantViolation",
    "RetryPolicy",
    "Violation",
    "install_trace",
]
