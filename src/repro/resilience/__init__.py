"""Resilience layer: stochastic faults, retries, and state auditing.

Production resource managers live with hardware that fails under running
jobs (Milroy et al., arXiv:2109.03739 treat resources as continuously
appearing and disappearing).  This package supplies the pieces the
simulator needs to model that credibly:

``repro.resilience.faults``
    :class:`FaultModel` / :class:`FaultInjector` — seeded MTBF/MTTR
    distributions (exponential or Weibull) per resource type, or explicit
    failure traces, converted into first-class failure/repair events on the
    simulator's heap.
``repro.resilience.retry``
    :class:`RetryPolicy` — bounded retries with exponential backoff,
    jitter, optional priority boost and checkpoint-aware work crediting.
``repro.resilience.auditor``
    :class:`InvariantAuditor` / :class:`InvariantViolation` — cross-checks
    traverser allocations against planner span accounting, graph
    exclusivity and job states after every scheduling cycle, turning
    silent state corruption into loud, structured failures.
``repro.resilience.overload``
    :class:`OverloadConfig` / :class:`OverloadController` — admission
    control with bounded queue depth (reject/shed/defer), deterministic
    scheduling-work deadlines with cooperative cancellation
    (:class:`WorkBudget`), :class:`CircuitBreaker` per queue policy and
    match subsystem, and the graceful degradation ladder
    (:class:`DegradeLevel`: full -> coarse -> node-centric -> defer).
``repro.resilience.chaos``
    :class:`CampaignSpec` / :func:`run_campaign` / :func:`shrink_campaign`
    — seeded chaos campaigns composing submission bursts, fault storms and
    crash injection, audited every cycle, with greedy shrinking of failing
    campaigns to a minimal reproducer.
"""

from .auditor import InvariantAuditor, InvariantViolation, Violation
from .chaos import CampaignResult, CampaignSpec, run_campaign, shrink_campaign
from .faults import FaultEvent, FaultInjector, FaultModel, install_trace
from .overload import (
    CircuitBreaker,
    DegradeLevel,
    OverloadConfig,
    OverloadController,
    WorkBudget,
    coarsen_jobspec,
)
from .retry import RetryPolicy

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "CircuitBreaker",
    "DegradeLevel",
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "InvariantAuditor",
    "InvariantViolation",
    "OverloadConfig",
    "OverloadController",
    "RetryPolicy",
    "Violation",
    "WorkBudget",
    "coarsen_jobspec",
    "install_trace",
    "run_campaign",
    "shrink_campaign",
]
