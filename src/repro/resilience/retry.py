"""Retry policies for failure- and walltime-killed jobs.

A :class:`RetryPolicy` attached to a
:class:`~repro.sched.simulator.ClusterSimulator` replaces the historical
hardcoded immediate resubmit: killed jobs come back after an exponential
backoff with seeded jitter, up to a bounded number of attempts, optionally
with a priority boost (so storm victims do not starve behind the queue) and
checkpoint-aware work crediting (retries resume with the remaining work
instead of restarting from zero).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..errors import SchedulerError

__all__ = ["RetryPolicy"]


@dataclass
class RetryPolicy:
    """How killed jobs are resubmitted.

    Parameters
    ----------
    max_retries:
        Total resubmissions allowed per original job (its retry budget).
    backoff_base:
        Delay in ticks before the first retry.
    backoff_factor:
        Multiplier applied per subsequent attempt (exponential backoff).
    backoff_cap:
        Upper bound on the computed delay, pre-jitter.
    jitter:
        Fractional spread: the delay is scaled by a seeded uniform draw
        from ``[1 - jitter, 1 + jitter]`` to de-synchronise retry storms.
    priority_boost:
        Added to the job's priority on each resubmission.
    checkpoint_period:
        Checkpoint cadence in ticks; a killed job is credited with the work
        of its last completed checkpoint and retried with the remainder.
        ``None`` (default) restarts attempts from zero.
    seed:
        Seed for the jitter stream (determinism across runs).
    """

    max_retries: int = 3
    backoff_base: int = 30
    backoff_factor: float = 2.0
    backoff_cap: int = 3600
    jitter: float = 0.1
    priority_boost: int = 0
    checkpoint_period: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SchedulerError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise SchedulerError("backoff_base/backoff_cap must be >= 0")
        if self.backoff_factor < 1.0:
            raise SchedulerError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise SchedulerError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.checkpoint_period is not None and self.checkpoint_period < 1:
            raise SchedulerError(
                f"checkpoint_period must be >= 1, got {self.checkpoint_period}"
            )
        self._rng = random.Random(self.seed)

    def should_retry(self, attempt: int) -> bool:
        """May a job on retry generation ``attempt`` be resubmitted again?"""
        return attempt < self.max_retries

    def delay(self, attempt: int) -> int:
        """Backoff before the resubmission of generation ``attempt``."""
        raw = min(
            self.backoff_cap, self.backoff_base * self.backoff_factor ** attempt
        )
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0, int(round(raw)))
