"""Randomized chaos campaigns: storms, bursts and crashes from one seed.

A *campaign* composes the stressors the resilience stack defends against —
submission bursts at many times the steady-state rate, seeded fault storms
(:class:`~repro.resilience.FaultInjector`), crash injection at a named cut
point (:class:`~repro.recovery.CrashInjector`) with journal-replay recovery
— and runs them against one simulator with the
:class:`~repro.resilience.InvariantAuditor` checking state after every
scheduling cycle (plus FluxSan when ``FLUXSAN=1``).

Everything about a campaign derives deterministically from its integer
seed: :meth:`CampaignSpec.from_seed` draws the scenario, and
:func:`run_campaign` replays it identically every time, so a failing seed
*is* the bug report.  :func:`shrink_campaign` then greedily strips the
scenario — drop the crash, drop the fault storm, thin the bursts, halve the
steady stream — re-running after each cut and keeping only cuts that still
fail, until the spec is a minimal reproducer.

CLI (used by the nightly ``chaos-campaign`` CI job)::

    PYTHONPATH=src FLUXSAN=1 python -m repro.resilience.chaos \\
        --campaigns 20 --seed-base 0 --out chaos-artifacts

Exit status is non-zero when any campaign fails; the shrunken reproducer
spec and a trace of the minimal failing run land in ``--out``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import tempfile
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

from ..errors import FluxionError, SchedulerError
from ..grug.presets import tiny_cluster
from ..jobspec import Jobspec
from ..jobspec.build import simple_node_jobspec
from .auditor import InvariantAuditor, InvariantViolation
from .faults import FaultInjector, FaultModel
from .overload import ADMISSION_POLICIES, OverloadConfig
from .retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..sched.simulator import ClusterSimulator, SimulationReport

__all__ = [
    "CampaignSpec",
    "CampaignResult",
    "CORRUPTION_SITES",
    "run_campaign",
    "run_corruption_campaign",
    "shrink_campaign",
    "main",
]

#: where a corruption campaign injects damage: live planner state (span
#: window / aggregate DFU filter), a mid-stream journal frame, or the
#: ``planners`` section of every snapshot file
CORRUPTION_SITES = ("live-span", "live-aggregate", "journal", "snapshot")

#: crash points a campaign may draw (the hot ones; admit.* fire only under
#: admission pressure, which campaigns create via tight max_pending)
_CRASH_POOL = (
    "cycle.pre",
    "cycle.booked",
    "cycle.post",
    "end.pre",
    "end.released",
    "kill.canceled",
    "admit.pre",
    "admit.post",
)


@dataclass(frozen=True)
class CampaignSpec:
    """One fully determined chaos scenario (a pure function of ``seed``)."""

    seed: int
    racks: int = 2
    nodes_per_rack: int = 2
    cores: int = 4
    queue: str = "easy"
    match_policy: str = "first"
    steady_jobs: int = 8
    steady_spacing: int = 120
    #: submission bursts as (time, size) pairs
    bursts: Tuple[Tuple[int, int], ...] = ()
    faults: bool = True
    fault_mtbf: int = 900
    fault_mttr: int = 200
    fault_horizon: int = 4000
    crash_point: Optional[str] = None
    crash_nth: int = 1
    #: OverloadConfig keyword arguments (None disables overload protection)
    overload: Optional[dict] = None
    #: corruption-injection scenario for :func:`run_corruption_campaign`
    #: (``{"site", "at", "salt", "count", "snapshot_every"}``; None = no
    #: corruption, the spec runs through plain :func:`run_campaign`)
    corruption: Optional[dict] = None

    @classmethod
    def from_seed(cls, seed: int) -> "CampaignSpec":
        """Draw a campaign scenario deterministically from ``seed``."""
        rng = random.Random(seed)
        bursts = tuple(
            (rng.randrange(200, 2000), rng.randrange(8, 21))
            for _ in range(rng.randrange(1, 3))
        )
        crash_point = (
            rng.choice(_CRASH_POOL) if rng.random() < 0.5 else None
        )
        overload = {
            "max_pending": rng.randrange(3, 9),
            "admission_policy": rng.choice(ADMISSION_POLICIES),
            "cycle_budget": rng.randrange(600, 3000),
            "attempt_budget": rng.randrange(150, 800),
            "checkpoint_interval": 32,
            "degrade_after": rng.randrange(1, 4),
            "recover_after": rng.randrange(2, 6),
        }
        return cls(
            seed=seed,
            racks=rng.randrange(2, 4),
            nodes_per_rack=rng.randrange(2, 4),
            cores=4,
            queue=rng.choice(("fcfs", "easy", "conservative")),
            match_policy=rng.choice(("first", "low", "high")),
            steady_jobs=rng.randrange(6, 15),
            steady_spacing=rng.randrange(80, 200),
            bursts=bursts,
            faults=rng.random() < 0.8,
            fault_mtbf=rng.randrange(600, 1600),
            fault_mttr=rng.randrange(100, 400),
            fault_horizon=4000,
            crash_point=crash_point,
            crash_nth=rng.randrange(1, 4),
            overload=overload,
        )

    @classmethod
    def corruption_from_seed(
        cls, seed: int, site: Optional[str] = None
    ) -> "CampaignSpec":
        """Draw a corruption campaign deterministically from ``seed``.

        Starts from :meth:`from_seed` and swaps the crash/fault stressors
        for a corruption injection at ``site`` (drawn from
        :data:`CORRUPTION_SITES` when omitted) — the acceptance matrix
        wants one failure mode per run so detect→quarantine→repair→converge
        is attributable.
        """
        rng = random.Random(seed ^ 0xC0FFEE)
        if site is None:
            site = rng.choice(CORRUPTION_SITES)
        elif site not in CORRUPTION_SITES:
            raise SchedulerError(f"unknown corruption site {site!r}")
        corruption = {
            "site": site,
            "at": rng.randrange(400, 1200),
            "salt": rng.randrange(1, 2**16),
            "count": rng.randrange(1, 4),
            "snapshot_every": 7,
        }
        return replace(
            cls.from_seed(seed),
            faults=False,
            crash_point=None,
            corruption=corruption,
        )

    def to_dict(self) -> dict:
        """JSON-able form (reproducer artifacts)."""
        return {
            "seed": self.seed,
            "racks": self.racks,
            "nodes_per_rack": self.nodes_per_rack,
            "cores": self.cores,
            "queue": self.queue,
            "match_policy": self.match_policy,
            "steady_jobs": self.steady_jobs,
            "steady_spacing": self.steady_spacing,
            "bursts": [list(burst) for burst in self.bursts],
            "faults": self.faults,
            "fault_mtbf": self.fault_mtbf,
            "fault_mttr": self.fault_mttr,
            "fault_horizon": self.fault_horizon,
            "crash_point": self.crash_point,
            "crash_nth": self.crash_nth,
            "overload": self.overload,
            "corruption": self.corruption,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Rebuild from :meth:`to_dict` output."""
        data = dict(data)
        data["bursts"] = tuple(tuple(burst) for burst in data.get("bursts", ()))
        return cls(**data)


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    spec: CampaignSpec
    ok: bool
    violations: List[str] = field(default_factory=list)
    summary: str = ""
    #: SHA-256 of the final logical state (determinism comparisons)
    fingerprint: str = ""
    crashed: bool = False
    recovered: bool = False
    report: "Optional[SimulationReport]" = None
    #: corruption-campaign loss accounting (site, injected vs. skipped
    #: counts, sections rebuilt, fsck verdict); empty for plain campaigns
    loss: dict = field(default_factory=dict)


def _submission_plan(
    spec: CampaignSpec,
) -> List[Tuple[int, Jobspec, int, Optional[int]]]:
    """The campaign's full submission schedule: (at, jobspec, priority,
    actual_duration) tuples, drawn deterministically from the seed."""
    rng = random.Random(spec.seed ^ 0x5DEECE66D)
    plan: List[Tuple[int, Jobspec, int, Optional[int]]] = []

    def draw_job() -> Tuple[Jobspec, int, Optional[int]]:
        duration = rng.randrange(200, 900)
        jobspec = simple_node_jobspec(
            cores=rng.randrange(1, spec.cores + 1),
            nodes=rng.randrange(1, 3),
            duration=duration,
        )
        priority = rng.randrange(0, 5)
        actual = (
            duration + rng.randrange(100, 300)
            if rng.random() < 0.15
            else None
        )
        return jobspec, priority, actual

    t = 0
    for _ in range(spec.steady_jobs):
        t += spec.steady_spacing
        jobspec, priority, actual = draw_job()
        plan.append((t, jobspec, priority, actual))
    for burst_at, burst_size in spec.bursts:
        for _ in range(burst_size):
            jobspec, priority, actual = draw_job()
            plan.append((burst_at, jobspec, priority, actual))
    return plan


def _build_simulator(
    spec: CampaignSpec, observe: bool = False
) -> "ClusterSimulator":
    from ..sched.simulator import ClusterSimulator

    graph = tiny_cluster(
        racks=spec.racks,
        nodes_per_rack=spec.nodes_per_rack,
        cores=spec.cores,
    )
    overload = (
        OverloadConfig(**spec.overload) if spec.overload is not None else None
    )
    integrity = None
    if spec.corruption is not None:
        from ..recovery.integrity import IntegrityConfig

        # Full-graph scrub each cycle: the acceptance matrix wants damage
        # detected at the first cycle after injection, not window-delayed.
        integrity = IntegrityConfig(scrub_window=None)
    return ClusterSimulator(
        graph,
        match_policy=spec.match_policy,
        queue=spec.queue,
        retry_policy=RetryPolicy(max_retries=2, seed=spec.seed),
        audit=InvariantAuditor(),
        observe=observe or None,
        overload=overload,
        integrity=integrity,
    )


def _accounting_violations(report: "SimulationReport") -> List[str]:
    """Cross-check the report's overload accounting against job states."""
    out: List[str] = []
    if not report.overload_enabled:
        return out
    if report.overload_rejected != len(report.admission_rejected):
        out.append(
            f"accounting: {report.overload_rejected} rejections counted but "
            f"{len(report.admission_rejected)} ADMISSION-canceled jobs"
        )
    if report.overload_shed != len(report.admission_shed):
        out.append(
            f"accounting: {report.overload_shed} sheds counted but "
            f"{len(report.admission_shed)} SHED-canceled jobs"
        )
    if report.degraded_matches < len(report.degraded):
        out.append(
            f"accounting: {len(report.degraded)} degraded jobs exceed "
            f"{report.degraded_matches} degraded matches counted"
        )
    return out


def run_campaign(
    spec: CampaignSpec,
    workdir: Optional[str] = None,
    observe: bool = False,
    trace_path: Optional[str] = None,
) -> CampaignResult:
    """Run one campaign to completion; never raises on scheduler faults.

    Invariant violations (auditor/FluxSan), unexpected library errors and
    accounting mismatches are collected into ``result.violations``; the
    campaign is ``ok`` when none occurred.  ``workdir`` hosts the
    journal/snapshots when crash injection is enabled (a temporary
    directory is used — and cleaned up — when omitted).
    """
    from ..recovery import CrashInjector, RecoveryManager, recover
    from ..recovery.crash import SimulatedCrash
    from ..recovery.diff import state_fingerprint

    tmp = None
    if spec.crash_point is not None and workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="chaos-")
        workdir = tmp.name
    violations: List[str] = []
    crashed = False
    recovered = False
    try:
        sim = _build_simulator(spec, observe=observe)
        if spec.crash_point is not None:
            RecoveryManager(workdir).attach(sim)
            CrashInjector(spec.crash_point, nth=spec.crash_nth).attach(sim)
        for at, jobspec, priority, actual in _submission_plan(spec):
            sim.submit(
                jobspec, at=at, priority=priority, actual_duration=actual
            )
        if spec.faults:
            FaultInjector(
                {"node": FaultModel(spec.fault_mtbf, spec.fault_mttr)},
                horizon=spec.fault_horizon,
                seed=spec.seed,
            ).install(sim)
        try:
            sim.run()
        # The chaos harness IS the recovery consumer: it absorbs the
        # injected crash and replays the journal, like a restarted daemon.
        # fluxlint: disable-next-line=EXC002 (vetted recovery handler)
        except SimulatedCrash:
            crashed = True
            sim = recover(workdir)
            recovered = True
            sim.run()
        # Final deep cross-check + accounting reconciliation.
        if sim.auditor is not None:
            sim.auditor.check(sim)
        report = sim.report()
        violations.extend(_accounting_violations(report))
        fingerprint = hashlib.sha256(
            json.dumps(
                state_fingerprint(sim), sort_keys=True, default=str
            ).encode("utf-8")
        ).hexdigest()
        if trace_path is not None and sim.obs.enabled:
            sim.export_trace(trace_path)
        return CampaignResult(
            spec=spec,
            ok=not violations,
            violations=violations,
            summary=report.summary(),
            fingerprint=fingerprint,
            crashed=crashed,
            recovered=recovered,
            report=report,
        )
    except FluxionError as exc:
        violations.append(f"{type(exc).__name__}: {exc}")
        return CampaignResult(
            spec=spec,
            ok=False,
            violations=violations,
            crashed=crashed,
            recovered=recovered,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()


def _corrupt_journal_records(path: str, count: int, rng: random.Random) -> int:
    """Damage ``count`` mid-stream journal frames; returns frames damaged.

    The final record is never touched — damaging it would be a torn tail,
    which strict recovery already tolerates; the campaign is after the
    mid-stream case strict recovery refuses.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.split(b"\n")
    body = [i for i, line in enumerate(lines[:-1]) if line]
    eligible = body[:-1]
    if not eligible:
        return 0
    chosen = sorted(rng.sample(eligible, min(count, len(eligible))))
    for index in chosen:
        line = lines[index]
        tail = b"zz" if line[-2:] != b"zz" else b"qq"
        lines[index] = line[:-2] + tail
    with open(path, "wb") as handle:
        handle.write(b"\n".join(lines))
    return len(chosen)


def _tamper_snapshot_planners(directory: str, salt: int) -> int:
    """Damage the ``planners`` section of every snapshot file in place.

    The wrapper checksums are left stale, so strict loading fails on every
    file and salvage loading localises the damage to the one rebuildable
    section.  Returns the number of files tampered.
    """
    tampered = 0
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("snapshot-") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        with open(path, "r", encoding="utf-8") as handle:
            wrapper = json.load(handle)
        doc = wrapper.get("snapshot")
        if not isinstance(doc, dict) or "planners" not in doc:
            continue
        doc["planners"]["__chaos_tamper__"] = salt
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(wrapper, handle, sort_keys=True, separators=(",", ":"))
        tampered += 1
    return tampered


def run_corruption_campaign(
    spec: CampaignSpec,
    workdir: Optional[str] = None,
    observe: bool = False,
) -> CampaignResult:
    """Run one corruption campaign: inject → detect → repair → converge.

    The spec's ``corruption`` scenario picks one injection site (see
    :data:`CORRUPTION_SITES`).  Live-state damage must be detected by the
    online scrubber, quarantined without crashing, repaired, and the
    simulation must run to completion with a clean deep audit.  Durable
    damage (journal frame, snapshot section) must be *refused* by strict
    recovery and salvaged with loss accounting that matches the injected
    damage exactly.  Every campaign ends with the ``fluxfsck --check``
    gate over the recovery directory; its verdict and the loss accounting
    land in ``result.loss``.
    """
    from ..errors import JournalCorruptError, SnapshotError
    from ..recovery import RecoveryManager, recover
    from ..recovery.__main__ import main as fsck_main
    from ..recovery.diff import state_fingerprint
    from ..recovery.integrity import corruption_targets

    if spec.corruption is None:
        raise SchedulerError("spec has no corruption scenario")
    corruption = spec.corruption
    site = corruption["site"]
    salt = int(corruption.get("salt", 1))
    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="chaos-corrupt-")
        workdir = tmp.name
    violations: List[str] = []
    loss: dict = {"site": site}
    rng = random.Random(spec.seed ^ salt)
    try:
        sim = _build_simulator(spec, observe=observe)
        RecoveryManager(
            workdir, snapshot_every=corruption.get("snapshot_every")
        ).attach(sim)
        for at, jobspec, priority, actual in _submission_plan(spec):
            sim.submit(
                jobspec, at=at, priority=priority, actual_duration=actual
            )
        sim.run(until=int(corruption.get("at", 600)))

        if site in ("live-span", "live-aggregate"):
            kind = "span" if site == "live-span" else "aggregate"
            targets = corruption_targets(sim, kind)
            if not targets:
                kind = "structure"  # always applicable fallback
                targets = corruption_targets(sim, kind)
            name = targets[rng.randrange(len(targets))]
            applied = sim.inject_corruption(
                kind, sim.graph.vertex_by_name(name), salt
            )
            loss.update({"kind": kind, "vertex": name, "applied": applied})
            sim.run()
            counters = sim.integrity.counters
            loss.update(
                {
                    "detected": counters["detected"],
                    "repaired": counters["repaired"],
                    "unrepaired": counters["unrepaired"],
                    "jobs_requeued": counters["jobs_requeued"],
                }
            )
            if applied and counters["detected"] < 1:
                violations.append(f"{site}: injected damage never detected")
            if counters["unrepaired"]:
                violations.append(
                    f"{site}: {counters['unrepaired']} vertices unrepaired"
                )
            if sim.integrity.quarantined:
                violations.append(
                    f"{site}: quarantine not released: "
                    f"{sorted(sim.integrity.quarantined)}"
                )
        else:
            sim.recovery.close()
            if site == "journal":
                injected = _corrupt_journal_records(
                    os.path.join(workdir, "journal.wal"),
                    int(corruption.get("count", 2)),
                    rng,
                )
                loss["injected"] = injected
                if injected:
                    try:
                        recover(workdir)
                        violations.append(
                            "journal: strict recovery accepted mid-stream "
                            "damage"
                        )
                    except JournalCorruptError:
                        loss["strict_refused"] = True
            else:
                tampered = _tamper_snapshot_planners(workdir, salt)
                loss["injected"] = tampered
                if tampered:
                    try:
                        recover(workdir)
                        violations.append(
                            "snapshot: strict recovery accepted damaged "
                            "snapshots"
                        )
                    except SnapshotError:
                        loss["strict_refused"] = True
            salvage_report: dict = {}
            sim = recover(
                workdir, salvage=True, salvage_report=salvage_report
            )
            loss.update(
                {
                    "crc_skipped": salvage_report.get("crc_skipped", 0),
                    "replay_dropped": salvage_report.get("replay_dropped", 0),
                    "sections_rebuilt": salvage_report.get(
                        "snapshot_sections_rebuilt", []
                    ),
                }
            )
            if site == "journal" and loss["crc_skipped"] != loss["injected"]:
                violations.append(
                    f"journal: loss accounting mismatch — injected "
                    f"{loss['injected']} but skipped {loss['crc_skipped']}"
                )
            if (
                site == "snapshot"
                and loss["injected"]
                and loss["sections_rebuilt"] != ["planners"]
            ):
                violations.append(
                    f"snapshot: expected ['planners'] rebuilt, got "
                    f"{loss['sections_rebuilt']}"
                )
            sim.run()

        if sim.auditor is not None:
            sim.auditor.check(sim)
        report = sim.report()
        violations.extend(_accounting_violations(report))
        fingerprint = hashlib.sha256(
            json.dumps(
                state_fingerprint(sim), sort_keys=True, default=str
            ).encode("utf-8")
        ).hexdigest()
        if sim.recovery is not None:
            sim.recovery.close()
        fsck_exit = fsck_main(["fsck", workdir, "--check"])
        loss["fsck_exit"] = fsck_exit
        if fsck_exit != 0:
            violations.append(
                f"fsck --check exits {fsck_exit} after repair"
            )
        return CampaignResult(
            spec=spec,
            ok=not violations,
            violations=violations,
            summary=report.summary(),
            fingerprint=fingerprint,
            report=report,
            loss=loss,
        )
    except FluxionError as exc:
        violations.append(f"{type(exc).__name__}: {exc}")
        return CampaignResult(
            spec=spec, ok=False, violations=violations, loss=loss
        )
    finally:
        if tmp is not None:
            tmp.cleanup()


def _simplifications(spec: CampaignSpec) -> List[Tuple[str, CampaignSpec]]:
    """Candidate one-step simplifications of ``spec``, gentlest cut first."""
    out: List[Tuple[str, CampaignSpec]] = []
    if spec.crash_point is not None:
        out.append(("drop-crash", replace(spec, crash_point=None)))
    if spec.faults:
        out.append(("drop-faults", replace(spec, faults=False)))
    for index in range(len(spec.bursts)):
        if len(spec.bursts) > 1:
            remaining = tuple(
                burst
                for position, burst in enumerate(spec.bursts)
                if position != index
            )
            out.append((f"drop-burst-{index}", replace(spec, bursts=remaining)))
    for index, (at, size) in enumerate(spec.bursts):
        if size > 1:
            halved = tuple(
                (at, size // 2) if position == index else burst
                for position, burst in enumerate(spec.bursts)
            )
            out.append((f"halve-burst-{index}", replace(spec, bursts=halved)))
    if spec.steady_jobs > 1:
        out.append(
            ("halve-steady", replace(spec, steady_jobs=spec.steady_jobs // 2))
        )
    return out


def shrink_campaign(
    spec: CampaignSpec,
    failing: Optional[Callable[[CampaignResult], bool]] = None,
    max_runs: int = 40,
) -> Tuple[CampaignSpec, List[str]]:
    """Greedily shrink a failing campaign to a minimal reproducer.

    ``failing`` decides whether a run still reproduces the failure (default:
    ``not result.ok``); the initial ``spec`` must fail it.  Each candidate
    simplification is re-run and kept only when the failure persists,
    looping to a fixpoint (or ``max_runs`` campaign executions).  Returns
    the minimal spec and the list of applied simplification steps.
    """
    if failing is None:
        failing = _default_failing
    if not failing(run_campaign(spec)):
        raise SchedulerError(
            "shrink_campaign needs a failing campaign to start from"
        )
    runs = 1
    applied: List[str] = []
    progress = True
    while progress and runs < max_runs:
        progress = False
        for name, candidate in _simplifications(spec):
            if runs >= max_runs:
                break
            runs += 1
            if failing(run_campaign(candidate)):
                spec = candidate
                applied.append(name)
                progress = True
                break
    return spec, applied


def _default_failing(result: CampaignResult) -> bool:
    return not result.ok


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run N seeded campaigns, shrink and dump failures."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="Run seeded chaos campaigns against the scheduler.",
    )
    parser.add_argument(
        "--campaigns", type=int, default=5, help="number of campaigns to run"
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, help="seed of the first campaign"
    )
    parser.add_argument(
        "--out",
        default="chaos-artifacts",
        help="directory for reproducer specs and traces of failures",
    )
    parser.add_argument(
        "--max-shrink-runs",
        type=int,
        default=40,
        help="campaign executions the shrinker may spend per failure",
    )
    parser.add_argument(
        "--corruption",
        action="store_true",
        help="run corruption campaigns (inject → detect → repair → fsck) "
        "instead of fault/crash campaigns; loss reports land in --out",
    )
    args = parser.parse_args(argv)
    if args.corruption:
        return _corruption_main(args)
    failures = 0
    for index in range(args.campaigns):
        seed = args.seed_base + index
        spec = CampaignSpec.from_seed(seed)
        result = run_campaign(spec)
        status = "ok" if result.ok else "FAIL"
        print(f"campaign seed={seed}: {status} {result.summary}")
        if result.ok:
            continue
        failures += 1
        for violation in result.violations:
            print(f"  violation: {violation}")
        os.makedirs(args.out, exist_ok=True)
        minimal, steps = shrink_campaign(spec, max_runs=args.max_shrink_runs)
        final = run_campaign(
            minimal,
            observe=True,
            trace_path=os.path.join(args.out, f"trace-seed{seed}.json"),
        )
        artifact = {
            "seed": seed,
            "spec": spec.to_dict(),
            "minimal_spec": minimal.to_dict(),
            "shrink_steps": steps,
            "violations": result.violations,
            "minimal_violations": final.violations,
        }
        path = os.path.join(args.out, f"reproducer-seed{seed}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
        print(f"  reproducer written to {path} (steps: {steps})")
    print(f"{args.campaigns - failures}/{args.campaigns} campaigns clean")
    return 1 if failures else 0


def _corruption_main(args: argparse.Namespace) -> int:
    """Run the corruption acceptance matrix: sites rotate across seeds.

    Unlike fault campaigns, *every* run writes its loss report to ``--out``
    — the accounting is the artifact, not just the failures.  Corruption
    campaigns are not shrunk: the spec is already minimal (one injection).
    """
    os.makedirs(args.out, exist_ok=True)
    failures = 0
    for index in range(args.campaigns):
        seed = args.seed_base + index
        site = CORRUPTION_SITES[index % len(CORRUPTION_SITES)]
        spec = CampaignSpec.corruption_from_seed(seed, site)
        result = run_corruption_campaign(spec)
        status = "ok" if result.ok else "FAIL"
        print(f"corruption seed={seed} site={site}: {status}")
        if not result.ok:
            failures += 1
            for violation in result.violations:
                print(f"  violation: {violation}")
        artifact = {
            "seed": seed,
            "site": site,
            "ok": result.ok,
            "spec": spec.to_dict(),
            "loss": result.loss,
            "violations": result.violations,
            "summary": result.summary,
        }
        path = os.path.join(args.out, f"corruption-seed{seed}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
    print(f"{args.campaigns - failures}/{args.campaigns} campaigns clean")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
