"""Overload protection: admission control, deadlines, breakers, degradation.

Fluxion's match cost grows with graph size and queue depth (§6), so a
scheduler that never sheds or degrades work stalls exactly when the cluster
is busiest.  This module keeps the scheduler *live* under pressure with four
cooperating mechanisms, all of them deterministic (decisions depend only on
simulator + controller state, never wall-clock, so crash-recovery replay
reproduces them exactly):

**Admission control** (:meth:`OverloadController.admit`) bounds the
schedulable pending-queue depth (``max_pending``).  Over the bound, the
configured policy applies: ``reject`` cancels the new job
(:attr:`~repro.sched.job.CancelReason.ADMISSION`), ``shed`` cancels the
lowest-priority queued job to make room
(:attr:`~repro.sched.job.CancelReason.SHED`), ``defer`` parks the new job in
a holding bay outside the schedulable queue until depth recedes.

**Scheduling deadlines** (:class:`WorkBudget`) bound the work one dispatch
cycle and one match attempt may perform.  Budgets are measured in
deterministic *work units* — graph vertices visited plus reservation
candidate times tried — not seconds; the traverser charges the budget at
cooperative cancellation checkpoints and an over-budget traversal raises
:class:`~repro.errors.SchedulingDeadlineExceeded`, which the traverser turns
into a no-match verdict (attempt scope) or the controller turns into an
early end of cycle (cycle scope).  Overrun is bounded by one checkpoint
interval.

**Circuit breakers** (:class:`CircuitBreaker`) watch those deadline events:
a breaker per queue policy trips when whole cycles keep overrunning, a
breaker per match subsystem trips when individual attempts keep overrunning
or running slow.  An open breaker forces the degradation ladder down until a
half-open probe succeeds.

**The degradation ladder** (:class:`DegradeLevel`) steps match fidelity down
under sustained pressure and back up when pressure clears::

    FULL -> COARSE -> NODECENTRIC -> DEFER

``FULL`` runs the configured queue policy unchanged.  ``COARSE`` bypasses
the queue policy and matches a *coarsened* jobspec — the whole-node
exclusive shape of :func:`~repro.jobspec.build.nodes_jobspec`, the jobspec
analogue of the LOD pool coarsening in :mod:`repro.resource.lod` — with
allocate-now only (no reservation search).  ``NODECENTRIC`` additionally
forces the ``first`` match policy, reducing matching to the flat first-fit
of :mod:`repro.baselines.nodecentric`.  ``DEFER`` skips scheduling entirely
for the cycle (pure backoff).  Every transition is journaled, counted in
``overload.*`` metrics and marked in the trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

import enum

from ..errors import SchedulingDeadlineExceeded, SchedulerError
from ..jobspec import Jobspec
from ..jobspec.build import nodes_jobspec
from ..match.policy import make_policy

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..match import Traverser
    from ..match.writer import Allocation
    from ..sched.job import Job
    from ..sched.simulator import ClusterSimulator

__all__ = [
    "ADMISSION_POLICIES",
    "CircuitBreaker",
    "DegradeLevel",
    "OverloadConfig",
    "OverloadController",
    "WorkBudget",
    "coarsen_jobspec",
]

ADMISSION_POLICIES = ("reject", "shed", "defer")

#: resource types a whole-node coarsening still covers: anything that lives
#: at or below a node (an exclusive node hold subsumes its whole subtree).
_COARSE_TYPES = frozenset(
    {"slot", "node", "core", "gpu", "memory", "ssd", "socket"}
)


class DegradeLevel(enum.IntEnum):
    """Rungs of the degradation ladder, mildest first."""

    FULL = 0
    COARSE = 1
    NODECENTRIC = 2
    DEFER = 3


@dataclass
class OverloadConfig:
    """Tuning knobs for :class:`OverloadController`.

    Parameters
    ----------
    max_pending:
        Bound on the schedulable pending-queue depth (PENDING + RESERVED
        jobs whose submit time has arrived, deferred jobs excluded).  None
        disables admission control.
    admission_policy:
        What to do with a submission that would exceed ``max_pending``:
        ``reject`` | ``shed`` | ``defer``.
    cycle_budget:
        Work units one dispatch cycle may spend before it is cut short.
        None disables the cycle deadline.
    attempt_budget:
        Work units one match attempt may spend before it returns no-match.
        None disables the attempt deadline.
    checkpoint_interval:
        Units between cooperative cancellation checkpoints; bounds how far
        a budget can be overrun before the traversal notices.
    latency_threshold:
        Attempts spending more than this many units count as *slow* for the
        match breaker even when they finish within budget.  None disables.
    degrade_after:
        Consecutive pressured cycles (cycle cut short, or any attempt
        deadline hit) before the ladder steps down one level.
    recover_after:
        Consecutive healthy cycles before the ladder steps back up.
    breaker_window:
        Sliding window (in recorded outcomes) a breaker evaluates.
    breaker_failure_threshold:
        Failures within the window that trip a closed breaker.
    breaker_cooldown:
        Cycles an open breaker waits before probing (half-open).
    breaker_probes:
        Consecutive successful probes required to close again.
    """

    max_pending: Optional[int] = None
    admission_policy: str = "reject"
    cycle_budget: Optional[int] = None
    attempt_budget: Optional[int] = None
    checkpoint_interval: int = 64
    latency_threshold: Optional[int] = None
    degrade_after: int = 2
    recover_after: int = 4
    breaker_window: int = 8
    breaker_failure_threshold: int = 3
    breaker_cooldown: int = 6
    breaker_probes: int = 1

    def __post_init__(self) -> None:
        if self.admission_policy not in ADMISSION_POLICIES:
            raise SchedulerError(
                f"unknown admission policy {self.admission_policy!r}; "
                f"known: {list(ADMISSION_POLICIES)}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise SchedulerError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        for name in ("cycle_budget", "attempt_budget", "latency_threshold"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise SchedulerError(f"{name} must be >= 1, got {value}")
        for name in (
            "checkpoint_interval",
            "degrade_after",
            "recover_after",
            "breaker_window",
            "breaker_failure_threshold",
            "breaker_cooldown",
            "breaker_probes",
        ):
            if getattr(self, name) < 1:
                raise SchedulerError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )

    def to_dict(self) -> dict:
        """JSON-able form (snapshot / chaos reproducer serialisation)."""
        return {
            "max_pending": self.max_pending,
            "admission_policy": self.admission_policy,
            "cycle_budget": self.cycle_budget,
            "attempt_budget": self.attempt_budget,
            "checkpoint_interval": self.checkpoint_interval,
            "latency_threshold": self.latency_threshold,
            "degrade_after": self.degrade_after,
            "recover_after": self.recover_after,
            "breaker_window": self.breaker_window,
            "breaker_failure_threshold": self.breaker_failure_threshold,
            "breaker_cooldown": self.breaker_cooldown,
            "breaker_probes": self.breaker_probes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OverloadConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


class WorkBudget:
    """Deterministic work budget for one dispatch cycle.

    The traverser calls :meth:`charge` once per unit of match work (a graph
    vertex visited, a reservation candidate time tried).  Every
    ``checkpoint_interval`` units a cooperative cancellation checkpoint
    compares spend against the limits and raises
    :class:`~repro.errors.SchedulingDeadlineExceeded` — cycle scope first
    (more severe), then attempt scope — so overrun is bounded by one
    checkpoint interval.
    """

    __slots__ = (
        "cycle_limit",
        "attempt_limit",
        "checkpoint_interval",
        "latency_threshold",
        "cycle_spent",
        "attempt_spent",
        "attempts",
        "deadline_attempts",
        "slow_attempts",
        "cycle_deadline_hit",
        "max_cycle_overrun",
        "_since_checkpoint",
        "_attempt_hit",
        "_in_attempt",
    )

    def __init__(
        self,
        cycle_limit: Optional[int] = None,
        attempt_limit: Optional[int] = None,
        checkpoint_interval: int = 64,
        latency_threshold: Optional[int] = None,
    ) -> None:
        if checkpoint_interval < 1:
            raise SchedulerError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        self.cycle_limit = cycle_limit
        self.attempt_limit = attempt_limit
        self.checkpoint_interval = checkpoint_interval
        self.latency_threshold = latency_threshold
        self.cycle_spent = 0
        self.attempt_spent = 0
        self.attempts = 0
        self.deadline_attempts = 0
        self.slow_attempts = 0
        self.cycle_deadline_hit = False
        self.max_cycle_overrun = 0
        self._since_checkpoint = 0
        self._attempt_hit = False
        self._in_attempt = False

    @property
    def cycle_exhausted(self) -> bool:
        """True once the cycle budget is spent (queue policies stop early)."""
        return (
            self.cycle_limit is not None
            and self.cycle_spent >= self.cycle_limit
        )

    def charge(self, units: int = 1) -> None:
        """Account ``units`` of match work; checkpoint when due."""
        self.cycle_spent += units
        self.attempt_spent += units
        self._since_checkpoint += units
        if self._since_checkpoint >= self.checkpoint_interval:
            self._since_checkpoint = 0
            self.checkpoint()

    def checkpoint(self) -> None:
        """Cooperative cancellation point: raise when a budget is exceeded."""
        if self.cycle_limit is not None and self.cycle_spent > self.cycle_limit:
            self.cycle_deadline_hit = True
            self.max_cycle_overrun = max(
                self.max_cycle_overrun, self.cycle_spent - self.cycle_limit
            )
            raise SchedulingDeadlineExceeded(
                "cycle", self.cycle_spent, self.cycle_limit
            )
        if (
            self.attempt_limit is not None
            and self.attempt_spent > self.attempt_limit
        ):
            self._attempt_hit = True
            raise SchedulingDeadlineExceeded(
                "attempt", self.attempt_spent, self.attempt_limit
            )

    def begin_attempt(self) -> None:
        """Start a new match attempt (finalising the previous one)."""
        self._finalize_attempt()
        self._in_attempt = True

    def finish(self) -> None:
        """Close the budget at end of cycle, finalising the last attempt."""
        self._finalize_attempt()
        if self.cycle_limit is not None and self.cycle_spent > self.cycle_limit:
            self.max_cycle_overrun = max(
                self.max_cycle_overrun, self.cycle_spent - self.cycle_limit
            )

    def _finalize_attempt(self) -> None:
        if self._in_attempt:
            self.attempts += 1
            if self._attempt_hit:
                self.deadline_attempts += 1
            elif (
                self.latency_threshold is not None
                and self.attempt_spent > self.latency_threshold
            ):
                self.slow_attempts += 1
        self.attempt_spent = 0
        self._attempt_hit = False
        self._in_attempt = False


class CircuitBreaker:
    """A closed/open/half-open breaker over deterministic outcomes.

    Unlike service-mesh breakers this one never reads a clock: outcomes are
    recorded per scheduling cycle and the cooldown is counted in cycles, so
    a recovered run replays the exact same state transitions.

    * CLOSED — outcomes recorded into a sliding window; ``failure_threshold``
      failures within ``window`` trip it OPEN.
    * OPEN — the protected path is bypassed; after ``cooldown`` cycles the
      breaker turns HALF_OPEN.
    * HALF_OPEN — the path is probed; ``probes`` consecutive successes close
      the breaker, any failure re-opens it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    __slots__ = (
        "name",
        "window",
        "failure_threshold",
        "cooldown",
        "probes",
        "state",
        "trips",
        "_outcomes",
        "_opened_at",
        "_probes_left",
    )

    def __init__(
        self,
        name: str,
        window: int = 8,
        failure_threshold: int = 3,
        cooldown: int = 6,
        probes: int = 1,
    ) -> None:
        self.name = name
        self.window = window
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.probes = probes
        self.state = self.CLOSED
        self.trips = 0
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._opened_at = 0
        self._probes_left = 0

    @property
    def is_open(self) -> bool:
        """True while the protected path must be bypassed."""
        return self.state == self.OPEN

    def tick(self, cycle: int) -> None:
        """Advance the breaker's cycle clock (cooldown -> half-open)."""
        if self.state == self.OPEN and cycle - self._opened_at >= self.cooldown:
            self.state = self.HALF_OPEN
            self._probes_left = self.probes

    def record(self, ok: bool, cycle: int) -> None:
        """Record one outcome of the protected path at ``cycle``."""
        if self.state == self.HALF_OPEN:
            if ok:
                self._probes_left -= 1
                if self._probes_left <= 0:
                    self.state = self.CLOSED
                    self._outcomes.clear()
            else:
                self._trip(cycle)
            return
        if self.state == self.OPEN:
            return
        self._outcomes.append(ok)
        failures = sum(1 for outcome in self._outcomes if not outcome)
        if failures >= self.failure_threshold:
            self._trip(cycle)

    def _trip(self, cycle: int) -> None:
        self.state = self.OPEN
        self.trips += 1
        self._opened_at = cycle
        self._outcomes.clear()

    # -- snapshot state (crash recovery) -------------------------------
    def export_state(self) -> dict:
        """Serialise dynamic state (configuration lives in OverloadConfig)."""
        return {
            "state": self.state,
            "trips": self.trips,
            "outcomes": [int(outcome) for outcome in self._outcomes],
            "opened_at": self._opened_at,
            "probes_left": self._probes_left,
        }

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output."""
        self.state = state["state"]
        self.trips = int(state["trips"])
        self._outcomes = deque(
            (bool(outcome) for outcome in state["outcomes"]), maxlen=self.window
        )
        self._opened_at = int(state["opened_at"])
        self._probes_left = int(state["probes_left"])


def coarsen_jobspec(jobspec: Jobspec) -> Optional[Jobspec]:
    """Coarsen ``jobspec`` to the whole-node exclusive shape, or None.

    The degraded-match analogue of LOD pool coarsening
    (:mod:`repro.resource.lod`): instead of rewriting the graph, rewrite the
    *request* to the cheapest shape that still covers it — ``n`` exclusive
    whole nodes, where ``n`` is the jobspec's total node demand.  An
    exclusive node hold subsumes every resource beneath the node, so any
    request built solely from node-subtree types is covered (possibly
    over-served).  Requests that constrain resources above or outside the
    node subtree (racks, switches, power, ...) or carry property
    predicates cannot be expressed this way and return None.
    """
    nnodes = jobspec.totals().get("node", 0)
    if nnodes < 1:
        return None
    for request in jobspec.walk():
        if request.type not in _COARSE_TYPES:
            return None
        if request.requires is not None:
            return None
    return nodes_jobspec(int(nnodes), duration=jobspec.duration)


class OverloadController:
    """Admission control, deadlines, breakers and the degradation ladder.

    Attach one per :class:`~repro.sched.simulator.ClusterSimulator` (the
    simulator does this when constructed with ``overload=``).  All decisions
    are pure functions of simulator + controller state: the controller
    journals them as ``internal`` records (audit trail only) and recovery
    replay regenerates them by re-executing the enclosing commands.
    """

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.sim: Optional["ClusterSimulator"] = None
        self.level = DegradeLevel.FULL
        #: job ids parked by the ``defer`` admission policy
        self.deferred: set = set()
        self.cycle_index = 0
        self.max_cycle_overrun = 0
        self.counters: Dict[str, int] = {
            "admitted": 0,
            "rejected": 0,
            "shed": 0,
            "deferred": 0,
            "promoted": 0,
            "degraded_matches": 0,
            "inexpressible": 0,
            "deadline_attempts": 0,
            "deadline_cycles": 0,
            "transitions": 0,
        }
        self._consecutive_bad = 0
        self._consecutive_good = 0
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._first_policy = make_policy("first")

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, sim: "ClusterSimulator") -> None:
        """Bind this controller to ``sim`` and create its breakers."""
        self.sim = sim
        self.breakers = {
            f"queue.{sim.queue_policy.name}": self._make_breaker(
                f"queue.{sim.queue_policy.name}"
            ),
            f"match.{sim.traverser.subsystem}": self._make_breaker(
                f"match.{sim.traverser.subsystem}"
            ),
        }
        self._queue_breaker = self.breakers[f"queue.{sim.queue_policy.name}"]
        self._match_breaker = self.breakers[f"match.{sim.traverser.subsystem}"]

    def _make_breaker(self, name: str) -> CircuitBreaker:
        cfg = self.config
        return CircuitBreaker(
            name,
            window=cfg.breaker_window,
            failure_threshold=cfg.breaker_failure_threshold,
            cooldown=cfg.breaker_cooldown,
            probes=cfg.breaker_probes,
        )

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def check_admission(self, priority: int = 0) -> None:
        """Service-style pre-flight: raise when a submission at ``priority``
        would be refused right now (for callers that prefer an exception to
        a canceled job; the simulator path cancels instead)."""
        from ..errors import AdmissionRejected

        cfg = self.config
        if cfg.max_pending is None or self.sim is None:
            return
        depth = self._depth()
        if depth < cfg.max_pending:
            return
        if cfg.admission_policy == "shed":
            victim = self._shed_victim(priority, None)
            if victim is not None:
                return
        elif cfg.admission_policy == "defer":
            return  # a deferred submission is still accepted
        raise AdmissionRejected(
            f"queue depth {depth} at bound {cfg.max_pending}; "
            f"policy {cfg.admission_policy!r} refuses priority {priority}",
            policy=cfg.admission_policy,
            depth=depth,
        )

    def admit(self, job: "Job") -> bool:
        """Apply admission control to a just-dispatched submission.

        Returns True when the job was admitted (a scheduling cycle should
        run), False when it was rejected, shed or deferred.
        """
        sim = self.sim
        cfg = self.config
        if sim is None or cfg.max_pending is None:
            self.counters["admitted"] += 1
            return True
        depth = self._depth()
        if depth <= cfg.max_pending:
            self.counters["admitted"] += 1
            return True
        return self._admit_pressured(job)

    def _admit_pressured(self, job: "Job") -> bool:
        """Apply the configured admission policy to an over-bound queue.

        Every outcome journals its decision *before* mutating state
        (write-ahead order), so a crash between the two replays cleanly.
        """
        from ..sched.job import CancelReason

        sim = self.sim
        cfg = self.config
        assert sim is not None
        sim._crashpoint("admit.pre")
        why = sim.obs.why
        if cfg.admission_policy == "reject":
            self._journal("admission", job_id=job.job_id, action="reject")
            self.counters["rejected"] += 1
            self._obs_count("overload.rejected")
            if why.enabled:
                why.event(
                    job.job_id, float(sim.now), "admission-reject",
                    name=job.name, policy="reject", depth=self._depth(),
                )
            sim.cancel(job, reason=CancelReason.ADMISSION)
            sim._crashpoint("admit.post")
            return False
        if cfg.admission_policy == "defer":
            self._journal("admission", job_id=job.job_id, action="defer")
            self.counters["deferred"] += 1
            self._obs_count("overload.deferred")
            if why.enabled:
                why.event(
                    job.job_id, float(sim.now), "admission-defer",
                    name=job.name, policy="defer", depth=self._depth(),
                )
            self.deferred.add(job.job_id)
            sim.event_log.append((sim.now, "defer", job.job_id))
            sim._crashpoint("admit.post")
            return False
        # shed-lowest-priority: the weakest queued job makes room — which
        # may be the new job itself when nothing queued ranks below it.
        victim = self._shed_victim(job.priority, job.job_id)
        if victim is None:
            self._journal(
                "admission", job_id=job.job_id, action="shed", victim=job.job_id
            )
            self.counters["shed"] += 1
            self._obs_count("overload.shed")
            if why.enabled:
                why.event(
                    job.job_id, float(sim.now), "admission-shed",
                    name=job.name, policy="shed", victim=job.job_id,
                )
            sim.cancel(job, reason=CancelReason.SHED)
            sim._crashpoint("admit.post")
            return False
        self._journal(
            "admission", job_id=job.job_id, action="shed", victim=victim.job_id
        )
        self.counters["shed"] += 1
        self._obs_count("overload.shed")
        if why.enabled:
            why.event(
                job.job_id, float(sim.now), "admission-shed-victim",
                name=job.name, policy="shed", victim=victim.job_id,
            )
            why.event(
                victim.job_id, float(sim.now), "shed",
                name=victim.name, policy="shed", displaced_by=job.job_id,
            )
        sim.cancel(victim, reason=CancelReason.SHED)
        sim._crashpoint("admit.shed")
        self.counters["admitted"] += 1
        sim._crashpoint("admit.post")
        return True

    def _depth(self) -> int:
        """Schedulable pending-queue depth (deferred jobs excluded)."""
        from ..sched.job import JobState

        sim = self.sim
        assert sim is not None
        return sum(
            1
            for j in sim.jobs.values()
            if j.state in (JobState.PENDING, JobState.RESERVED)
            and j.submit_time <= sim.now
            and j.job_id not in self.deferred
        )

    def _shed_victim(
        self, priority: int, exclude_id: Optional[int]
    ) -> Optional["Job"]:
        """Lowest-priority queued job strictly below ``priority`` (ties:
        youngest loses), or None when nothing outranked exists."""
        from ..sched.job import JobState

        sim = self.sim
        assert sim is not None
        candidates = [
            j
            for j in sim.jobs.values()
            if j.state in (JobState.PENDING, JobState.RESERVED)
            and j.submit_time <= sim.now
            and j.job_id not in self.deferred
            and j.job_id != exclude_id
            and j.priority < priority
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda j: (j.priority, -j.job_id))

    def promote_deferred(self) -> int:
        """Move deferred jobs back into the schedulable queue while depth
        allows; returns how many were promoted."""
        sim = self.sim
        if sim is None or not self.deferred:
            return 0
        promoted = 0
        while self.deferred:
            job = self._next_promotion()
            if job is None:
                break
            self._promote(job)
            promoted += 1
        self._drop_stale_deferred()
        return promoted

    def _next_promotion(self) -> "Optional[Job]":
        """The deferred job that should re-enter the queue now, if any
        (highest priority first, submission order breaking ties)."""
        sim = self.sim
        cfg = self.config
        assert sim is not None
        depth = self._depth()
        if cfg.max_pending is not None and depth >= cfg.max_pending:
            return None
        ready = [
            sim.jobs[jid]
            for jid in self.deferred
            if sim.jobs[jid].submit_time <= sim.now
            and sim.jobs[jid].is_active
        ]
        if not ready:
            return None
        return min(ready, key=lambda j: (-j.priority, j.job_id))

    def _promote(self, job: "Job") -> None:
        """Journal (write-ahead), then move ``job`` out of the parking set."""
        sim = self.sim
        assert sim is not None
        self._journal("admission", job_id=job.job_id, action="promote")
        self.deferred.discard(job.job_id)
        sim.event_log.append((sim.now, "promote", job.job_id))
        self.counters["promoted"] += 1
        self._obs_count("overload.promoted")
        why = sim.obs.why
        if why.enabled:
            why.event(
                job.job_id, float(sim.now), "admission-promote",
                name=job.name,
            )

    def _drop_stale_deferred(self) -> None:
        """Forget deferred entries whose jobs are no longer active (e.g.
        canceled by the user while parked)."""
        sim = self.sim
        assert sim is not None
        for jid in list(self.deferred):
            if not sim.jobs[jid].is_active:
                self.deferred.discard(jid)

    # ------------------------------------------------------------------
    # the scheduling cycle under budget + ladder
    # ------------------------------------------------------------------
    def run_cycle(self, pending: List["Job"]) -> None:
        """Run one dispatch cycle under budget, at the effective ladder
        level, feeding breakers and the ladder with the outcome."""
        sim = self.sim
        assert sim is not None
        self.cycle_index += 1
        for breaker in self.breakers.values():
            breaker.tick(self.cycle_index)
        cfg = self.config
        budget = WorkBudget(
            cycle_limit=cfg.cycle_budget,
            attempt_limit=cfg.attempt_budget,
            checkpoint_interval=cfg.checkpoint_interval,
            latency_threshold=cfg.latency_threshold,
        )
        level = self.effective_level()
        traverser = sim.traverser
        traverser.budget = budget
        cycle_cut = False
        try:
            if level is DegradeLevel.FULL:
                sim.queue_policy.cycle(pending, traverser, sim.now)
            elif level is DegradeLevel.DEFER:
                pass  # pure backoff: touch nothing this cycle
            else:
                self._degraded_cycle(pending, traverser, level)
        except SchedulingDeadlineExceeded as exc:
            if exc.scope != "cycle":
                raise  # attempt-scope signals are handled in the traverser
            cycle_cut = True
        finally:
            traverser.budget = None
            budget.finish()
        self._after_cycle(budget, cycle_cut, level)

    def effective_level(self) -> DegradeLevel:
        """The ladder level this cycle actually runs at: the controller's
        level floored by any open breaker (queue breaker open -> at least
        COARSE, match breaker open -> at least NODECENTRIC)."""
        level = self.level
        if self._queue_breaker.is_open:
            level = max(level, DegradeLevel.COARSE)
        if self._match_breaker.is_open:
            level = max(level, DegradeLevel.NODECENTRIC)
        return level

    def _degraded_cycle(
        self,
        pending: List["Job"],
        traverser: "Traverser",
        level: DegradeLevel,
    ) -> None:
        """Allocate-now over coarsened jobspecs, bypassing the queue policy.

        ``NODECENTRIC`` additionally swaps in the ``first`` match policy for
        each attempt, degenerating the match to flat first-fit (the
        node-centric baseline's behaviour).  Jobs whose requests cannot be
        coarsened are skipped (they stay pending for a healthier cycle); no
        reservations are made at degraded levels.
        """
        from ..sched.job import JobState

        sim = self.sim
        assert sim is not None
        verb = f"degraded_{level.name.lower()}"
        with sim.obs.tracer.span(
            "overload.degraded_cycle", "overload",
            vt=float(sim.now), level=level.name,
        ):
            for job in pending:
                if job.state is not JobState.PENDING:
                    continue
                budget = traverser.budget
                if budget is not None and budget.cycle_exhausted:
                    break
                coarse = coarsen_jobspec(job.jobspec)
                if coarse is None:
                    self.counters["inexpressible"] += 1
                    continue
                with sim.queue_policy._attempt(job, sim.now, verb):
                    alloc = self._degraded_allocate(traverser, coarse, level)
                    if alloc is not None:
                        job.allocations.append(alloc)
                        job.transition(JobState.RUNNING)
                        job.degraded = level.name
                        self.counters["degraded_matches"] += 1
                        self._obs_count("overload.degraded_matches")

    def _degraded_allocate(
        self, traverser: "Traverser", coarse: Jobspec, level: DegradeLevel
    ) -> "Optional[Allocation]":
        if level is not DegradeLevel.NODECENTRIC:
            return traverser.allocate(coarse, at=self.sim.now)
        saved = traverser.policy
        traverser.policy = self._first_policy
        try:
            return traverser.allocate(coarse, at=self.sim.now)
        finally:
            traverser.policy = saved

    def _after_cycle(
        self, budget: WorkBudget, cycle_cut: bool, level: DegradeLevel
    ) -> None:
        sim = self.sim
        assert sim is not None
        cfg = self.config
        self.max_cycle_overrun = max(
            self.max_cycle_overrun, budget.max_cycle_overrun
        )
        self.counters["deadline_attempts"] += budget.deadline_attempts
        if cycle_cut:
            self.counters["deadline_cycles"] += 1
            self._obs_count("overload.deadline_cycles")
        if budget.deadline_attempts:
            self._obs_count("overload.deadline_attempts",
                            budget.deadline_attempts)
        # Breakers: the queue breaker watches whole-cycle overruns of the
        # FULL path; the match breaker watches per-attempt overruns and slow
        # attempts wherever they happen.
        if level is DegradeLevel.FULL:
            self._queue_breaker.record(not cycle_cut, self.cycle_index)
        if budget.attempts:
            self._match_breaker.record(
                budget.deadline_attempts == 0 and budget.slow_attempts == 0,
                self.cycle_index,
            )
        # Ladder: sustained pressure steps down, sustained health steps up.
        pressured = cycle_cut or budget.deadline_attempts > 0
        if pressured:
            self._consecutive_bad += 1
            self._consecutive_good = 0
        else:
            self._consecutive_good += 1
            self._consecutive_bad = 0
        if (
            self._consecutive_bad >= cfg.degrade_after
            and self.level < DegradeLevel.DEFER
        ):
            self._transition(DegradeLevel(self.level + 1))
            self._consecutive_bad = 0
        elif (
            self._consecutive_good >= cfg.recover_after
            and self.level > DegradeLevel.FULL
        ):
            self._transition(DegradeLevel(self.level - 1))
            self._consecutive_good = 0
        if sim.obs.enabled:
            sim.obs.metrics.gauge(
                "overload.level", "degradation ladder level (0=full)"
            ).set(int(self.effective_level()))

    def _transition(self, new_level: DegradeLevel) -> None:
        sim = self.sim
        assert sim is not None
        old = self.level
        label = f"{old.name.lower()}->{new_level.name.lower()}"
        self._journal("degrade", transition=label)
        self.level = new_level
        self.counters["transitions"] += 1
        sim.event_log.append((sim.now, "overload", label))
        self._obs_count("overload.transitions")
        if sim.obs.enabled:
            sim.obs.tracer.instant(
                "overload.transition", "overload",
                vt=float(sim.now), transition=label,
            )

    @property
    def breaker_trips(self) -> int:
        """Total trips across every breaker (report accounting)."""
        return sum(breaker.trips for breaker in self.breakers.values())

    # ------------------------------------------------------------------
    # journal / metrics plumbing
    # ------------------------------------------------------------------
    def _journal(self, kind: str, **fields: object) -> None:
        sim = self.sim
        if sim is None:
            return
        record = {"type": kind, "at": sim.now}
        record.update(fields)
        sim._journal(record)

    def _obs_count(self, name: str, amount: int = 1) -> None:
        sim = self.sim
        if sim is not None and sim.obs.enabled:
            sim.obs.metrics.counter(
                name, "overload-protection events"
            ).inc(amount)

    # ------------------------------------------------------------------
    # snapshot state (crash recovery)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Dynamic controller state for snapshots and fingerprints."""
        return {
            "level": self.level.name,
            "cycle_index": self.cycle_index,
            "consecutive_bad": self._consecutive_bad,
            "consecutive_good": self._consecutive_good,
            "max_cycle_overrun": self.max_cycle_overrun,
            "deferred": sorted(self.deferred),
            "counters": dict(self.counters),
            "breakers": {
                name: breaker.export_state()
                for name, breaker in sorted(self.breakers.items())
            },
        }

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output (after :meth:`attach`)."""
        self.level = DegradeLevel[state["level"]]
        self.cycle_index = int(state["cycle_index"])
        self._consecutive_bad = int(state["consecutive_bad"])
        self._consecutive_good = int(state["consecutive_good"])
        self.max_cycle_overrun = int(state["max_cycle_overrun"])
        self.deferred = set(state["deferred"])
        self.counters.update(state["counters"])
        for name, breaker_state in state["breakers"].items():
            if name in self.breakers:
                self.breakers[name].import_state(breaker_state)
