"""Stochastic fault injection: seeded MTBF/MTTR event generation.

Credible HPC simulation needs distribution- and trace-driven failure
modeling (the SST scheduling simulator, arXiv:2501.18191, makes the same
point).  A :class:`FaultInjector` turns per-resource-type
:class:`FaultModel` distributions into an alternating down/up event
sequence per vertex — drawn once, deterministically, from a seeded
generator — and installs the events on a simulator's heap as first-class
failure/repair events.  Explicit traces (recorded or hand-written) install
the same way through :func:`install_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SchedulerError

if False:  # pragma: no cover - annotation-only imports
    from ..resource import ResourceGraph
    from ..sched.simulator import ClusterSimulator

__all__ = ["FaultEvent", "FaultModel", "FaultInjector", "install_trace"]


@dataclass(frozen=True)
class FaultEvent:
    """One entry of a failure trace: ``vertex`` goes down or comes back."""

    time: int
    path: str  # containment path of the vertex, e.g. "/cluster0/rack1/node3"
    kind: str  # "fail" | "repair"

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "repair"):
            raise SchedulerError(f"unknown fault event kind {self.kind!r}")
        if self.time < 0:
            raise SchedulerError(f"fault event time must be >= 0, got {self.time}")


class FaultModel:
    """Failure behaviour of one resource type.

    Uptimes (time between repair and next failure) and downtimes (repair
    durations) are drawn from exponential distributions by default, or
    Weibull when a shape parameter is given — shape < 1 models infant
    mortality, > 1 wear-out, 1 reduces to exponential.

    Parameters
    ----------
    mtbf:
        Mean time between failures, in ticks.
    mttr:
        Mean time to repair, in ticks.
    mtbf_shape, mttr_shape:
        Optional Weibull shape parameters for the respective draws.
    """

    def __init__(
        self,
        mtbf: float,
        mttr: float,
        mtbf_shape: Optional[float] = None,
        mttr_shape: Optional[float] = None,
    ) -> None:
        if mtbf <= 0 or mttr <= 0:
            raise SchedulerError("mtbf and mttr must be positive")
        for shape in (mtbf_shape, mttr_shape):
            if shape is not None and shape <= 0:
                raise SchedulerError(f"Weibull shape must be positive, got {shape}")
        self.mtbf = mtbf
        self.mttr = mttr
        self.mtbf_shape = mtbf_shape
        self.mttr_shape = mttr_shape

    @staticmethod
    def _draw(rng: np.random.Generator, mean: float, shape: Optional[float]) -> int:
        if shape is None:
            value = rng.exponential(mean)
        else:
            # E[scale * W(shape)] = scale * gamma(1 + 1/shape); rescale so the
            # configured mean survives the shape choice.
            from math import gamma

            scale = mean / gamma(1.0 + 1.0 / shape)
            value = scale * rng.weibull(shape)
        return max(1, int(round(value)))

    def draw_uptime(self, rng: np.random.Generator) -> int:
        return self._draw(rng, self.mtbf, self.mtbf_shape)

    def draw_downtime(self, rng: np.random.Generator) -> int:
        return self._draw(rng, self.mttr, self.mttr_shape)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultModel(mtbf={self.mtbf}, mttr={self.mttr})"


class FaultInjector:
    """Generate and install seeded failure/repair events for a graph.

    Parameters
    ----------
    models:
        Resource type -> :class:`FaultModel`.  Every vertex of a modeled
        type gets its own alternating up/down timeline.
    horizon:
        Failures are generated for ``[0, horizon)``; a failure's repair may
        land past the horizon (the machine always heals eventually, so no
        job is stranded pending forever).
    seed:
        Seed of the single generator all draws come from; the event list is
        a pure function of (models, horizon, seed, graph shape).
    """

    def __init__(
        self,
        models: Mapping[str, FaultModel],
        horizon: int,
        seed: int = 0,
    ) -> None:
        if horizon <= 0:
            raise SchedulerError(f"horizon must be positive, got {horizon}")
        if not models:
            raise SchedulerError("FaultInjector needs at least one FaultModel")
        self.models = dict(models)
        self.horizon = horizon
        self.seed = seed

    def generate(self, graph: "ResourceGraph") -> List[FaultEvent]:
        """Draw the failure trace for ``graph`` (sorted, deterministic)."""
        rng = np.random.default_rng(self.seed)
        events: List[FaultEvent] = []
        for rtype in sorted(self.models):
            model = self.models[rtype]
            targets = sorted(graph.vertices(rtype), key=lambda v: v.uniq_id)
            for vertex in targets:
                path = vertex.path("containment")
                if not path:
                    continue  # not in containment: nothing to drain
                t = 0
                while True:
                    t += model.draw_uptime(rng)
                    if t >= self.horizon:
                        break
                    down = model.draw_downtime(rng)
                    events.append(FaultEvent(t, path, "fail"))
                    events.append(FaultEvent(t + down, path, "repair"))
                    t += down
        events.sort(key=lambda e: (e.time, e.path, e.kind))
        return events

    def install(self, sim: "ClusterSimulator") -> List[FaultEvent]:
        """Generate the trace for ``sim.graph`` and enqueue every event.

        The whole trace is validated against the installed graph before any
        event is scheduled (see :func:`install_trace`), so a graph mismatch
        — e.g. generating against one graph and installing on a simulator
        built from another — fails loudly instead of scheduling events that
        target nothing.
        """
        events = self.generate(sim.graph)
        install_trace(sim, events)
        return events


def install_trace(
    sim: "ClusterSimulator",
    events: Iterable[Union[FaultEvent, Sequence]],
) -> int:
    """Enqueue an explicit failure trace on a simulator's event heap.

    ``events`` are :class:`FaultEvent` instances or ``(time, path, kind)``
    tuples; paths are containment paths resolved against ``sim.graph``.
    Returns the number of events installed.

    The install is *atomic*: every path is resolved before any event is
    scheduled, and a path naming no vertex of the installed graph raises
    :class:`~repro.errors.SchedulerError` listing every unknown path —
    nothing is enqueued, so a bad trace can never leave a half-installed
    fault storm (or silently schedule no-op fail/repair events) behind.
    """
    from ..errors import ResourceGraphError

    resolved = []
    unknown: List[str] = []
    for entry in events:
        event = entry if isinstance(entry, FaultEvent) else FaultEvent(*entry)
        try:
            vertex = sim.graph.by_path(event.path)
        except ResourceGraphError:
            if event.path not in unknown:
                unknown.append(event.path)
            continue
        resolved.append((event, vertex))
    if unknown:
        raise SchedulerError(
            f"fault trace names {len(unknown)} path(s) with no vertex in "
            f"the installed graph: {unknown}; was the trace generated "
            "against a different graph?"
        )
    for event, vertex in resolved:
        if event.kind == "fail":
            sim.schedule_failure(vertex, at=event.time)
        else:
            sim.schedule_repair(vertex, at=event.time)
    return len(resolved)
