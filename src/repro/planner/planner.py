"""Planner: scalable scheduled-time-point management (paper §4.1, Fig. 3).

A Planner tracks the state of a single resource pool over time, like a
physical calendar planner.  Activities are *spans* — ``request`` units of the
resource held for ``[start, start + duration)`` — and the state between spans
is captured by *scheduled points*.  Two balanced trees index the points:

* the SP tree (by time) answers "how much is available at time t?" and
  "is the request satisfiable throughout a window?" in ``O(log N)``;
* the ET tree (by remaining resource, min-time augmented) answers "what is
  the earliest time the request fits?" in ``O(log N)`` via Algorithm 1.

The Planner is the building block for per-vertex state tracking, pruning
filters (through :class:`~repro.planner.multi.PlannerMulti`) and
reservation-based backfilling.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import PlannerError, SpanNotFoundError
from ..obs import runtime as _obs_runtime
from .span import ScheduledPoint, Span
from .trees import ETTree, SPTree

__all__ = ["Planner"]

#: ET-tree stash-size buckets for the ``planner.stash_points`` histogram
_STASH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Planner:
    """Time-state tracker for one resource pool.

    Parameters
    ----------
    total:
        Schedulable quantity of the pool (e.g. 8 memory units, 48 cores,
        or 1 for a singleton resource).
    plan_start, plan_end:
        The planning horizon ``[plan_start, plan_end)`` in integer ticks.
    resource_type:
        Informational label (e.g. ``"core"``); used in error messages and by
        :class:`~repro.planner.multi.PlannerMulti`.
    """

    __slots__ = (
        "total",
        "plan_start",
        "plan_end",
        "resource_type",
        "_sp",
        "_et",
        "_spans",
        "_next_span_id",
        "_base_point",
    )

    def __init__(
        self,
        total: int,
        plan_start: int = 0,
        plan_end: int = 2**62,
        resource_type: str = "",
    ) -> None:
        if total < 0:
            raise PlannerError(f"total must be non-negative, got {total}")
        if plan_end <= plan_start:
            raise PlannerError(
                f"empty planning horizon: [{plan_start}, {plan_end})"
            )
        self.total = total
        self.plan_start = plan_start
        self.plan_end = plan_end
        self.resource_type = resource_type
        # The trees and base point are created lazily on the first add_span:
        # resource graphs hold two Planners per vertex and most vertices are
        # never touched, so an empty Planner stays a tiny shell and answers
        # queries directly from `total`.
        self._sp: Optional[SPTree] = None
        self._et: Optional[ETTree] = None
        self._spans: Dict[int, Span] = {}
        self._next_span_id = 1
        self._base_point: Optional[ScheduledPoint] = None

    def _ensure_trees(self) -> None:
        """Materialise the SP/ET trees and the permanent base point."""
        if self._sp is not None:
            return
        self._sp = SPTree()
        self._et = ETTree()
        # Permanent base point: the state from plan_start until the first span.
        self._base_point = ScheduledPoint(self.plan_start, 0, self.total, ref_count=1)
        self._sp.insert(self._base_point)
        self._et.insert(self._base_point)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of active spans."""
        return len(self._spans)

    @property
    def span_count(self) -> int:
        """Number of active spans."""
        return len(self._spans)

    @property
    def point_count(self) -> int:
        """Number of scheduled points currently indexed (including base)."""
        return 1 if self._sp is None else len(self._sp)

    def spans(self) -> Iterator[Span]:
        """Iterate over active spans (unordered)."""
        return iter(self._spans.values())

    def get_span(self, span_id: int) -> Span:
        """Return the span with ``span_id``; raise SpanNotFoundError if absent."""
        try:
            return self._spans[span_id]
        except KeyError:
            raise SpanNotFoundError(span_id) from None

    def has_span(self, span_id: int) -> bool:
        """True when ``span_id`` names an active span."""
        return span_id in self._spans

    # ------------------------------------------------------------------
    # availability queries
    # ------------------------------------------------------------------
    def avail_resources_at(self, at: int) -> int:
        """Resource units available at instant ``at``."""
        self._check_time(at)
        if self._sp is None:
            return self.total
        point = self._sp.state_at(at)
        assert point is not None  # base point guarantees coverage
        return point.remaining

    def avail_at(self, at: int, request: int) -> bool:
        """True when ``request`` units are available at instant ``at`` (SatAt)."""
        return self.avail_resources_at(at) >= request

    def avail_resources_during(self, at: int, duration: int) -> int:
        """Minimum availability over the window ``[at, at + duration)``."""
        # Fast-path guard: _check_window only ever raises, so call it only
        # when one of its checks would fail (this query dominates match time).
        if duration <= 0 or at < self.plan_start or at + duration > self.plan_end:
            self._check_window(at, duration)
        if self._sp is None:
            return self.total
        governing = self._sp.state_at(at)
        assert governing is not None
        lowest = governing.remaining
        for point in self._sp.iter_range(at + 1, at + duration):
            if point.remaining < lowest:
                lowest = point.remaining
        return lowest

    def avail_during(self, at: int, duration: int, request: int) -> bool:
        """True when ``request`` units stay available over the whole window
        ``[at, at + duration)`` (SatDuring / the paper's SPANOK check).

        Short-circuits at the first scheduled point that under-satisfies the
        request, so rejections are cheap.
        """
        if duration <= 0 or at < self.plan_start or at + duration > self.plan_end:
            self._check_window(at, duration)
        if self._sp is None:
            return request <= self.total
        governing = self._sp.state_at(at)
        assert governing is not None
        if governing.remaining < request:
            return False
        for point in self._sp.iter_range(at + 1, at + duration):
            if point.remaining < request:
                return False
        return True

    def next_event_time(self, after: int) -> Optional[int]:
        """Earliest scheduled-point time strictly after ``after`` (or None).

        Availability can only change at scheduled points, so this is the
        next instant any time-based query could return a different answer.
        """
        if self._sp is None:
            return None
        point = self._sp.first_at_or_after(after + 1)
        return None if point is None else point.time

    def avail_time_first(
        self, request: int, duration: int = 1, on_or_after: int = 0
    ) -> Optional[int]:
        """Earliest time >= ``on_or_after`` at which ``request`` units are
        available for ``duration`` ticks (EarliestAt), or None if never.

        Implements the paper's AVAILAT loop: candidate start times come from
        the ET tree (Algorithm 1); candidates whose spans fail the SP-tree
        SPANOK check are stashed out of the ET tree and the search repeats,
        then the stash is restored.
        """
        obs = _obs_runtime.ACTIVE.get()
        if obs.enabled:
            obs.metrics.counter(
                "planner.queries", "single-type avail_time_first calls"
            ).inc()
        if request > self.total:
            return None
        at = max(on_or_after, self.plan_start)
        if at + duration > self.plan_end:
            return None
        if self._sp is None:
            return at
        # The availability profile only changes at scheduled points, so the
        # earliest fit starts either exactly at `at` or at a later point.
        if self.avail_during(at, duration, request):
            return at
        stash: List[ScheduledPoint] = []
        result: Optional[int] = None
        try:
            while True:
                point = self._et.find_earliest(request)
                if point is None:
                    break
                self._et.remove(point)
                stash.append(point)
                if point.time <= at:
                    continue
                if point.time + duration > self.plan_end:
                    continue
                if self.avail_during(point.time, duration, request):
                    result = point.time
                    break
        finally:
            for point in stash:
                self._et.insert(point)
        if obs.enabled:
            obs.metrics.histogram(
                "planner.stash_points",
                "ET-tree points stashed per AVAILAT search",
                boundaries=_STASH_BUCKETS,
            ).observe(len(stash))
        return result

    # ------------------------------------------------------------------
    # span mutation
    # ------------------------------------------------------------------
    def add_span(
        self,
        start: int,
        duration: int,
        request: int,
        metadata: Optional[dict] = None,
        span_id: Optional[int] = None,
    ) -> int:
        """Book ``request`` units over ``[start, start + duration)``.

        Returns the new span id.  Raises :class:`PlannerError` when the span
        falls outside the horizon, the request exceeds the pool, or the
        request is not available throughout the window (the Planner never
        lets a pool go negative).

        ``span_id`` re-inserts a span under an explicit id (crash recovery
        restores planners span-for-span, and external bookkeeping — e.g.
        ``Allocation._span_records`` — must keep resolving).  The id must be
        positive and unused; the auto-assignment counter advances past it so
        later spans never collide.
        """
        self._check_window(start, duration)
        if request < 0:
            raise PlannerError(f"negative request: {request}")
        if request > self.total:
            raise PlannerError(
                f"request {request} exceeds pool total {self.total}"
                f" ({self.resource_type or 'resource'})"
            )
        if span_id is not None:
            if span_id < 1:
                raise PlannerError(f"span id must be >= 1, got {span_id}")
            if span_id in self._spans:
                raise PlannerError(
                    f"span id {span_id} already in use"
                    f" ({self.resource_type or 'resource'})"
                )
        if not self.avail_during(start, duration, request):
            raise PlannerError(
                f"request {request}x[{start},{start + duration}) unavailable"
                f" ({self.resource_type or 'resource'})"
            )
        self._ensure_trees()
        end = start + duration
        start_point = self._get_or_create_point(start)
        end_point = self._get_or_create_point(end)
        start_point.ref_count += 1
        end_point.ref_count += 1
        if request:
            # Lazy iteration is safe: the loop adjusts point values and the
            # ET tree only; the SP tree being iterated is never restructured.
            for point in self._sp.iter_range(start, end):
                self._et.remove(point)
                point.in_use += request
                point.remaining -= request
                self._et.insert(point)
        if span_id is None:
            span_id = self._next_span_id
            self._next_span_id += 1
        else:
            self._next_span_id = max(self._next_span_id, span_id + 1)
        self._spans[span_id] = Span(span_id, start, end, request, metadata or {})
        return span_id

    def rem_span(self, span_id: int) -> Span:
        """Release the span with ``span_id`` and return it."""
        span = self.get_span(span_id)
        if span.request:
            for point in self._sp.iter_range(span.start, span.end):
                self._et.remove(point)
                point.in_use -= span.request
                point.remaining += span.request
                self._et.insert(point)
        self._release_point(span.start)
        self._release_point(span.end)
        del self._spans[span_id]
        return span

    def update_span_end(self, span_id: int, new_end: int) -> Span:
        """Move a span's end to ``new_end`` (extend or truncate), keeping its id.

        Extension checks that the request stays available over the added
        segment; truncation releases the tail immediately.  Returns the
        updated span record.  The span id and start are preserved, so
        callers tracking (planner, span_id) pairs need no changes.
        """
        span = self.get_span(span_id)
        if new_end == span.end:
            return span
        if new_end <= span.start:
            raise PlannerError(
                f"new end {new_end} not after span start {span.start}"
            )
        if new_end > self.plan_end:
            raise PlannerError(
                f"new end {new_end} exceeds horizon end {self.plan_end}"
            )
        request = span.request
        if new_end > span.end:
            # Extension: the added segment must have the request available.
            if not self.avail_during(span.end, new_end - span.end, request):
                raise PlannerError(
                    f"extension [{span.end},{new_end}) unavailable"
                    f" ({self.resource_type or 'resource'})"
                )
            new_point = self._get_or_create_point(new_end)
            new_point.ref_count += 1
            if request:
                for point in self._sp.iter_range(span.end, new_end):
                    self._et.remove(point)
                    point.in_use += request
                    point.remaining -= request
                    self._et.insert(point)
        else:
            # Truncation: release the tail [new_end, old_end).
            new_point = self._get_or_create_point(new_end)
            new_point.ref_count += 1
            if request:
                for point in self._sp.iter_range(new_end, span.end):
                    self._et.remove(point)
                    point.in_use -= request
                    point.remaining += request
                    self._et.insert(point)
        self._release_point(span.end)
        updated = span.replace(end=new_end)
        self._spans[span_id] = updated
        return updated

    def reset(self) -> None:
        """Drop all spans, returning the planner to its initial state."""
        for span_id in list(self._spans):
            self.rem_span(span_id)

    def rebuild(self, spans: Optional[Iterable[dict]] = None) -> int:
        """Reconstruct the point trees (and optionally the span registry).

        Corruption-repair support: discards the scheduled-point/end-time
        trees outright — without walking them, so a damaged tree cannot
        make the rebuild fail — and re-books every span from scratch via
        :meth:`add_span`.  With ``spans=None`` the planner's own span
        registry is the source of truth (repairs point-tree drift while
        keeping bookings); otherwise ``spans`` is an iterable of
        export-format records (``{"id", "start", "end", "request",
        "metadata"}``) that replaces the registry entirely.  The span set
        must be feasible (never exceeding the pool at any instant) or
        :class:`PlannerError` propagates mid-rebuild.  The auto-id counter
        never moves backwards, so ids handed out after a rebuild cannot
        collide with ids seen before it.  Returns the span count re-booked.
        """
        if spans is None:
            records = [
                {
                    "id": span.span_id,
                    "start": span.start,
                    "end": span.end,
                    "request": span.request,
                    "metadata": dict(span.metadata),
                }
                for span in self._spans.values()
            ]
        else:
            records = [dict(record) for record in spans]
        next_id = self._next_span_id
        self._spans = {}
        self._sp = None
        self._et = None
        self._base_point = None
        for record in records:
            self.add_span(
                record["start"],
                record["end"] - record["start"],
                record["request"],
                metadata=dict(record.get("metadata") or {}),
                span_id=record["id"],
            )
        self._next_span_id = max(self._next_span_id, next_id)
        return len(records)

    # ------------------------------------------------------------------
    # state export / import (crash recovery)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Serialise the planner's bookings to a JSON-able mapping.

        The document captures every active span (with its id) plus the
        auto-id counter, so :meth:`import_state` rebuilds a planner whose
        future behaviour — including the ids it will hand out next — is
        identical to this one's.  Pool configuration (total/horizon/type)
        is included for validation only; the importing planner must already
        be configured identically.
        """
        return {
            "total": self.total,
            "plan_start": self.plan_start,
            "plan_end": self.plan_end,
            "resource_type": self.resource_type,
            "next_span_id": self._next_span_id,
            "spans": [
                {
                    "id": span.span_id,
                    "start": span.start,
                    "end": span.end,
                    "request": span.request,
                    "metadata": dict(span.metadata),
                }
                for span in self._spans.values()
            ],
        }

    def import_state(self, state: dict) -> None:
        """Rebuild bookings from :meth:`export_state` output.

        The planner must be empty and configured with the same pool total
        and horizon; spans are re-inserted under their original ids and the
        auto-id counter is restored exactly.
        """
        if self._spans:
            raise PlannerError(
                f"cannot import into a planner holding {len(self._spans)} spans"
            )
        for key, mine in (
            ("total", self.total),
            ("plan_start", self.plan_start),
            ("plan_end", self.plan_end),
        ):
            if state.get(key) != mine:
                raise PlannerError(
                    f"planner state mismatch on {key}: "
                    f"exported {state.get(key)}, importing into {mine}"
                )
        for record in state.get("spans", ()):
            self.add_span(
                record["start"],
                record["end"] - record["start"],
                record["request"],
                metadata=dict(record.get("metadata") or {}),
                span_id=record["id"],
            )
        self._next_span_id = max(
            int(state.get("next_span_id", self._next_span_id)),
            self._next_span_id,
        )

    def resize(self, new_total: int) -> None:
        """Grow or shrink the pool's schedulable quantity (elasticity, §5.5).

        Shrinking below the amount currently in use at any scheduled point
        raises :class:`PlannerError` (existing bookings are never broken).
        """
        if new_total < 0:
            raise PlannerError(f"total must be non-negative, got {new_total}")
        delta = new_total - self.total
        if delta == 0:
            return
        if self._sp is None:
            self.total = new_total
            return
        if delta < 0:
            for point in self._sp:
                if point.in_use > new_total:
                    raise PlannerError(
                        f"cannot shrink to {new_total}: {point.in_use} in use"
                        f" at t={point.time}"
                    )
        for point in list(self._sp):
            self._et.remove(point)
            point.remaining += delta
            self._et.insert(point)
        self.total = new_total

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_time(self, at: int) -> None:
        if not (self.plan_start <= at < self.plan_end):
            raise PlannerError(
                f"time {at} outside horizon [{self.plan_start}, {self.plan_end})"
            )

    def _check_window(self, at: int, duration: int) -> None:
        if duration <= 0:
            raise PlannerError(f"duration must be positive, got {duration}")
        self._check_time(at)
        if at + duration > self.plan_end:
            raise PlannerError(
                f"window [{at}, {at + duration}) exceeds horizon end"
                f" {self.plan_end}"
            )

    def _get_or_create_point(self, time: int) -> ScheduledPoint:
        # A span may legitimately end exactly at the horizon; the end point
        # is created at plan_end (never iterated as part of any window) and
        # its governing state clamps to the last representable tick.
        existing = self._sp.get(time)
        if existing is not None:
            return existing
        governing = self._sp.state_at(min(time, self.plan_end - 1))
        assert governing is not None
        point = ScheduledPoint(time, governing.in_use, governing.remaining)
        self._sp.insert(point)
        self._et.insert(point)
        return point

    def _release_point(self, time: int) -> None:
        point = self._sp.get(time)
        assert point is not None, f"missing scheduled point at t={time}"
        point.ref_count -= 1
        if point.ref_count == 0 and point is not self._base_point:
            self._sp.remove(point)
            self._et.remove(point)

    def check_invariants(self) -> None:
        """Verify tree invariants and point-state consistency (test support)."""
        if self._sp is None:
            assert not self._spans
            return
        self._sp.check_invariants()
        self._et.check_invariants()
        points = list(self._sp)
        assert points and points[0] is self._base_point
        # Recompute in_use at each point from the active spans.
        for point in points:
            expected = sum(
                s.request for s in self._spans.values()
                if s.start <= point.time < s.end
            )
            assert point.in_use == expected, (
                f"in_use mismatch at t={point.time}: "
                f"{point.in_use} != {expected}"
            )
            assert point.remaining == self.total - point.in_use
            assert 0 <= point.in_use <= self.total
        assert len(self._sp) == len(self._et)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Planner(total={self.total}, type={self.resource_type!r}, "
            f"spans={len(self._spans)}, points={self.point_count})"
        )
