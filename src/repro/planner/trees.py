"""The Planner's two index trees (paper §4.1).

* :class:`SPTree` — the *scheduled-point* tree, keyed by time.  Supports the
  ``O(log N)`` time-based queries: the state at time *t* (floor search) and
  in-order iteration over later points.
* :class:`ETTree` — the *earliest-time* resource-augmented tree, keyed by
  ``(remaining, time)`` and augmented with the minimum scheduled time of each
  subtree.  Implements the paper's Algorithm 1 (``FINDEARLIESTAT``): find the
  earliest scheduled point whose remaining resource satisfies a request.

Both are thin, purpose-specific wrappers over :class:`~repro.planner.rbtree.RBTree`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .rbtree import RBNode, RBTree
from .span import ScheduledPoint

__all__ = ["SPTree", "ETTree"]


class SPTree:
    """Scheduled-point tree: maps time -> :class:`ScheduledPoint`."""

    __slots__ = ("_tree",)

    def __init__(self) -> None:
        self._tree = RBTree()

    def __len__(self) -> int:
        return len(self._tree)

    def insert(self, point: ScheduledPoint) -> None:
        """Insert ``point``; a point must be unique in time."""
        self._tree.insert(point.time, point)

    def remove(self, point: ScheduledPoint) -> None:
        """Remove the point scheduled at ``point.time``."""
        self._tree.delete(point.time)

    def get(self, time: int) -> Optional[ScheduledPoint]:
        """Return the point scheduled exactly at ``time``, or None."""
        node = self._tree.find(time)
        return None if node is None else node.value

    def state_at(self, time: int) -> Optional[ScheduledPoint]:
        """Return the point governing ``time`` (largest point time <= time)."""
        node = self._tree.floor(time)
        return None if node is None else node.value

    def first_at_or_after(self, time: int) -> Optional[ScheduledPoint]:
        """Return the earliest point with time >= ``time``, or None."""
        node = self._tree.ceiling(time)
        return None if node is None else node.value

    def iter_from(self, time: int) -> Iterator[ScheduledPoint]:
        """Yield points in time order starting at the first point >= ``time``."""
        node = self._tree.ceiling(time)
        while node is not None:
            yield node.value
            node = self._tree.successor(node)

    def iter_range(self, start: int, end: int) -> Iterator[ScheduledPoint]:
        """Yield points with start <= time < end, in time order."""
        node = self._tree.ceiling(start)
        while node is not None and node.key < end:
            yield node.value
            node = self._tree.successor(node)

    def __iter__(self) -> Iterator[ScheduledPoint]:
        for node in self._tree:
            yield node.value

    def check_invariants(self) -> None:
        self._tree.check_invariants()


def _min_time_augment(node: RBNode) -> int:
    """Earliest scheduled time within the subtree rooted at ``node``."""
    best = node.value.time
    left_aug = node.left.aug
    if left_aug is not None and left_aug < best:
        best = left_aug
    right_aug = node.right.aug
    if right_aug is not None and right_aug < best:
        best = right_aug
    return best


class ETTree:
    """Earliest-time resource-augmented tree (paper Algorithm 1).

    Nodes are keyed by ``(remaining, time)`` so that a binary search on the
    remaining-resource dimension is possible while keeping keys unique.  Each
    node is augmented with the minimum ``time`` in its subtree, enabling the
    ``RIGHTET`` step of Algorithm 1: once a node satisfies the request, the
    node itself *and its entire right subtree* (which has >= remaining) are
    feasible, and the earliest feasible time there is
    ``min(node.time, right_subtree.min_time)``.
    """

    __slots__ = ("_tree",)

    def __init__(self) -> None:
        self._tree = RBTree(augment=_min_time_augment)

    def __len__(self) -> int:
        return len(self._tree)

    @staticmethod
    def _key(point: ScheduledPoint) -> tuple:
        return (point.remaining, point.time)

    def insert(self, point: ScheduledPoint) -> None:
        self._tree.insert(self._key(point), point)

    def remove(self, point: ScheduledPoint) -> None:
        """Remove ``point``; its ``remaining`` must match the value at insert time."""
        self._tree.delete(self._key(point))

    def find_earliest(self, request: int) -> Optional[ScheduledPoint]:
        """Return the scheduled point with the earliest time among those whose
        remaining resource satisfies ``request`` (Algorithm 1), or None.
        """
        tree = self._tree
        nil = tree.nil
        node = tree.root
        earliest_at: Optional[int] = None
        anchor: Optional[RBNode] = None
        while node is not nil:
            point: ScheduledPoint = node.value
            if request <= point.remaining:
                # This node and its whole right subtree satisfy the request.
                right_earliest = point.time
                if node.right is not nil and node.right.aug < right_earliest:
                    right_earliest = node.right.aug
                if earliest_at is None or right_earliest < earliest_at:
                    earliest_at = right_earliest
                    anchor = node
                node = node.left
            else:
                node = node.right
        if anchor is None:
            return None
        return self._find_et_point(anchor, earliest_at)

    def _find_et_point(self, anchor: RBNode, earliest_at: int) -> ScheduledPoint:
        """FINDETPOINT: locate the node with time == earliest_at under anchor.

        The anchor's subtree min-time augmentation guides the descent so the
        walk stays ``O(log N)``.
        """
        nil = self._tree.nil
        node = anchor
        while node is not nil:
            if node.value.time == earliest_at:
                return node.value
            if node.left is not nil and node.left.aug == earliest_at:
                node = node.left
            else:
                node = node.right
        raise AssertionError(  # pragma: no cover - internal invariant
            f"ET tree augmentation inconsistent: time {earliest_at} not found"
        )

    def __iter__(self) -> Iterator[ScheduledPoint]:
        for node in self._tree:
            yield node.value

    def check_invariants(self) -> None:
        self._tree.check_invariants()
