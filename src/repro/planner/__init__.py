"""Planner subsystem: span-based resource/time tracking (paper §4.1).

Public names:

* :class:`Planner` — single-pool time-state tracker (SP + ET trees).
* :class:`PlannerMulti` — lockstep bundle of Planners, one per resource type.
* :class:`Span`, :class:`ScheduledPoint` — the calendar records.
* :class:`RBTree` — the augmented red-black tree substrate.
"""

from .planner import Planner
from .multi import PlannerMulti
from .rbtree import RBNode, RBTree
from .span import ScheduledPoint, Span
from .trees import ETTree, SPTree

__all__ = [
    "Planner",
    "PlannerMulti",
    "RBNode",
    "RBTree",
    "ScheduledPoint",
    "Span",
    "ETTree",
    "SPTree",
]
