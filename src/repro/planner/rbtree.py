"""Augmented red-black tree.

This is the balanced-search-tree substrate beneath the Planner (paper §4.1).
The Planner keeps two of these per resource vertex:

* the *scheduled-point* (SP) tree, keyed by the time of each scheduled point,
  used for time-based queries in ``O(log N)``; and
* the *earliest-time* (ET) tree, keyed by remaining resource quantity and
  augmented with the earliest scheduled time found in each subtree, which
  supports the paper's Algorithm 1 (``FINDEARLIESTAT``).

The implementation follows CLRS chapter 13 with a per-tree NIL sentinel.
Augmentation is expressed as a callback ``augment(node) -> value`` computing
the node's augmented value from ``node.value`` and the (already up-to-date)
augmented values of ``node.left`` / ``node.right``.  The tree re-runs the
callback bottom-up along every path touched by an insert, delete or rotation,
which preserves the classic ``O(log N)`` bounds for augmented queries.

Keys may be any totally-ordered values (ints, tuples, ...).  Duplicate keys
are rejected; callers that need duplicates compose a tiebreaker into the key
(the ET tree keys by ``(remaining, time)`` for exactly this reason).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

__all__ = ["RBNode", "RBTree"]

_RED = True
_BLACK = False


class RBNode:
    """A node of :class:`RBTree`.

    Exposes ``key``, ``value`` and the augmented value ``aug``.  Structure
    fields (``left``/``right``/``parent``/``red``) are maintained by the tree;
    user code should treat them as read-only.
    """

    __slots__ = ("key", "value", "red", "left", "right", "parent", "aug")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.red: bool = _RED
        self.left: "RBNode" = None  # type: ignore[assignment]
        self.right: "RBNode" = None  # type: ignore[assignment]
        self.parent: "RBNode" = None  # type: ignore[assignment]
        self.aug: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        color = "R" if self.red else "B"
        return f"RBNode({self.key!r}, {self.value!r}, {color}, aug={self.aug!r})"


class RBTree:
    """A red-black tree with optional subtree augmentation.

    Parameters
    ----------
    augment:
        Optional callback computing a node's augmented value.  It receives the
        node and must combine ``node.value`` with ``node.left.aug`` and
        ``node.right.aug``; children that are the NIL sentinel can be detected
        with :meth:`is_nil` or by their ``aug`` being ``None`` (the sentinel's
        augmented value is always ``None``).
    """

    __slots__ = ("nil", "root", "_size", "_augment")

    def __init__(self, augment: Optional[Callable[[RBNode], Any]] = None) -> None:
        nil = RBNode(None, None)
        nil.red = _BLACK
        nil.left = nil.right = nil.parent = nil
        self.nil = nil
        self.root: RBNode = nil
        self._size = 0
        self._augment = augment

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def is_nil(self, node: RBNode) -> bool:
        """Return True when ``node`` is this tree's NIL sentinel."""
        return node is self.nil

    def find(self, key: Any) -> Optional[RBNode]:
        """Return the node with exactly ``key``, or None."""
        x = self.root
        while x is not self.nil:
            if key == x.key:
                return x
            x = x.left if key < x.key else x.right
        return None

    def minimum(self) -> Optional[RBNode]:
        """Return the node with the smallest key, or None when empty."""
        if self.root is self.nil:
            return None
        return self._subtree_min(self.root)

    def maximum(self) -> Optional[RBNode]:
        """Return the node with the largest key, or None when empty."""
        if self.root is self.nil:
            return None
        x = self.root
        while x.right is not self.nil:
            x = x.right
        return x

    def floor(self, key: Any) -> Optional[RBNode]:
        """Return the node with the largest key ``<= key``, or None."""
        x = self.root
        best: Optional[RBNode] = None
        while x is not self.nil:
            if x.key == key:
                return x
            if x.key < key:
                best = x
                x = x.right
            else:
                x = x.left
        return best

    def ceiling(self, key: Any) -> Optional[RBNode]:
        """Return the node with the smallest key ``>= key``, or None."""
        x = self.root
        best: Optional[RBNode] = None
        while x is not self.nil:
            if x.key == key:
                return x
            if x.key > key:
                best = x
                x = x.left
            else:
                x = x.right
        return best

    def successor(self, node: RBNode) -> Optional[RBNode]:
        """Return the in-order successor of ``node``, or None."""
        if node.right is not self.nil:
            return self._subtree_min(node.right)
        y = node.parent
        while y is not self.nil and node is y.right:
            node = y
            y = y.parent
        return None if y is self.nil else y

    def predecessor(self, node: RBNode) -> Optional[RBNode]:
        """Return the in-order predecessor of ``node``, or None."""
        if node.left is not self.nil:
            x = node.left
            while x.right is not self.nil:
                x = x.right
            return x
        y = node.parent
        while y is not self.nil and node is y.left:
            node = y
            y = y.parent
        return None if y is self.nil else y

    def __iter__(self) -> Iterator[RBNode]:
        """Iterate nodes in increasing key order (iterative, O(1) extra space)."""
        node = self.minimum()
        while node is not None:
            yield node
            node = self.successor(node)

    def keys(self) -> Iterator[Any]:
        for node in self:
            yield node.key

    def values(self) -> Iterator[Any]:
        for node in self:
            yield node.value

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> RBNode:
        """Insert ``key -> value`` and return the new node.

        Raises ``KeyError`` when the key is already present (the Planner never
        stores duplicate keys; it composes tiebreakers into the key instead).
        """
        y = self.nil
        x = self.root
        while x is not self.nil:
            y = x
            if key == x.key:
                raise KeyError(f"duplicate key: {key!r}")
            x = x.left if key < x.key else x.right
        z = RBNode(key, value)
        z.left = z.right = self.nil
        z.parent = y
        if y is self.nil:
            self.root = z
        elif key < y.key:
            y.left = z
        else:
            y.right = z
        self._size += 1
        self._refresh_up(z)
        self._insert_fixup(z)
        return z

    def delete_node(self, z: RBNode) -> None:
        """Remove ``z`` (a node previously returned by this tree) from the tree."""
        nil = self.nil
        y = z
        y_was_red = y.red
        if z.left is nil:
            x = z.right
            self._transplant(z, z.right)
            refresh_from = x.parent
        elif z.right is nil:
            x = z.left
            self._transplant(z, z.left)
            refresh_from = x.parent
        else:
            y = self._subtree_min(z.right)
            y_was_red = y.red
            x = y.right
            if y.parent is z:
                x.parent = y  # x may be nil; fixup relies on parent pointers
                refresh_from = y
            else:
                refresh_from = y.parent
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.red = z.red
        self._size -= 1
        if refresh_from is not nil:
            self._refresh_up(refresh_from)
        if not y_was_red:
            self._delete_fixup(x)
        z.left = z.right = z.parent = None  # type: ignore[assignment]

    def delete(self, key: Any) -> Any:
        """Remove the node with ``key`` and return its value; KeyError if absent."""
        node = self.find(key)
        if node is None:
            raise KeyError(key)
        value = node.value
        self.delete_node(node)
        return value

    def refresh(self, node: RBNode) -> None:
        """Recompute augmented data from ``node`` to the root.

        Call after mutating ``node.value`` in a way that changes the augmented
        value but not the key.
        """
        self._refresh_up(node)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _subtree_min(self, x: RBNode) -> RBNode:
        while x.left is not self.nil:
            x = x.left
        return x

    def _refresh_one(self, node: RBNode) -> None:
        if self._augment is not None and node is not self.nil:
            node.aug = self._augment(node)

    def _refresh_up(self, node: RBNode) -> None:
        if self._augment is None:
            return
        while node is not self.nil:
            node.aug = self._augment(node)
            node = node.parent

    def _left_rotate(self, x: RBNode) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self.nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y
        self._refresh_one(x)
        self._refresh_one(y)

    def _right_rotate(self, x: RBNode) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self.nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y
        self._refresh_one(x)
        self._refresh_one(y)

    def _transplant(self, u: RBNode, v: RBNode) -> None:
        if u.parent is self.nil:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _insert_fixup(self, z: RBNode) -> None:
        while z.parent.red:
            gp = z.parent.parent
            if z.parent is gp.left:
                y = gp.right
                if y.red:
                    z.parent.red = _BLACK
                    y.red = _BLACK
                    gp.red = _RED
                    z = gp
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._left_rotate(z)
                    z.parent.red = _BLACK
                    z.parent.parent.red = _RED
                    self._right_rotate(z.parent.parent)
            else:
                y = gp.left
                if y.red:
                    z.parent.red = _BLACK
                    y.red = _BLACK
                    gp.red = _RED
                    z = gp
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._right_rotate(z)
                    z.parent.red = _BLACK
                    z.parent.parent.red = _RED
                    self._left_rotate(z.parent.parent)
        self.root.red = _BLACK

    def _delete_fixup(self, x: RBNode) -> None:
        while x is not self.root and not x.red:
            if x is x.parent.left:
                w = x.parent.right
                if w.red:
                    w.red = _BLACK
                    x.parent.red = _RED
                    self._left_rotate(x.parent)
                    w = x.parent.right
                if not w.left.red and not w.right.red:
                    w.red = _RED
                    x = x.parent
                else:
                    if not w.right.red:
                        w.left.red = _BLACK
                        w.red = _RED
                        self._right_rotate(w)
                        w = x.parent.right
                    w.red = x.parent.red
                    x.parent.red = _BLACK
                    w.right.red = _BLACK
                    self._left_rotate(x.parent)
                    x = self.root
            else:
                w = x.parent.left
                if w.red:
                    w.red = _BLACK
                    x.parent.red = _RED
                    self._right_rotate(x.parent)
                    w = x.parent.left
                if not w.right.red and not w.left.red:
                    w.red = _RED
                    x = x.parent
                else:
                    if not w.left.red:
                        w.right.red = _BLACK
                        w.red = _RED
                        self._left_rotate(w)
                        w = x.parent.left
                    w.red = x.parent.red
                    x.parent.red = _BLACK
                    w.left.red = _BLACK
                    self._right_rotate(x.parent)
                    x = self.root
        x.red = _BLACK

    # ------------------------------------------------------------------
    # invariant checking (used by tests; cheap enough for property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify red-black and BST invariants; raise AssertionError on breakage."""
        nil = self.nil
        assert not self.root.red, "root must be black"
        assert not nil.red, "sentinel must be black"

        def walk(node: RBNode, lo: Any, hi: Any) -> int:
            if node is nil:
                return 1
            assert lo is None or node.key > lo, "BST order violated (left)"
            assert hi is None or node.key < hi, "BST order violated (right)"
            if node.red:
                assert not node.left.red and not node.right.red, (
                    "red node has red child"
                )
            lh = walk(node.left, lo, node.key)
            rh = walk(node.right, node.key, hi)
            assert lh == rh, "black-height mismatch"
            if self._augment is not None:
                assert node.aug == self._augment(node), "stale augmentation"
            return lh + (0 if node.red else 1)

        walk(self.root, None, None)
        count = sum(1 for _ in self)
        assert count == self._size, f"size mismatch: {count} != {self._size}"
