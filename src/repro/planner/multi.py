"""PlannerMulti: joint time tracking for several resource types (paper §4.1).

The paper's pruning filters keep "aggregate amounts of available lower-level
resources" per high-level vertex; a filter tracks one Planner per tracked
resource type and books/queries them together.  The root filter additionally
drives reservation scheduling through ``avail_time_first`` — the paper's
``PlannerMultiAvailTimeFirst`` — which iteratively advances a candidate time
until every tracked type can satisfy its requested amount for the duration.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..errors import PlannerError, SpanNotFoundError
from ..obs import runtime as _obs_runtime
from .planner import Planner

__all__ = ["PlannerMulti"]

#: restart-count buckets for the ``planner.restart_iters`` histogram
_RESTART_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


class PlannerMulti:
    """A bundle of Planners, one per resource type, booked in lockstep.

    Parameters
    ----------
    totals:
        Mapping of resource type -> schedulable quantity.
    plan_start, plan_end:
        Shared planning horizon.
    """

    __slots__ = ("_planners", "plan_start", "plan_end", "_spans", "_next_span_id")

    def __init__(
        self,
        totals: Mapping[str, int],
        plan_start: int = 0,
        plan_end: int = 2**62,
    ) -> None:
        self.plan_start = plan_start
        self.plan_end = plan_end
        self._planners: Dict[str, Planner] = {
            rtype: Planner(total, plan_start, plan_end, resource_type=rtype)
            for rtype, total in totals.items()
        }
        # span id -> {type: per-planner span id}
        self._spans: Dict[int, Dict[str, int]] = {}
        self._next_span_id = 1

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def types(self) -> Tuple[str, ...]:
        """Tracked resource types, in insertion order."""
        return tuple(self._planners)

    def planner(self, rtype: str) -> Planner:
        """Return the underlying Planner for ``rtype``."""
        try:
            return self._planners[rtype]
        except KeyError:
            raise PlannerError(f"untracked resource type: {rtype!r}") from None

    def tracks(self, rtype: str) -> bool:
        """True when this bundle tracks ``rtype``."""
        return rtype in self._planners

    def total(self, rtype: str) -> int:
        return self.planner(rtype).total

    def add_type(self, rtype: str, total: int) -> None:
        """Start tracking a new resource type (used by elastic graph updates)."""
        if rtype in self._planners:
            raise PlannerError(f"type already tracked: {rtype!r}")
        self._planners[rtype] = Planner(
            total, self.plan_start, self.plan_end, resource_type=rtype
        )

    def resize(self, rtype: str, new_total: int) -> None:
        """Adjust the schedulable total of one tracked type."""
        self.planner(rtype).resize(new_total)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def avail_at(self, at: int, counts: Mapping[str, int]) -> bool:
        """True when every requested type has its count available at ``at``.

        Types absent from this bundle are ignored: a filter only prunes on
        what it tracks (paper §3.4).
        """
        return all(
            self._planners[rtype].avail_at(at, count)
            for rtype, count in counts.items()
            if rtype in self._planners and count
        )

    def avail_during(self, at: int, duration: int, counts: Mapping[str, int]) -> bool:
        """True when every requested type stays available over the window."""
        return all(
            self._planners[rtype].avail_during(at, duration, count)
            for rtype, count in counts.items()
            if rtype in self._planners and count
        )

    def avail_resources_during(self, at: int, duration: int) -> Dict[str, int]:
        """Minimum availability per tracked type over the window."""
        return {
            rtype: planner.avail_resources_during(at, duration)
            for rtype, planner in self._planners.items()
        }

    def next_event_time(self, after: int) -> Optional[int]:
        """Earliest time strictly after ``after`` at which any tracked
        type's availability changes (None when nothing changes again)."""
        events = [
            t
            for t in (
                planner.next_event_time(after)
                for planner in self._planners.values()
            )
            if t is not None
        ]
        return min(events) if events else None

    def avail_time_first(
        self,
        counts: Mapping[str, int],
        duration: int = 1,
        on_or_after: int = 0,
    ) -> Optional[int]:
        """Earliest time every requested type is simultaneously available
        for ``duration`` ticks (PlannerMultiAvailTimeFirst), or None.

        Starting from ``on_or_after``, each tracked type proposes its own
        earliest fit; whenever a type pushes the candidate later, the scan
        restarts from the pushed time.  The candidate advances monotonically
        so the loop terminates (it is bounded by the number of scheduled
        points across the bundle).
        """
        obs = _obs_runtime.ACTIVE.get()
        if not obs.enabled:
            return self._avail_search(counts, duration, on_or_after)[0]
        with obs.tracer.span(
            "planner.avail_time_first", "planner", vt=float(on_or_after),
            types=len(counts),
        ) as handle:
            result, restarts = self._avail_search(counts, duration, on_or_after)
            handle.event["args"]["restarts"] = restarts
            handle.event["args"]["found"] = result is not None
        obs.metrics.counter(
            "planner.multi_queries", "PlannerMultiAvailTimeFirst calls"
        ).inc()
        obs.metrics.histogram(
            "planner.restart_iters",
            "candidate-time restarts per multi query",
            boundaries=_RESTART_BUCKETS,
        ).observe(restarts)
        return result

    def _avail_search(
        self,
        counts: Mapping[str, int],
        duration: int,
        on_or_after: int,
    ) -> "Tuple[Optional[int], int]":
        """The restart loop; returns (earliest time or None, restart count)."""
        relevant = [
            (rtype, count)
            for rtype, count in counts.items()
            if rtype in self._planners and count
        ]
        at = max(on_or_after, self.plan_start)
        restarts = 0
        if not relevant:
            return (at if at + duration <= self.plan_end else None), restarts
        while True:
            moved = False
            for rtype, count in relevant:
                t = self._planners[rtype].avail_time_first(count, duration, at)
                if t is None:
                    return None, restarts
                if t > at:
                    at = t
                    moved = True
            if not moved:
                return at, restarts
            restarts += 1

    # ------------------------------------------------------------------
    # span mutation
    # ------------------------------------------------------------------
    def add_span(
        self,
        start: int,
        duration: int,
        counts: Mapping[str, int],
        span_id: Optional[int] = None,
    ) -> int:
        """Book ``counts`` over ``[start, start + duration)`` across the bundle.

        All-or-nothing: if any type cannot be booked, previously booked types
        are rolled back and :class:`PlannerError` propagates.  Types absent
        from the bundle are ignored; zero counts are skipped.  ``span_id``
        re-inserts the bundle span under an explicit id (crash recovery);
        it must be positive and unused.
        """
        if span_id is not None:
            if span_id < 1:
                raise PlannerError(f"span id must be >= 1, got {span_id}")
            if span_id in self._spans:
                raise PlannerError(f"bundle span id {span_id} already in use")
        booked: Dict[str, int] = {}
        try:
            for rtype, count in counts.items():
                if rtype in self._planners and count:
                    booked[rtype] = self._planners[rtype].add_span(
                        start, duration, count
                    )
        except PlannerError:
            for rtype, sid in booked.items():
                self._planners[rtype].rem_span(sid)
            raise
        if span_id is None:
            span_id = self._next_span_id
            self._next_span_id += 1
        else:
            self._next_span_id = max(self._next_span_id, span_id + 1)
        self._spans[span_id] = booked
        return span_id

    def update_span_end(self, span_id: int, new_end: int) -> None:
        """Move a bundle span's end across every booked type, all-or-nothing."""
        try:
            booked = self._spans[span_id]
        except KeyError:
            raise SpanNotFoundError(span_id) from None
        done = []
        try:
            for rtype, sid in booked.items():
                planner = self._planners[rtype]
                old_end = planner.get_span(sid).end
                planner.update_span_end(sid, new_end)
                done.append((planner, sid, old_end))
        except PlannerError:
            for planner, sid, old_end in done:
                planner.update_span_end(sid, old_end)
            raise

    def rem_span(self, span_id: int) -> None:
        """Release a bundle span previously returned by :meth:`add_span`."""
        try:
            booked = self._spans.pop(span_id)
        except KeyError:
            raise SpanNotFoundError(span_id) from None
        for rtype, sid in booked.items():
            self._planners[rtype].rem_span(sid)

    def reset(self) -> None:
        """Drop all bundle spans."""
        for span_id in list(self._spans):
            self.rem_span(span_id)

    def rebuild(self, bundles: Optional[Iterable[dict]] = None) -> int:
        """Reconstruct per-type point trees (and optionally the registry).

        Corruption-repair support.  With ``bundles=None`` every underlying
        planner rebuilds its trees from its own span registry (repairs
        point-tree drift while keeping bookings).  Otherwise ``bundles`` is
        an iterable of ``{"id", "start", "end", "counts"}`` records that
        replaces the bundle registry entirely: the underlying planners are
        wiped and every bundle re-booked through :meth:`add_span`.  Bundle
        ids are preserved; per-type span ids are freshly assigned.  Neither
        the bundle nor the per-type auto-id counters move backwards.
        Returns the number of bundle spans booked.
        """
        if bundles is None:
            for planner in self._planners.values():
                planner.rebuild()
            return len(self._spans)
        records = [dict(record) for record in bundles]
        next_id = self._next_span_id
        self._spans = {}
        for planner in self._planners.values():
            planner.rebuild(spans=())
        for record in records:
            self.add_span(
                record["start"],
                record["end"] - record["start"],
                dict(record["counts"]),
                span_id=record["id"],
            )
        self._next_span_id = max(self._next_span_id, next_id)
        return len(records)

    # ------------------------------------------------------------------
    # state export / import (crash recovery)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Serialise the bundle: per-type planner states plus the bundle
        span-id mapping, so :meth:`import_state` restores both the bookings
        and the exact ids future ``add_span`` calls will hand out."""
        return {
            "plan_start": self.plan_start,
            "plan_end": self.plan_end,
            "next_span_id": self._next_span_id,
            "planners": {
                rtype: planner.export_state()
                for rtype, planner in self._planners.items()
            },
            "spans": {
                str(sid): dict(booked) for sid, booked in self._spans.items()
            },
        }

    def import_state(self, state: dict) -> None:
        """Rebuild from :meth:`export_state` output.

        The bundle must be empty and track the same types with the same
        totals (the recovery layer re-installs pruning filters from the
        graph document before importing their bookings).
        """
        if self._spans:
            raise PlannerError(
                f"cannot import into a bundle holding {len(self._spans)} spans"
            )
        exported = state.get("planners") or {}
        if set(exported) != set(self._planners):
            raise PlannerError(
                f"bundle type mismatch: exported {sorted(exported)}, "
                f"importing into {sorted(self._planners)}"
            )
        for rtype, planner_state in exported.items():
            self._planners[rtype].import_state(planner_state)
        self._spans = {
            int(sid): {str(t): int(per) for t, per in booked.items()}
            for sid, booked in (state.get("spans") or {}).items()
        }
        self._next_span_id = max(
            int(state.get("next_span_id", self._next_span_id)),
            self._next_span_id,
        )

    @property
    def span_count(self) -> int:
        return len(self._spans)

    def has_span(self, span_id: int) -> bool:
        """True when ``span_id`` names an active bundle span."""
        return span_id in self._spans

    def span_ids(self) -> Tuple[int, ...]:
        """Active bundle span ids, in booking order."""
        return tuple(self._spans)

    def get_span(self, span_id: int) -> Dict[str, int]:
        """The per-type planner span ids booked under bundle ``span_id``."""
        try:
            return dict(self._spans[span_id])
        except KeyError:
            raise SpanNotFoundError(span_id) from None

    def check_invariants(self) -> None:
        for planner in self._planners.values():
            planner.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        totals = {t: p.total for t, p in self._planners.items()}
        return f"PlannerMulti({totals}, spans={len(self._spans)})"
