"""Scheduled points and spans — the Planner's time-line records (paper §4.1).

A *span* marks an activity on the planner's calendar: ``request`` units of the
resource are in use from ``start`` (inclusive) to ``end`` (exclusive).  Adding
a span materialises two *scheduled points*, one at each boundary; every
scheduled point records the amount of resource in use — and remaining — from
its time until the next scheduled point.
"""

from __future__ import annotations

__all__ = ["ScheduledPoint", "Span"]


class ScheduledPoint:
    """A time point at which the planner's resource state changes.

    Attributes
    ----------
    time:
        The scheduled time (integer ticks).
    in_use:
        Resource units allocated during ``[time, next_point.time)``.
    remaining:
        Resource units still available during that interval
        (``planner.total - in_use``).
    ref_count:
        Number of spans whose start or end boundary is this point.  A point
        whose ref count drops to zero carries no information (its state equals
        its predecessor's) and is removed from both trees.
    """

    __slots__ = ("time", "in_use", "remaining", "ref_count")

    def __init__(self, time: int, in_use: int, remaining: int, ref_count: int = 0):
        self.time = time
        self.in_use = in_use
        self.remaining = remaining
        self.ref_count = ref_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ScheduledPoint(t={self.time}, in_use={self.in_use}, "
            f"remaining={self.remaining}, refs={self.ref_count})"
        )


class Span:
    """An allocation of ``request`` units over ``[start, end)``.

    Spans are identified by the integer ``span_id`` the Planner hands back
    from :meth:`~repro.planner.Planner.add_span`.  Treated as immutable:
    updates go through :meth:`replace` (slotted plain class rather than a
    dataclass — planners materialise one per booking on the match hot path,
    and ``__slots__`` drops the per-instance dict; PRF003).
    """

    __slots__ = ("span_id", "start", "end", "request", "metadata")

    def __init__(
        self,
        span_id: int,
        start: int,
        end: int,
        request: int,
        metadata: dict = None,
    ) -> None:
        self.span_id = span_id
        self.start = start
        self.end = end
        self.request = request
        self.metadata = {} if metadata is None else metadata

    def replace(self, **changes: object) -> "Span":
        """A copy with ``changes`` applied (dataclasses.replace equivalent)."""
        fields = {
            "span_id": self.span_id,
            "start": self.start,
            "end": self.end,
            "request": self.request,
            "metadata": self.metadata,
        }
        unknown = set(changes) - set(fields)
        if unknown:
            raise TypeError(f"unexpected span field(s): {sorted(unknown)}")
        fields.update(changes)
        return Span(**fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        # metadata is carried, not compared — matching the original
        # dataclass's compare=False field.
        return (
            self.span_id == other.span_id
            and self.start == other.start
            and self.end == other.end
            and self.request == other.request
        )

    def __hash__(self) -> int:
        return hash((self.span_id, self.start, self.end, self.request))

    def __repr__(self) -> str:
        return (
            f"Span(span_id={self.span_id}, start={self.start}, "
            f"end={self.end}, request={self.request}, "
            f"metadata={self.metadata})"
        )

    @property
    def duration(self) -> int:
        """Length of the span in ticks."""
        return self.end - self.start

    def overlaps(self, at: int, duration: int = 1) -> bool:
        """True when this span intersects the half-open window [at, at+duration)."""
        return self.start < at + duration and at < self.end
