"""Scheduled points and spans — the Planner's time-line records (paper §4.1).

A *span* marks an activity on the planner's calendar: ``request`` units of the
resource are in use from ``start`` (inclusive) to ``end`` (exclusive).  Adding
a span materialises two *scheduled points*, one at each boundary; every
scheduled point records the amount of resource in use — and remaining — from
its time until the next scheduled point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ScheduledPoint", "Span"]


class ScheduledPoint:
    """A time point at which the planner's resource state changes.

    Attributes
    ----------
    time:
        The scheduled time (integer ticks).
    in_use:
        Resource units allocated during ``[time, next_point.time)``.
    remaining:
        Resource units still available during that interval
        (``planner.total - in_use``).
    ref_count:
        Number of spans whose start or end boundary is this point.  A point
        whose ref count drops to zero carries no information (its state equals
        its predecessor's) and is removed from both trees.
    """

    __slots__ = ("time", "in_use", "remaining", "ref_count")

    def __init__(self, time: int, in_use: int, remaining: int, ref_count: int = 0):
        self.time = time
        self.in_use = in_use
        self.remaining = remaining
        self.ref_count = ref_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ScheduledPoint(t={self.time}, in_use={self.in_use}, "
            f"remaining={self.remaining}, refs={self.ref_count})"
        )


@dataclass(frozen=True)
class Span:
    """An allocation of ``request`` units over ``[start, end)``.

    Spans are identified by the integer ``span_id`` the Planner hands back
    from :meth:`~repro.planner.Planner.add_span`.
    """

    span_id: int
    start: int
    end: int
    request: int
    metadata: dict = field(default_factory=dict, compare=False)

    @property
    def duration(self) -> int:
        """Length of the span in ticks."""
        return self.end - self.start

    def overlaps(self, at: int, duration: int = 1) -> bool:
        """True when this span intersects the half-open window [at, at+duration)."""
        return self.start < at + duration and at < self.end
