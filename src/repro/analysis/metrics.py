"""Schedule analysis: utilization timelines, slowdowns, ASCII Gantt charts.

Utility layer over simulation results and resource graphs, used by the
benchmark harness and the examples to quantify schedules (the paper reports
scheduling *overhead*; these metrics cover schedule *quality*, which the
queue-policy tests assert on).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..resource import ResourceGraph
from ..sched import Job, JobState, SimulationReport

__all__ = [
    "utilization_timeline",
    "average_utilization",
    "bounded_slowdowns",
    "ascii_gantt",
]


def utilization_timeline(
    graph: ResourceGraph, rtype: str
) -> List[Tuple[int, int, int]]:
    """Exact (time, in_use, total) steps for one resource type.

    Walks every span booked on every ``rtype`` vertex and builds the event
    profile; consecutive entries describe half-open intervals
    ``[t_i, t_{i+1})``.  An empty graph (no bookings) yields a single step at
    the plan start with zero use.
    """
    total = sum(v.size for v in graph.vertices(rtype))
    deltas: Dict[int, int] = defaultdict(int)
    for vertex in graph.vertices(rtype):
        for span in vertex.plans.spans():
            deltas[span.start] += span.request
            deltas[span.end] -= span.request
    if not deltas:
        return [(graph.plan_start, 0, total)]
    timeline = []
    in_use = 0
    for t in sorted(deltas):
        in_use += deltas[t]
        timeline.append((t, in_use, total))
    return timeline


def average_utilization(
    graph: ResourceGraph, rtype: str, start: int, end: int
) -> float:
    """Time-weighted mean utilization of ``rtype`` over ``[start, end)``."""
    if end <= start:
        raise ValueError(f"empty window [{start}, {end})")
    timeline = utilization_timeline(graph, rtype)
    total = timeline[0][2]
    if total == 0:
        return 0.0
    area = 0
    for i, (t, in_use, _) in enumerate(timeline):
        seg_start = max(t, start)
        seg_end = end if i + 1 == len(timeline) else min(timeline[i + 1][0], end)
        if seg_start < seg_end:
            area += in_use * (seg_end - seg_start)
    # Portion before the first event is idle and contributes zero.
    return area / (total * (end - start))


def bounded_slowdowns(
    report: SimulationReport, bound: int = 10
) -> List[float]:
    """Bounded slowdown per started job: ``(wait + run) / max(run, bound)``."""
    out = []
    for job in report.jobs:
        if job.wait_time is None:
            continue
        run = job.jobspec.duration
        out.append((job.wait_time + run) / max(run, bound))
    return out


def ascii_gantt(
    jobs: Sequence[Job],
    width: int = 60,
    until: Optional[int] = None,
) -> str:
    """Render planned job windows as an ASCII Gantt chart.

    Each row is one job; ``#`` marks its ``[start, end)`` window scaled onto
    ``width`` columns.  Jobs without an allocation render as pending.
    """
    placed = [j for j in jobs if j.start_time is not None]
    if not placed:
        return "(no placed jobs)"
    horizon = until if until is not None else max(j.end_time for j in placed)
    horizon = max(horizon, 1)
    lines = [f"t=0 {'.' * width} t={horizon}"]
    for job in jobs:
        if job.start_time is None:
            lines.append(f"job{job.job_id:<4} (pending)")
            continue
        lo = min(int(job.start_time / horizon * width), width - 1)
        hi = max(min(int(job.end_time / horizon * width), width), lo + 1)
        bar = " " * lo + "#" * (hi - lo) + " " * (width - hi)
        state = job.state.value[0].upper()
        lines.append(f"job{job.job_id:<4} |{bar}| {state}")
    return "\n".join(lines)
