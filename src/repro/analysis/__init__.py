"""Schedule analysis utilities: utilization, slowdowns, Gantt rendering."""

from .export import event_log_to_csv, report_to_csv, rows_to_csv
from .metrics import (
    ascii_gantt,
    average_utilization,
    bounded_slowdowns,
    utilization_timeline,
)

__all__ = [
    "ascii_gantt",
    "event_log_to_csv",
    "report_to_csv",
    "rows_to_csv",
    "average_utilization",
    "bounded_slowdowns",
    "utilization_timeline",
]
