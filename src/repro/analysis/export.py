"""CSV export of simulation results and benchmark rows.

The benchmark harness regenerates the paper's tables as text; these helpers
write the same data as CSV so downstream plotting (outside this offline
environment) can redraw the figures.
"""

from __future__ import annotations

import csv
from typing import Iterable, List, Mapping, Sequence

from ..sched import SimulationReport

__all__ = ["report_to_csv", "rows_to_csv", "event_log_to_csv"]


def report_to_csv(report: SimulationReport, path: str) -> int:
    """Write one row per job (id, name, priority, state, times); returns the
    row count."""
    fields = [
        "job_id", "name", "priority", "state", "submit_time",
        "start_time", "end_time", "wait_time", "sched_time_s", "nnodes",
    ]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for job in report.jobs:
            writer.writerow(
                {
                    "job_id": job.job_id,
                    "name": job.name,
                    "priority": job.priority,
                    "state": job.state.value,
                    "submit_time": job.submit_time,
                    "start_time": job.start_time,
                    "end_time": job.end_time,
                    "wait_time": job.wait_time,
                    "sched_time_s": round(job.sched_time, 6),
                    "nnodes": len(job.allocation.nodes())
                    if job.allocation else 0,
                }
            )
    return len(report.jobs)


def rows_to_csv(rows: Sequence[Mapping], path: str) -> int:
    """Write a list of uniform dict rows (e.g. harness output) as CSV."""
    if not rows:
        raise ValueError("no rows to write")
    fields = list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def event_log_to_csv(event_log: Iterable[tuple], path: str) -> int:
    """Write a simulator event log ((time, event, job_id) tuples) as CSV."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "event", "job_id"])
        for time, event, job_id in event_log:
            writer.writerow([time, event, job_id])
            count += 1
    return count
