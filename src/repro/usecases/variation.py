"""Performance-variability-aware scheduling study (paper §5.2, §6.3).

The paper profiles every node of the quartz cluster with two benchmarks (NAS
MG class C and LULESH) under a 50 W socket power cap, observes 2.47x (MG) and
1.91x (LULESH) spread between the slowest and fastest node, combines the two
median times into a normalised score per node, and bins nodes into five
performance classes by score percentile (Eq. 1).  A variation-aware match
policy then keeps each job's ranks within as few classes as possible; the
*figure of merit* of a job is the class spread of its allocated nodes
(Eq. 2, 0 = no variation).

We do not have the quartz dataset (production data), so
:func:`synthetic_node_scores` generates per-node benchmark times from a
lognormal model calibrated to the same max/min spreads; everything downstream
(Eq. 1 binning, Eq. 2 scoring, the policy itself) follows the paper exactly
and only consumes the binned classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..match import Allocation
from ..resource import ResourceGraph, ResourceVertex

__all__ = [
    "EQ1_BOUNDARIES",
    "MG_SPREAD",
    "LULESH_SPREAD",
    "NodeScores",
    "synthetic_node_scores",
    "performance_classes",
    "class_histogram",
    "assign_perf_classes",
    "figure_of_merit",
    "fom_histogram",
]

#: Eq. 1 percentile boundaries: class 1 = top 10%, 2 = 10-25%, 3 = 25-40%,
#: 4 = 40-60%, 5 = bottom 40%.
EQ1_BOUNDARIES: Tuple[float, ...] = (0.10, 0.25, 0.40, 0.60, 1.0)

#: Slowest/fastest ratios the paper measured on quartz (§6.3).
MG_SPREAD = 2.47
LULESH_SPREAD = 1.91


@dataclass(frozen=True)
class NodeScores:
    """Per-node benchmark results (medians over repetitions)."""

    mg: np.ndarray
    lulesh: np.ndarray

    def __post_init__(self) -> None:
        if self.mg.shape != self.lulesh.shape:
            raise ValueError("benchmark arrays must align")

    @property
    def n_nodes(self) -> int:
        return int(self.mg.shape[0])

    def combined(self) -> np.ndarray:
        """Combined time score per node: mean of per-benchmark normalised
        times (each scaled to [0, 1] across the cluster)."""

        def normalise(times: np.ndarray) -> np.ndarray:
            lo, hi = times.min(), times.max()
            if hi == lo:
                return np.zeros_like(times)
            return (times - lo) / (hi - lo)

        return (normalise(self.mg) + normalise(self.lulesh)) / 2.0


def synthetic_node_scores(
    n_nodes: int = 2418,
    seed: int = 2023,
    mg_spread: float = MG_SPREAD,
    lulesh_spread: float = LULESH_SPREAD,
    repetitions: int = 5,
) -> NodeScores:
    """Generate per-node benchmark medians with the paper's observed spreads.

    Each node gets an intrinsic (lognormal) inefficiency factor — the shape
    manufacturing variation takes under a power cap [Inadomi et al.] — plus
    small run-to-run noise; medians over ``repetitions`` runs are reported
    and each benchmark is rescaled so max/min equals the published spread.
    """
    rng = np.random.default_rng(seed)
    intrinsic = rng.lognormal(mean=0.0, sigma=0.25, size=n_nodes)

    def benchmark(base_time: float, spread: float, sensitivity: float) -> np.ndarray:
        runs = base_time * intrinsic[None, :] ** sensitivity * rng.lognormal(
            0.0, 0.01, size=(repetitions, n_nodes)
        )
        med = np.median(runs, axis=0)
        # Rescale multiplicatively so max/min hits the published ratio.
        lo, hi = med.min(), med.max()
        exponent = np.log(spread) / np.log(hi / lo)
        return med**exponent

    mg = benchmark(base_time=40.0, spread=mg_spread, sensitivity=1.0)
    lulesh = benchmark(base_time=90.0, spread=lulesh_spread, sensitivity=0.8)
    return NodeScores(mg=mg, lulesh=lulesh)


def performance_classes(
    scores: NodeScores,
    boundaries: Sequence[float] = EQ1_BOUNDARIES,
) -> Dict[int, int]:
    """Bin nodes into performance classes per Eq. 1.

    ``t_norm`` is each node's percentile rank of the combined time score
    (faster nodes rank lower); class ``p`` is the first boundary bucket the
    rank falls into.  Returns node index -> class (1-based).
    """
    combined = scores.combined()
    order = np.argsort(combined, kind="stable")
    n = len(order)
    classes: Dict[int, int] = {}
    for rank, node_idx in enumerate(order):
        t_norm = (rank + 1) / n
        for class_id, bound in enumerate(boundaries, start=1):
            if t_norm <= bound + 1e-12:
                classes[int(node_idx)] = class_id
                break
    return classes


def class_histogram(classes: Mapping[int, int], n_classes: int = 5) -> List[int]:
    """Count nodes per class (Fig 7a)."""
    hist = [0] * n_classes
    for class_id in classes.values():
        hist[class_id - 1] += 1
    return hist


def assign_perf_classes(
    graph: ResourceGraph,
    classes: Mapping[int, int],
    property_name: str = "perf_class",
) -> int:
    """Attach classes to the graph's node vertices (by node id); returns how
    many nodes were tagged."""
    tagged = 0
    for vertex in graph.vertices("node"):
        if vertex.id in classes:
            vertex.properties[property_name] = classes[vertex.id]
            tagged += 1
    return tagged


def figure_of_merit(
    nodes: Iterable[ResourceVertex], property_name: str = "perf_class"
) -> int:
    """Eq. 2: ``max(P_j) - min(P_j)`` over the job's allocated nodes."""
    values = [v.properties.get(property_name, 0) for v in nodes]
    if not values:
        return 0
    return max(values) - min(values)


def fom_histogram(
    allocations: Iterable[Allocation],
    n_classes: int = 5,
    property_name: str = "perf_class",
) -> List[int]:
    """Count jobs per figure-of-merit value 0..n_classes-1 (Table 1 / Fig 8)."""
    hist = [0] * n_classes
    for alloc in allocations:
        fom = figure_of_merit(alloc.nodes(), property_name)
        hist[min(fom, n_classes - 1)] += 1
    return hist
