"""Converged computing: a mini container orchestrator with a Fluxion plugin
(paper §5.3).

Kubernetes' resource model is "simplistic in comparison to the sophisticated
expression capabilities of Fluxion"; Fluence plugs Fluxion into Kubernetes'
scheduler-plugin interface to give MPI workloads HPC-grade placement.  This
module reproduces that architecture in miniature:

* :class:`MiniOrchestrator` — a declarative pod orchestrator whose node model
  is a flat list of capacities (the Kubernetes-style baseline);
* :class:`DefaultScheduler` — filter-and-score, one pod at a time, no notion
  of gangs or topology;
* :class:`FluxionPlugin` — the same scheduler interface backed by a resource
  graph + traverser; pod *groups* are matched all-or-nothing through a single
  jobspec (gang scheduling) with topology awareness for free.

The separation of concerns (§3.5) is what makes the plugin tiny: it only
translates pods to jobspecs and back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import SchedulerError
from ..jobspec import Jobspec, ResourceRequest, slot
from ..match import Traverser
from ..resource import ResourceGraph

__all__ = [
    "PodSpec",
    "Placement",
    "MiniOrchestrator",
    "DefaultScheduler",
    "FluxionPlugin",
]


@dataclass(frozen=True)
class PodSpec:
    """A container pod's resource request."""

    name: str
    cpus: int = 1
    memory_gb: int = 1
    gpus: int = 0


@dataclass
class Placement:
    """Where pods landed: pod name -> node name."""

    bindings: Dict[str, str] = field(default_factory=dict)

    def nodes(self) -> List[str]:
        return sorted(set(self.bindings.values()))


class SchedulerPlugin:
    """The orchestrator's pluggable scheduling interface."""

    def schedule_group(
        self, orchestrator: "MiniOrchestrator", pods: Sequence[PodSpec]
    ) -> Optional[Placement]:
        raise NotImplementedError

    def unschedule(self, orchestrator: "MiniOrchestrator", placement: Placement) -> None:
        raise NotImplementedError


class MiniOrchestrator:
    """A tiny declarative pod orchestrator with swappable schedulers."""

    def __init__(
        self,
        nodes: int = 4,
        cpus_per_node: int = 8,
        memory_gb_per_node: int = 32,
        gpus_per_node: int = 0,
        scheduler: Optional[SchedulerPlugin] = None,
    ) -> None:
        self.capacity = {
            f"knode{i}": {
                "cpu": cpus_per_node,
                "memory": memory_gb_per_node,
                "gpu": gpus_per_node,
            }
            for i in range(nodes)
        }
        self.free = {name: dict(cap) for name, cap in self.capacity.items()}
        self.scheduler = scheduler or DefaultScheduler()
        self.placements: List[Placement] = []

    def deploy(self, pods: Sequence[PodSpec]) -> Optional[Placement]:
        """Ask the active scheduler to place a pod group; None if it cannot."""
        placement = self.scheduler.schedule_group(self, pods)
        if placement is not None:
            self.placements.append(placement)
        return placement

    def teardown(self, placement: Placement) -> None:
        """Delete a deployment, returning its resources."""
        if placement not in self.placements:
            raise SchedulerError("unknown placement")
        self.scheduler.unschedule(self, placement)
        self.placements.remove(placement)

    # -- capacity bookkeeping used by DefaultScheduler ------------------
    def fits(self, node: str, pod: PodSpec) -> bool:
        free = self.free[node]
        return (
            free["cpu"] >= pod.cpus
            and free["memory"] >= pod.memory_gb
            and free["gpu"] >= pod.gpus
        )

    def bind(self, node: str, pod: PodSpec) -> None:
        free = self.free[node]
        free["cpu"] -= pod.cpus
        free["memory"] -= pod.memory_gb
        free["gpu"] -= pod.gpus

    def unbind(self, node: str, pod: PodSpec) -> None:
        free = self.free[node]
        free["cpu"] += pod.cpus
        free["memory"] += pod.memory_gb
        free["gpu"] += pod.gpus


class DefaultScheduler(SchedulerPlugin):
    """Kubernetes-style filter/score scheduling, one pod at a time.

    No gang semantics: when a group only partially fits, the pods placed so
    far stay bound (head-of-line resource waste — the failure mode Fluence
    addresses for MPI workloads).
    """

    def __init__(self, keep_partial: bool = True) -> None:
        self.keep_partial = keep_partial
        self._pods: Dict[str, PodSpec] = {}

    def schedule_group(
        self, orchestrator: MiniOrchestrator, pods: Sequence[PodSpec]
    ) -> Optional[Placement]:
        placement = Placement()
        for pod in pods:
            candidates = [
                n for n in orchestrator.capacity if orchestrator.fits(n, pod)
            ]
            if not candidates:
                if not self.keep_partial:
                    self.unschedule(orchestrator, placement)
                    return None
                break
            # Score: least-allocated first (spread), mirroring the default
            # kube-scheduler's NodeResourcesFit/LeastAllocated behavior.
            best = max(candidates, key=lambda n: orchestrator.free[n]["cpu"])
            orchestrator.bind(best, pod)
            placement.bindings[pod.name] = best
            self._pods[pod.name] = pod
        if len(placement.bindings) < len(pods):
            return placement if placement.bindings else None
        return placement

    def unschedule(self, orchestrator: MiniOrchestrator, placement: Placement) -> None:
        for pod_name, node in placement.bindings.items():
            orchestrator.unbind(node, self._pods.pop(pod_name))
        placement.bindings.clear()


class FluxionPlugin(SchedulerPlugin):
    """Fluence-style plugin: Fluxion's graph model behind the same interface.

    Builds a resource graph mirroring the orchestrator's nodes once, then
    matches each pod group as a single jobspec — all pods or none (gang
    scheduling), with the graph policy choosing placement (e.g. locality).
    """

    def __init__(self, orchestrator: MiniOrchestrator, policy: str = "locality",
                 horizon: int = 2**40) -> None:
        graph = ResourceGraph(0, horizon)
        cluster = graph.add_vertex("cluster", basename="kube")
        self._node_names: Dict[int, str] = {}
        for name, cap in orchestrator.capacity.items():
            node = graph.add_vertex("node", basename="knode")
            graph.add_edge(cluster, node)
            self._node_names[node.uniq_id] = name
            for _ in range(cap["cpu"]):
                graph.add_edge(node, graph.add_vertex("core"))
            for _ in range(cap["gpu"]):
                graph.add_edge(node, graph.add_vertex("gpu"))
            memory = graph.add_vertex("memory", size=cap["memory"])
            graph.add_edge(node, memory)
        graph.install_pruning_filters(
            ["core", "memory", "gpu"], at_types=["node"]
        )
        self.graph = graph
        self.traverser = Traverser(graph, policy=policy)
        self._deployments: Dict[int, int] = {}  # id(placement) -> alloc_id
        self._pods: Dict[int, List[PodSpec]] = {}

    @staticmethod
    def _group_jobspec(pods: Sequence[PodSpec]) -> Jobspec:
        """One jobspec for the whole pod group (identical pods expected for
        MPI ranks; heterogeneous pods become sibling slot requests)."""
        requests = []
        for pod in pods:
            inner = [ResourceRequest(type="core", count=pod.cpus)]
            if pod.gpus:
                inner.append(ResourceRequest(type="gpu", count=pod.gpus))
            inner.append(
                ResourceRequest(type="memory", count=pod.memory_gb, unit="GB")
            )
            requests.append(
                ResourceRequest(type="node", count=1, with_=(slot(1, *inner),))
            )
        return Jobspec(resources=tuple(requests), duration=2**30)

    def schedule_group(
        self, orchestrator: MiniOrchestrator, pods: Sequence[PodSpec]
    ) -> Optional[Placement]:
        alloc = self.traverser.allocate(self._group_jobspec(pods), at=0)
        if alloc is None:
            return None  # gang semantics: nothing placed on failure
        placement = Placement()
        node_selections = [
            s for s in alloc.selections if not s.passthrough and s.type == "node"
        ]
        for pod, selection in zip(pods, node_selections):
            name = self._node_names[selection.vertex.uniq_id]
            placement.bindings[pod.name] = name
            orchestrator.bind(name, pod)  # mirror into orchestrator accounting
        self._deployments[id(placement)] = alloc.alloc_id
        self._pods[id(placement)] = list(pods)
        return placement

    def unschedule(self, orchestrator: MiniOrchestrator, placement: Placement) -> None:
        alloc_id = self._deployments.pop(id(placement))
        self.traverser.remove(alloc_id)
        for pod in self._pods.pop(id(placement)):
            orchestrator.unbind(placement.bindings[pod.name], pod)
        placement.bindings.clear()
