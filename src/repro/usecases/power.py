"""Power-aware scheduling with flow resources (paper §1, §3.1).

Power is the paper's canonical *flow* resource: a budget that jobs draw from
while they run, with limits at several levels of the hierarchy (facility,
cluster, rack/PDU).  The graph model handles it as ordinary pool vertices —
one power pool per rack plus one cluster-level pool — so a single match can
enforce "N cores *and* W watts at the rack *and* the cluster stays under its
cap" with no scheduler plugin (the multi-level constraint §2 says bolt-on
plugins cannot compose).
"""

from __future__ import annotations

from typing import Optional

from ..jobspec import Jobspec, ResourceRequest, slot
from ..match import Allocation, Traverser
from ..resource import ResourceGraph

__all__ = ["power_capped_cluster", "power_job", "PowerAwareScheduler"]


def power_capped_cluster(
    racks: int = 2,
    nodes_per_rack: int = 2,
    cores_per_node: int = 8,
    rack_power_cap: int = 1000,
    cluster_power_cap: Optional[int] = None,
    plan_end: int = 2**40,
) -> ResourceGraph:
    """A cluster with per-rack power pools and an optional cluster-level cap.

    When ``cluster_power_cap`` is smaller than ``racks * rack_power_cap``,
    the cluster pool is the binding constraint under high load — the
    facility-level budget case.
    """
    graph = ResourceGraph(0, plan_end)
    cluster = graph.add_vertex("cluster")
    if cluster_power_cap is not None:
        # A distinct type keeps the facility budget out of rack-level power
        # matches (and vice versa): type is the match key in the jobspec DSL.
        cluster_power = graph.add_vertex(
            "facility_power", basename="cluster_power", size=cluster_power_cap
        )
        graph.add_edge(cluster, cluster_power)
    for _ in range(racks):
        rack = graph.add_vertex("rack")
        graph.add_edge(cluster, rack)
        pdu = graph.add_vertex("power", basename="rack_power",
                               size=rack_power_cap)
        graph.add_edge(rack, pdu)
        for _ in range(nodes_per_rack):
            node = graph.add_vertex("node")
            graph.add_edge(rack, node)
            for _ in range(cores_per_node):
                graph.add_edge(node, graph.add_vertex("core"))
    graph.install_pruning_filters(
        ["core", "node", "power", "facility_power"], at_types=["rack"]
    )
    return graph


def power_job(
    cores: int,
    rack_watts: int,
    cluster_watts: int = 0,
    nodes: int = 1,
    duration: int = 3600,
) -> Jobspec:
    """Cores plus a rack-level power draw, optionally also charging a
    cluster-level budget.

    The rack grouping guarantees the watts come from the PDU feeding the
    chosen nodes; the optional top-level power request draws from the
    cluster pool simultaneously — the composed multi-level constraint.
    """
    rack = ResourceRequest(
        type="rack",
        count=1,
        with_=(
            slot(
                1,
                ResourceRequest(
                    type="node",
                    count=nodes,
                    with_=(ResourceRequest(type="core", count=cores),),
                ),
                ResourceRequest(type="power", count=rack_watts, unit="W"),
            ),
        ),
    )
    resources = [rack]
    if cluster_watts:
        resources.insert(
            0,
            slot(
                1,
                ResourceRequest(
                    type="facility_power", count=cluster_watts, unit="W"
                ),
                label="cluster-budget",
            ),
        )
    return Jobspec(resources=tuple(resources), duration=duration)


class PowerAwareScheduler:
    """Facade bundling a power-capped graph with the match verbs."""

    def __init__(self, graph: ResourceGraph, policy: str = "low") -> None:
        self.graph = graph
        self.traverser = Traverser(graph, policy=policy)

    def submit(
        self,
        cores: int,
        rack_watts: int,
        cluster_watts: int = 0,
        nodes: int = 1,
        duration: int = 3600,
        now: int = 0,
    ) -> Optional[Allocation]:
        """Allocate now or reserve the earliest power-feasible window."""
        return self.traverser.allocate_orelse_reserve(
            power_job(cores, rack_watts, cluster_watts, nodes, duration),
            now=now,
        )

    def headroom(self, at: int = 0) -> dict:
        """Remaining watts per power pool (rack PDUs and facility budget)."""
        pools = list(self.graph.vertices("power")) + list(
            self.graph.vertices("facility_power")
        )
        return {
            vertex.path("containment"): vertex.plans.avail_resources_at(at)
            for vertex in pools
        }

    def free(self, allocation: Allocation) -> None:
        self.traverser.remove(allocation.alloc_id)
