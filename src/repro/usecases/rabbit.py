"""Rabbit (near-node-flash) storage scheduling (paper §5.1).

Jobspec builders and a thin scheduler facade for the three allocation shapes
El Capitan's rabbits must support, all expressed as ordinary graph matches
over the :func:`~repro.grug.rabbit.rabbit_system` model:

* **node-local storage** — compute nodes plus storage carved from the rabbit
  in the *same chassis* (co-location enforced by grouping the request under
  a rack vertex);
* **global (Lustre) storage** — storage on any one rabbit plus that rabbit's
  unique ``ip`` vertex, so a second Lustre server can never land on the same
  rabbit;
* **storage-only** — a file system with no compute attached, which users keep
  across jobs (the scheduler must support compute-less allocations).

Every file system consumes NVMe namespaces from the rabbit's namespace pool,
bounding how many file systems one rabbit can host.
"""

from __future__ import annotations

from typing import Optional

from ..jobspec import Jobspec, ResourceRequest, slot
from ..match import Allocation, Traverser
from ..resource import ResourceGraph

__all__ = [
    "node_local_storage_job",
    "global_storage_job",
    "storage_only_job",
    "RabbitScheduler",
]


def node_local_storage_job(
    chassis: int = 1,
    nodes_per_chassis: int = 1,
    cores_per_node: int = 1,
    local_gb_per_chassis: int = 100,
    namespaces: int = 1,
    duration: int = 3600,
) -> Jobspec:
    """Compute nodes plus node-local rabbit storage in the same chassis.

    Grouping under ``rack`` guarantees the selected storage lives on the
    rabbit of the chassis that also holds the selected nodes — the
    "pick compute nodes whose rabbit has enough storage" constraint.
    """
    per_chassis = slot(
        1,
        ResourceRequest(
            type="node",
            count=nodes_per_chassis,
            with_=(ResourceRequest(type="core", count=cores_per_node),),
        ),
        ResourceRequest(type="ssd", count=local_gb_per_chassis, unit="GB"),
        ResourceRequest(type="nvme_namespace", count=namespaces),
    )
    rack = ResourceRequest(type="rack", count=chassis, with_=(per_chassis,))
    return Jobspec(resources=(rack,), duration=duration)


def global_storage_job(
    gb: int = 500,
    namespaces: int = 1,
    duration: int = 3600,
) -> Jobspec:
    """A global Lustre file system on one rabbit.

    Includes the rabbit's single ``ip`` vertex: the Lustre server needs a
    unique IP, so at most one global file system can live on each rabbit.
    """
    rabbit = ResourceRequest(
        type="rabbit",
        count=1,
        with_=(
            slot(
                1,
                ResourceRequest(type="ssd", count=gb, unit="GB"),
                ResourceRequest(type="nvme_namespace", count=namespaces),
                ResourceRequest(type="ip", count=1),
            ),
        ),
    )
    return Jobspec(resources=(rabbit,), duration=duration)


def storage_only_job(
    gb: int = 200,
    namespaces: int = 1,
    duration: int = 3600,
) -> Jobspec:
    """A file system with no compute resources attached (kept across jobs)."""
    rabbit = ResourceRequest(
        type="rabbit",
        count=1,
        with_=(
            slot(
                1,
                ResourceRequest(type="ssd", count=gb, unit="GB"),
                ResourceRequest(type="nvme_namespace", count=namespaces),
            ),
        ),
    )
    return Jobspec(resources=(rabbit,), duration=duration)


class RabbitScheduler:
    """Facade bundling a rabbit-aware graph with the match verbs it needs."""

    def __init__(self, graph: ResourceGraph, policy: str = "first") -> None:
        self.graph = graph
        self.traverser = Traverser(graph, policy=policy)

    def allocate_node_local(
        self, now: int = 0, **kwargs
    ) -> Optional[Allocation]:
        """Node-local storage + compute; see :func:`node_local_storage_job`."""
        return self.traverser.allocate(node_local_storage_job(**kwargs), at=now)

    def allocate_global_fs(self, now: int = 0, **kwargs) -> Optional[Allocation]:
        """Global Lustre storage; see :func:`global_storage_job`."""
        return self.traverser.allocate(global_storage_job(**kwargs), at=now)

    def allocate_storage_only(self, now: int = 0, **kwargs) -> Optional[Allocation]:
        """Compute-less persistent file system; see :func:`storage_only_job`."""
        return self.traverser.allocate(storage_only_job(**kwargs), at=now)

    def free(self, allocation: Allocation) -> None:
        self.traverser.remove(allocation.alloc_id)
