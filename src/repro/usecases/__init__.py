"""Advanced scheduling use cases enabled by the graph model (paper §5)."""

from .converged import (
    DefaultScheduler,
    FluxionPlugin,
    MiniOrchestrator,
    Placement,
    PodSpec,
)
from .power import PowerAwareScheduler, power_capped_cluster, power_job
from .rabbit import (
    RabbitScheduler,
    global_storage_job,
    node_local_storage_job,
    storage_only_job,
)
from .variation import (
    EQ1_BOUNDARIES,
    LULESH_SPREAD,
    MG_SPREAD,
    NodeScores,
    assign_perf_classes,
    class_histogram,
    figure_of_merit,
    fom_histogram,
    performance_classes,
    synthetic_node_scores,
)

__all__ = [
    "DefaultScheduler",
    "EQ1_BOUNDARIES",
    "FluxionPlugin",
    "LULESH_SPREAD",
    "MG_SPREAD",
    "MiniOrchestrator",
    "NodeScores",
    "Placement",
    "PodSpec",
    "PowerAwareScheduler",
    "power_capped_cluster",
    "power_job",
    "RabbitScheduler",
    "assign_perf_classes",
    "class_histogram",
    "figure_of_merit",
    "fom_histogram",
    "global_storage_job",
    "node_local_storage_job",
    "performance_classes",
    "storage_only_job",
    "synthetic_node_scores",
]
