"""Exception hierarchy for the Fluxion reproduction.

All library errors derive from :class:`FluxionError` so callers can catch a
single base class.  Subsystems raise the most specific subclass available.
"""

from __future__ import annotations


class FluxionError(Exception):
    """Base class for all errors raised by this library."""


class PlannerError(FluxionError):
    """Raised on invalid Planner operations (bad span bounds, overcommit, ...)."""


class SpanNotFoundError(PlannerError, KeyError):
    """Raised when a span id is unknown to a Planner."""


class ResourceGraphError(FluxionError):
    """Raised on invalid resource-graph construction or mutation."""


class SubsystemError(ResourceGraphError):
    """Raised when a subsystem name is unknown or inconsistent."""


class RecipeError(FluxionError):
    """Raised when a GRUG-style generation recipe is malformed."""


class JobspecError(FluxionError):
    """Raised when a canonical jobspec cannot be parsed or validated."""


class MatchError(FluxionError):
    """Raised on traverser/matching failures that are programming errors.

    An *unsatisfiable* request is not an error — the traverser reports that
    through its return value — but a malformed request or an inconsistent
    internal state is.
    """


class AllocationNotFoundError(MatchError, KeyError):
    """Raised when an allocation id is unknown to the traverser."""


class SchedulerError(FluxionError):
    """Raised on invalid scheduler/queue operations."""


class JobError(SchedulerError):
    """Raised on invalid job state transitions."""


class OverloadError(SchedulerError):
    """Base class for overload-protection control flow (repro.resilience).

    Subclasses are *control-flow signals*, not defects: the overload
    controller raises and catches them to bound work under pressure.  Code
    outside the overload machinery must never swallow them (lint rule
    OVL001 enforces this) — a silently absorbed signal turns bounded
    degradation back into an unbounded stall.
    """


class AdmissionRejected(OverloadError):
    """Raised when admission control refuses a submission.

    Carries the admission ``policy`` that refused and the queue ``depth``
    observed at the decision, so callers can surface an actionable message.
    """

    def __init__(self, message: str, policy: str = "", depth: int = 0) -> None:
        super().__init__(message)
        self.policy = policy
        self.depth = depth


class SchedulingDeadlineExceeded(OverloadError):
    """Raised at a cooperative cancellation checkpoint when a scheduling
    work budget is exhausted.

    ``scope`` is ``"attempt"`` (one match attempt overran; the traverser
    converts it into a no-match verdict) or ``"cycle"`` (the whole dispatch
    cycle overran; the overload controller ends the cycle early).  ``spent``
    and ``limit`` are deterministic work units (graph visits + reserve
    iterations), never wall-clock.
    """

    def __init__(self, scope: str, spent: int, limit: int) -> None:
        super().__init__(
            f"scheduling {scope} budget exceeded: {spent} work units "
            f"spent, limit {limit}"
        )
        self.scope = scope
        self.spent = spent
        self.limit = limit


class SanitizerError(FluxionError):
    """Raised by the FluxSan runtime sanitizer on a detected invariant
    violation: span double-free, overlapping exclusive holds, pruning-filter
    (SDFU) divergence, or a nondeterministic dual run.

    The message always carries a usable report: what diverged, where it was
    first touched, and which check fired.
    """


class RecoveryError(FluxionError):
    """Raised when crash-consistent state cannot be saved or restored."""


class SnapshotError(RecoveryError):
    """Raised when a snapshot document is missing, corrupt or inconsistent."""


class JournalError(RecoveryError):
    """Raised on invalid write-ahead-journal operations."""


class JournalCorruptError(JournalError):
    """Raised when the journal is corrupt beyond its torn tail.

    A truncated or CRC-failing *trailing* record is a torn write and is
    silently dropped during recovery; corruption *followed by further valid
    records* means the journal body itself is damaged and recovery must not
    guess."""


class IntegrityError(RecoveryError):
    """Raised by the fluxfsck integrity layer (repro.recovery.integrity).

    Signals live-state corruption that could not be contained: a vertex the
    repair engine could not bring back to a verified-clean state, or an
    integrity scan requested against state the scrubber cannot reason about
    (e.g. an unattached monitor).  Detected-and-repaired drift never raises —
    it is quarantined, repaired, and accounted in ``integrity.*`` counters.
    """
