"""Exception hierarchy for the Fluxion reproduction.

All library errors derive from :class:`FluxionError` so callers can catch a
single base class.  Subsystems raise the most specific subclass available.
"""

from __future__ import annotations


class FluxionError(Exception):
    """Base class for all errors raised by this library."""


class PlannerError(FluxionError):
    """Raised on invalid Planner operations (bad span bounds, overcommit, ...)."""


class SpanNotFoundError(PlannerError, KeyError):
    """Raised when a span id is unknown to a Planner."""


class ResourceGraphError(FluxionError):
    """Raised on invalid resource-graph construction or mutation."""


class SubsystemError(ResourceGraphError):
    """Raised when a subsystem name is unknown or inconsistent."""


class RecipeError(FluxionError):
    """Raised when a GRUG-style generation recipe is malformed."""


class JobspecError(FluxionError):
    """Raised when a canonical jobspec cannot be parsed or validated."""


class MatchError(FluxionError):
    """Raised on traverser/matching failures that are programming errors.

    An *unsatisfiable* request is not an error — the traverser reports that
    through its return value — but a malformed request or an inconsistent
    internal state is.
    """


class AllocationNotFoundError(MatchError, KeyError):
    """Raised when an allocation id is unknown to the traverser."""


class SchedulerError(FluxionError):
    """Raised on invalid scheduler/queue operations."""


class JobError(SchedulerError):
    """Raised on invalid job state transitions."""


class SanitizerError(FluxionError):
    """Raised by the FluxSan runtime sanitizer on a detected invariant
    violation: span double-free, overlapping exclusive holds, pruning-filter
    (SDFU) divergence, or a nondeterministic dual run.

    The message always carries a usable report: what diverged, where it was
    first touched, and which check fired.
    """


class RecoveryError(FluxionError):
    """Raised when crash-consistent state cannot be saved or restored."""


class SnapshotError(RecoveryError):
    """Raised when a snapshot document is missing, corrupt or inconsistent."""


class JournalError(RecoveryError):
    """Raised on invalid write-ahead-journal operations."""


class JournalCorruptError(JournalError):
    """Raised when the journal is corrupt beyond its torn tail.

    A truncated or CRC-failing *trailing* record is a torn write and is
    silently dropped during recovery; corruption *followed by further valid
    records* means the journal body itself is damaged and recovery must not
    guess."""
