"""Naive list-based planner — the foil for Planner's tree indexes (§4.1).

Implements the same query surface as :class:`~repro.planner.Planner` with a
flat list of spans and per-query linear scans.  Used by the ablation bench
(E7) to show why the paper's SP/ET trees matter: every query here is
``O(spans)`` versus the trees' ``O(log spans)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import PlannerError, SpanNotFoundError

__all__ = ["ListPlanner"]


class ListPlanner:
    """Drop-in (slow) replacement for Planner's core query API."""

    __slots__ = ("total", "plan_start", "plan_end", "resource_type", "_spans",
                 "_next_span_id")

    def __init__(
        self,
        total: int,
        plan_start: int = 0,
        plan_end: int = 2**62,
        resource_type: str = "",
    ) -> None:
        if total < 0:
            raise PlannerError(f"total must be non-negative, got {total}")
        if plan_end <= plan_start:
            raise PlannerError(f"empty planning horizon: [{plan_start}, {plan_end})")
        self.total = total
        self.plan_start = plan_start
        self.plan_end = plan_end
        self.resource_type = resource_type
        self._spans: Dict[int, Tuple[int, int, int]] = {}  # id -> (start, end, req)
        self._next_span_id = 1

    @property
    def span_count(self) -> int:
        return len(self._spans)

    # ------------------------------------------------------------------
    # queries (all linear scans)
    # ------------------------------------------------------------------
    def avail_resources_at(self, at: int) -> int:
        self._check_time(at)
        in_use = sum(
            req for start, end, req in self._spans.values() if start <= at < end
        )
        return self.total - in_use

    def avail_at(self, at: int, request: int) -> bool:
        return self.avail_resources_at(at) >= request

    def avail_during(self, at: int, duration: int, request: int) -> bool:
        self._check_window(at, duration)
        window_end = at + duration
        # Availability changes only at span boundaries inside the window.
        probes = {at}
        for start, end, _ in self._spans.values():
            if at < start < window_end:
                probes.add(start)
            if at < end < window_end:
                probes.add(end)
        return all(self.avail_resources_at(p) >= request for p in probes)

    def avail_time_first(
        self, request: int, duration: int = 1, on_or_after: int = 0
    ) -> Optional[int]:
        if request > self.total:
            return None
        at = max(on_or_after, self.plan_start)
        if at + duration > self.plan_end:
            return None
        candidates = sorted(
            {at}
            | {
                end
                for _, end, _ in self._spans.values()
                if at < end <= self.plan_end - duration
            }
        )
        for candidate in candidates:
            if self.avail_during(candidate, duration, request):
                return candidate
        return None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_span(self, start: int, duration: int, request: int) -> int:
        self._check_window(start, duration)
        if request < 0:
            raise PlannerError(f"negative request: {request}")
        if request > self.total:
            raise PlannerError(f"request {request} exceeds pool total {self.total}")
        if not self.avail_during(start, duration, request):
            raise PlannerError(
                f"request {request}x[{start},{start + duration}) unavailable"
            )
        span_id = self._next_span_id
        self._next_span_id += 1
        self._spans[span_id] = (start, start + duration, request)
        return span_id

    def rem_span(self, span_id: int) -> None:
        try:
            del self._spans[span_id]
        except KeyError:
            raise SpanNotFoundError(span_id) from None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_time(self, at: int) -> None:
        if not (self.plan_start <= at < self.plan_end):
            raise PlannerError(
                f"time {at} outside horizon [{self.plan_start}, {self.plan_end})"
            )

    def _check_window(self, at: int, duration: int) -> None:
        if duration <= 0:
            raise PlannerError(f"duration must be positive, got {duration}")
        self._check_time(at)
        if at + duration > self.plan_end:
            raise PlannerError(
                f"window [{at}, {at + duration}) exceeds horizon end {self.plan_end}"
            )
