"""Baseline comparators: node-centric scheduler and naive list planner (§2)."""

from .listplanner import ListPlanner
from .nodecentric import NodeCentricAllocation, NodeCentricScheduler

__all__ = ["ListPlanner", "NodeCentricAllocation", "NodeCentricScheduler"]
