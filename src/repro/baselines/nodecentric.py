"""Node-centric baseline scheduler (paper §2).

The resource models in traditional HPC schedulers are "node-centric or
core-centric ... bitmap-based or linked-list based": a flat array of nodes,
each with a core count, and no notion of resource relationships, containment
hierarchies or subsystems.  This baseline reproduces that design so the
examples and benches can contrast it with the graph model:

* it schedules jobs of the form *(nnodes, cores_per_node, duration)* — the
  only shape the flat model expresses;
* requests involving relationships (rack spread, storage-with-IP, power
  subsystems) are structurally inexpressible, which
  :meth:`NodeCentricScheduler.can_express` makes explicit;
* per-node busy intervals give it conservative-backfill semantics comparable
  to the graph scheduler on whole-node workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SchedulerError
from ..jobspec import Jobspec

__all__ = ["NodeCentricScheduler", "NodeCentricAllocation"]


@dataclass
class NodeCentricAllocation:
    """A baseline allocation: node ids with per-node core counts."""

    alloc_id: int
    at: int
    duration: int
    node_ids: List[int]
    cores_per_node: int
    reserved: bool = False

    @property
    def end(self) -> int:
        return self.at + self.duration


class _NodeState:
    """Per-node busy intervals: (start, end, cores) tuples, kept sorted."""

    __slots__ = ("cores", "intervals")

    def __init__(self, cores: int) -> None:
        self.cores = cores
        self.intervals: List[Tuple[int, int, int]] = []

    def avail_during(self, at: int, duration: int, cores: int) -> bool:
        window_end = at + duration
        probes = {at}
        for start, end, _ in self.intervals:
            if at < start < window_end:
                probes.add(start)
        for probe in probes:
            in_use = sum(
                c for start, end, c in self.intervals if start <= probe < end
            )
            if self.cores - in_use < cores:
                return False
        return True


class NodeCentricScheduler:
    """Flat bitmap-style scheduler over ``nnodes`` identical nodes."""

    def __init__(self, nnodes: int, cores_per_node: int = 1,
                 plan_end: int = 2**40) -> None:
        if nnodes < 1:
            raise SchedulerError("need at least one node")
        self.nodes = [_NodeState(cores_per_node) for _ in range(nnodes)]
        self.cores_per_node = cores_per_node
        self.plan_end = plan_end
        self.allocations: Dict[int, NodeCentricAllocation] = {}
        self._next_alloc_id = 1

    # ------------------------------------------------------------------
    # expressibility check (the model's fundamental limitation, §2)
    # ------------------------------------------------------------------
    @staticmethod
    def can_express(jobspec: Jobspec) -> bool:
        """True when the flat model can represent ``jobspec`` at all.

        Only node/core/slot shapes survive; any other resource type or any
        constraint above the node level (racks, switches, storage, power)
        falls outside the model.
        """
        return all(
            request.type in ("node", "core", "slot")
            for request in jobspec.walk()
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _fit_at(self, at: int, nnodes: int, cores: int, duration: int,
                high_ids_first: bool) -> Optional[List[int]]:
        ids = range(len(self.nodes) - 1, -1, -1) if high_ids_first else range(
            len(self.nodes)
        )
        chosen = []
        for node_id in ids:
            if self.nodes[node_id].avail_during(at, duration, cores):
                chosen.append(node_id)
                if len(chosen) == nnodes:
                    return chosen
        return None

    def allocate(
        self,
        nnodes: int,
        duration: int,
        cores_per_node: Optional[int] = None,
        at: int = 0,
        high_ids_first: bool = False,
    ) -> Optional[NodeCentricAllocation]:
        """First-fit allocation at exactly ``at``; None when it does not fit."""
        cores = self.cores_per_node if cores_per_node is None else cores_per_node
        if cores > self.cores_per_node or at + duration > self.plan_end:
            return None
        chosen = self._fit_at(at, nnodes, cores, duration, high_ids_first)
        if chosen is None:
            return None
        return self._book(chosen, at, duration, cores, reserved=False)

    def allocate_orelse_reserve(
        self,
        nnodes: int,
        duration: int,
        cores_per_node: Optional[int] = None,
        now: int = 0,
        high_ids_first: bool = False,
    ) -> Optional[NodeCentricAllocation]:
        """Allocate now or reserve at the earliest completion event."""
        cores = self.cores_per_node if cores_per_node is None else cores_per_node
        if cores > self.cores_per_node or nnodes > len(self.nodes):
            return None
        events = sorted(
            {now}
            | {
                a.end
                for a in self.allocations.values()
                if now < a.end <= self.plan_end - duration
            }
        )
        for candidate in events:
            chosen = self._fit_at(candidate, nnodes, cores, duration, high_ids_first)
            if chosen is not None:
                return self._book(
                    chosen, candidate, duration, cores, reserved=candidate > now
                )
        return None

    def remove(self, alloc_id: int) -> None:
        """Free an allocation (intervals are filtered out per node)."""
        try:
            alloc = self.allocations.pop(alloc_id)
        except KeyError:
            raise SchedulerError(f"unknown allocation {alloc_id}") from None
        marker = (alloc.at, alloc.end, alloc.cores_per_node)
        for node_id in alloc.node_ids:
            self.nodes[node_id].intervals.remove(marker)

    def _book(
        self, node_ids: List[int], at: int, duration: int, cores: int,
        reserved: bool,
    ) -> NodeCentricAllocation:
        for node_id in node_ids:
            self.nodes[node_id].intervals.append((at, at + duration, cores))
        alloc = NodeCentricAllocation(
            alloc_id=self._next_alloc_id,
            at=at,
            duration=duration,
            node_ids=sorted(node_ids),
            cores_per_node=cores,
            reserved=reserved,
        )
        self._next_alloc_id += 1
        self.allocations[alloc.alloc_id] = alloc
        return alloc
