"""repro: a pure-Python reproduction of Fluxion, the scalable graph-based
resource model for HPC scheduling (Patki et al., SC-W 2023).

Quick tour::

    from repro import tiny_cluster, Traverser, simple_node_jobspec

    graph = tiny_cluster()                       # resource graph store (§3.1)
    traverser = Traverser(graph, policy="low")   # DFU traverser (§3.2)
    alloc = traverser.allocate(simple_node_jobspec(cores=4), at=0)
    print(alloc.summary())

Subpackages
-----------
``repro.planner``
    Span-based resource/time tracking: Planner, PlannerMulti, RB trees (§4.1).
``repro.resource``
    The graph store: pool vertices, typed subsystem edges, filtering (§3.1).
``repro.grug``
    System generation: recipes, LOD presets, rabbit/disaggregated models (§6.1).
``repro.jobspec``
    The canonical jobspec DSL — abstract resource request graphs (§4.2).
``repro.match``
    The traverser, match policies, pruning filters and SDFU (§3.2-§3.4).
``repro.sched``
    Queueing/backfilling, an event simulator, elasticity, hierarchy (§5.5-§5.6).
``repro.resilience``
    Stochastic fault injection, retry policies, state invariant auditing.
``repro.recovery``
    Crash-consistent scheduler state: snapshots, write-ahead journal,
    recovery replay and crash injection.
``repro.baselines``
    Node-centric scheduler and naive list planner for comparison (§2).
``repro.usecases``
    Rabbit storage, variation-aware scheduling, converged computing (§5).
``repro.workloads``
    Synthetic traces and Planner span workloads (§6.2-§6.3).
``repro.analysis``
    Schedule analysis: utilization timelines, slowdowns, Gantt, CSV export.
``repro.cli``
    The resource-query command-line utility (§6.1).
"""

from .errors import (
    AllocationNotFoundError,
    FluxionError,
    JobError,
    JobspecError,
    JournalCorruptError,
    JournalError,
    MatchError,
    PlannerError,
    RecipeError,
    RecoveryError,
    ResourceGraphError,
    SchedulerError,
    SnapshotError,
    SpanNotFoundError,
    SubsystemError,
)
from .grug import (
    build_from_recipe,
    build_lod,
    disaggregated_system,
    quartz,
    rabbit_system,
    tiny_cluster,
)
from .jobspec import (
    Jobspec,
    ResourceRequest,
    nodes_jobspec,
    parse_jobspec,
    pool_jobspec,
    rack_spread_jobspec,
    simple_node_jobspec,
)
from .match import Allocation, MatchPolicy, Traverser, make_policy
from .planner import Planner, PlannerMulti, Span
from .resource import ResourceGraph, ResourceVertex
from .recovery import (
    CRASH_POINTS,
    CrashInjector,
    RecoveryManager,
    SimulatedCrash,
    recover,
    state_diff,
)
from .resilience import (
    FaultInjector,
    FaultModel,
    InvariantAuditor,
    InvariantViolation,
    RetryPolicy,
)
from .sched import (
    CancelReason,
    CapacitySchedule,
    ClusterSimulator,
    Instance,
    Job,
    JobState,
    Workflow,
)

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "AllocationNotFoundError",
    "CRASH_POINTS",
    "CancelReason",
    "CapacitySchedule",
    "ClusterSimulator",
    "CrashInjector",
    "FaultInjector",
    "FaultModel",
    "FluxionError",
    "Instance",
    "InvariantAuditor",
    "InvariantViolation",
    "Job",
    "JobError",
    "JobState",
    "Jobspec",
    "JobspecError",
    "JournalCorruptError",
    "JournalError",
    "MatchError",
    "MatchPolicy",
    "Planner",
    "PlannerError",
    "PlannerMulti",
    "RecipeError",
    "RecoveryError",
    "RecoveryManager",
    "ResourceGraph",
    "RetryPolicy",
    "ResourceGraphError",
    "ResourceRequest",
    "ResourceVertex",
    "SchedulerError",
    "SimulatedCrash",
    "SnapshotError",
    "Span",
    "SpanNotFoundError",
    "SubsystemError",
    "Traverser",
    "Workflow",
    "build_from_recipe",
    "build_lod",
    "disaggregated_system",
    "make_policy",
    "nodes_jobspec",
    "parse_jobspec",
    "pool_jobspec",
    "quartz",
    "rabbit_system",
    "rack_spread_jobspec",
    "recover",
    "simple_node_jobspec",
    "state_diff",
    "tiny_cluster",
]
