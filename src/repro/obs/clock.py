"""The audited wall-clock shim: the only wall-clock read in ``src/repro``.

Recovery replay (repro.recovery) requires scheduler *decisions* to be
byte-identical across re-execution, which is why fluxlint's DET001 bans
wall-clock reads on scheduler code paths.  Observability, however, is all
about wall-clock durations — match latency, snapshot cost, cycle time.
This module is the sanctioned bridge: every timing measurement in the tree
goes through :func:`wall_now` / :func:`wall_timer`, wall time never feeds
back into scheduling decisions (only into metrics, traces and
``Job.sched_time``, all of which are excluded from state fingerprints),
and the single DET001 suppression below is the audit point.

fluxlint's OBS001 rule enforces the funnel: raw ``time.perf_counter()``
calls anywhere else under ``src/repro`` are flagged.
"""

from __future__ import annotations

import time as _time

__all__ = ["wall_now", "wall_timer", "WallTimer"]


def wall_now() -> float:
    """Monotonic wall-clock seconds (observability only, never replayed)."""
    return _time.perf_counter()  # fluxlint: disable=DET001


class WallTimer:
    """Context manager measuring wall-clock duration into ``.elapsed``.

    Usable standalone or through :func:`wall_timer`::

        with wall_timer() as t:
            do_work()
        histogram.observe(t.elapsed)

    ``.elapsed`` is 0.0 until the block exits; re-entering restarts it.
    """

    __slots__ = ("start", "elapsed")

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "WallTimer":
        self.start = wall_now()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = wall_now() - self.start


def wall_timer() -> WallTimer:
    """A fresh :class:`WallTimer` (reads nicer at call sites)."""
    return WallTimer()
