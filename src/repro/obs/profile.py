"""Sampling-free exact profiler over tracer span events.

Because the tracer records *every* span with exact wall-clock durations
(no statistical sampling), profiling is pure aggregation:

* **per-name rows** — call count, total time, self time (total minus the
  total of direct children), mean;
* **caller/callee edges** — how often (and for how long) span A directly
  contained span B, the classic gprof-style table;
* **flame summary** — total time grouped by full span *path*
  (``sim.cycle;sched.attempt;dfu.match``), rendered as an indented ASCII
  tree with proportional bars — a flame graph for terminals.

The input is the event-dict list produced by :class:`repro.obs.trace.Tracer`
(or re-read from a JSONL/Chrome export); ``python -m repro.obs report``
is the CLI front-end.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Profile", "aggregate"]


class _Row:
    __slots__ = ("name", "count", "total", "self_time")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.self_time = 0


class Profile:
    """Aggregated span statistics; see module docstring for the parts."""

    def __init__(self) -> None:
        self.rows: Dict[str, _Row] = {}
        #: (caller name, callee name) -> [count, total µs]
        self.edges: Dict[Tuple[str, str], List[int]] = {}
        #: span path ("a;b;c") -> [count, total µs, self µs]
        self.paths: Dict[str, List[int]] = {}
        self.wall_total = 0

    # -- construction --------------------------------------------------
    def _add_span(
        self, name: str, dur: int, parent_name: Optional[str], path: str
    ) -> None:
        row = self.rows.get(name)
        if row is None:
            row = _Row(name)
            self.rows[name] = row
        row.count += 1
        row.total += dur
        row.self_time += dur  # children subtracted as they arrive
        if parent_name is None:
            self.wall_total += dur
        else:
            parent_row = self.rows[parent_name]
            parent_row.self_time -= dur
            edge = self.edges.setdefault((parent_name, name), [0, 0])
            edge[0] += 1
            edge[1] += dur
        stats = self.paths.setdefault(path, [0, 0, 0])
        stats[0] += 1
        stats[1] += dur
        stats[2] += dur
        if parent_name is not None:
            parent_path = path.rsplit(";", 1)[0]
            self.paths[parent_path][2] -= dur

    # -- rendering -----------------------------------------------------
    def table(self, limit: int = 30) -> str:
        """Per-name rows plus caller/callee breakdown, worst-first."""
        lines = [
            f"{'total ms':>10} {'self ms':>10} {'calls':>8}  name",
        ]
        ordered = sorted(
            self.rows.values(), key=lambda row: row.total, reverse=True
        )
        for row in ordered[:limit]:
            lines.append(
                f"{row.total / 1000:>10.3f} {row.self_time / 1000:>10.3f} "
                f"{row.count:>8}  {row.name}"
            )
            callers = sorted(
                (
                    (caller, edge)
                    for (caller, callee), edge in self.edges.items()
                    if callee == row.name
                ),
                key=lambda item: item[1][1],
                reverse=True,
            )
            for caller, (count, total) in callers:
                lines.append(
                    f"{'':>10} {'':>10} {'':>8}    <- {caller} "
                    f"(x{count}, {total / 1000:.3f} ms)"
                )
            callees = sorted(
                (
                    (callee, edge)
                    for (caller, callee), edge in self.edges.items()
                    if caller == row.name
                ),
                key=lambda item: item[1][1],
                reverse=True,
            )
            for callee, (count, total) in callees:
                lines.append(
                    f"{'':>10} {'':>10} {'':>8}    -> {callee} "
                    f"(x{count}, {total / 1000:.3f} ms)"
                )
        return "\n".join(lines)

    def flame(self, width: int = 60) -> str:
        """Indented ASCII flame summary: one line per span path."""
        if not self.paths:
            return "(no spans)"
        scale = max(self.wall_total, 1)
        lines = []
        for path in sorted(self.paths):
            count, total, _self = self.paths[path]
            depth = path.count(";")
            name = path.rsplit(";", 1)[-1]
            bar = "#" * max(1, int(width * total / scale))
            lines.append(
                f"{total / 1000:>10.3f} ms {'  ' * depth}{name} "
                f"(x{count}) {bar}"
            )
        return "\n".join(lines)


def aggregate(events: List[Dict[str, Any]]) -> Profile:
    """Build a :class:`Profile` from tracer events (native or re-parsed).

    Only complete spans (``ph == "X"``) contribute; instants and counter
    samples are skipped.  Events must be in ``seq`` (begin) order, which
    both the tracer and :func:`repro.obs.trace.read_jsonl` guarantee —
    parents therefore always precede their children.
    """
    profile = Profile()
    names: Dict[int, str] = {}
    paths: Dict[int, str] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        name = event["name"]
        span_id = event["id"]
        parent_id = event.get("parent")
        parent_name = names.get(parent_id) if parent_id is not None else None
        if parent_name is not None:
            path = f"{paths[parent_id]};{name}"
        else:
            path = name
        names[span_id] = name
        paths[span_id] = path
        profile._add_span(name, int(event.get("dur", 0)), parent_name, path)
    return profile
