"""Structured tracer: nested spans with virtual-time + wall-clock axes.

Every span carries two clocks:

* ``vt`` — the simulator's **virtual time** at which the span began.  This
  is deterministic: two seeded runs of the same workload produce the same
  sequence of ``(name, vt)`` pairs (tested in ``tests/test_obs.py``).
* ``ts`` / ``dur`` — **wall-clock** microseconds relative to tracer
  creation, via the audited :mod:`repro.obs.clock` shim.  These vary run
  to run and exist for profiling, never for replay.

Spans nest by a per-tracer stack: ``begin``/``end`` pair up LIFO, and each
event records its parent span id and depth, so exports can rebuild the
tree (simulator cycle → queue policy → per-job match → DFU collect →
planner query).

Exports:

* :meth:`Tracer.to_chrome` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or Perfetto).  Spans are complete events
  (``ph: "X"``), instants ``ph: "i"``, counter samples ``ph: "C"``.
* :meth:`Tracer.write_jsonl` — one JSON object per line, the stable
  machine-readable log that ``python -m repro.obs report`` consumes.

:data:`NULL_TRACER` is the disabled implementation: every method is a
no-op so instrumented code pays one attribute lookup and a call.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple

from .clock import wall_now

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_jsonl",
    "span_tree",
]


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`; ends the span."""

    __slots__ = ("_tracer", "event")

    def __init__(self, tracer: "Tracer", event: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.event = event

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer.end()


class Tracer:
    """Collects span/instant/counter events in begin order.

    Events are plain dicts so export is a ``json.dumps`` away:

    ``{"ph": "X", "name", "cat", "id", "parent", "depth", "seq",
    "ts", "dur", "vt", "args"}``

    ``ts``/``dur`` are integer microseconds; ``vt`` is whatever virtual
    time the caller passed (``None`` for spans outside the simulation
    clock, e.g. CLI match commands).
    """

    __slots__ = ("enabled", "events", "_origin", "_stack", "_next_id")

    def __init__(self) -> None:
        self.enabled = True
        self.events: List[Dict[str, Any]] = []
        self._origin = wall_now()
        self._stack: List[Dict[str, Any]] = []
        self._next_id = 0

    # -- spans ---------------------------------------------------------
    def begin(
        self,
        name: str,
        cat: str = "",
        vt: Optional[float] = None,
        **args: Any,
    ) -> Dict[str, Any]:
        """Open a span; returns its (mutable, still-running) event dict."""
        now = wall_now()
        parent = self._stack[-1] if self._stack else None
        event: Dict[str, Any] = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "id": self._next_id,
            "parent": parent["id"] if parent is not None else None,
            "depth": len(self._stack),
            "seq": len(self.events),
            "ts": int((now - self._origin) * 1e6),
            "dur": 0,
            "vt": vt,
            "args": args,
        }
        self._next_id += 1
        self.events.append(event)
        self._stack.append(event)
        return event

    def end(self, **args: Any) -> None:
        """Close the innermost open span, fixing its wall-clock duration."""
        if not self._stack:
            raise RuntimeError("Tracer.end() with no open span")
        event = self._stack.pop()
        elapsed = int((wall_now() - self._origin) * 1e6) - event["ts"]
        event["dur"] = elapsed if elapsed > 0 else 0
        if args:
            event["args"].update(args)

    def span(
        self,
        name: str,
        cat: str = "",
        vt: Optional[float] = None,
        **args: Any,
    ) -> _SpanHandle:
        """``with tracer.span("sim.cycle", vt=now): ...`` convenience."""
        return _SpanHandle(self, self.begin(name, cat, vt, **args))

    # -- point events --------------------------------------------------
    def instant(
        self,
        name: str,
        cat: str = "",
        vt: Optional[float] = None,
        **args: Any,
    ) -> None:
        """A zero-duration marker (job arrival, fault injection, ...)."""
        parent = self._stack[-1] if self._stack else None
        self.events.append({
            "ph": "i",
            "name": name,
            "cat": cat,
            "id": self._next_id,
            "parent": parent["id"] if parent is not None else None,
            "depth": len(self._stack),
            "seq": len(self.events),
            "ts": int((wall_now() - self._origin) * 1e6),
            "dur": 0,
            "vt": vt,
            "args": args,
        })
        self._next_id += 1

    def sample(
        self,
        name: str,
        values: Dict[str, float],
        vt: Optional[float] = None,
    ) -> None:
        """A counter-track sample (queue depth over time, SDFU hit rate)."""
        self.events.append({
            "ph": "C",
            "name": name,
            "cat": "counter",
            "id": self._next_id,
            "parent": None,
            "depth": 0,
            "seq": len(self.events),
            "ts": int((wall_now() - self._origin) * 1e6),
            "dur": 0,
            "vt": vt,
            "args": dict(values),
        })
        self._next_id += 1

    # -- introspection / export ----------------------------------------
    def open_spans(self) -> int:
        """Number of spans begun but not yet ended (0 after a clean run)."""
        return len(self._stack)

    def virtual_sequence(self) -> List[Tuple[str, Optional[float]]]:
        """Deterministic fingerprint: ``(name, vt)`` for spans/instants in
        begin order.  Wall-clock fields are excluded on purpose."""
        return [
            (event["name"], event["vt"])
            for event in self.events
            if event["ph"] in ("X", "i")
        ]

    def to_chrome(
        self, other_data: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON object (serialize with json.dump)."""
        trace_events: List[Dict[str, Any]] = []
        for event in self.events:
            args = dict(event["args"])
            if event["vt"] is not None:
                args["vt"] = event["vt"]
            chrome: Dict[str, Any] = {
                "name": event["name"],
                "cat": event["cat"] or "repro",
                "ph": event["ph"],
                "ts": event["ts"],
                "pid": 0,
                "tid": 0,
                "args": args,
            }
            if event["ph"] == "X":
                chrome["dur"] = event["dur"]
            elif event["ph"] == "i":
                chrome["s"] = "t"
            trace_events.append(chrome)
        return {
            "traceEvents": trace_events,
            "otherData": dict(other_data or {}),
        }

    def write_chrome(
        self, path: str, other_data: Optional[Dict[str, Any]] = None
    ) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(other_data), handle)

    def write_jsonl(self, path_or_file: "str | IO[str]") -> None:
        """One event per line, native schema (id/parent/depth/vt intact)."""
        if isinstance(path_or_file, str):
            with open(path_or_file, "w", encoding="utf-8") as handle:
                self._dump_lines(handle)
        else:
            self._dump_lines(path_or_file)

    def _dump_lines(self, handle: IO[str]) -> None:
        for event in self.events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")


class NullTracer:
    """Disabled tracer: records nothing, allocates nothing."""

    __slots__ = ()
    enabled = False

    _HANDLE: "_NullHandle"

    @property
    def events(self) -> List[Dict[str, Any]]:
        # A fresh list per read: an append by a caller can never accumulate
        # into state shared by every disabled tracer in the process.
        return []

    def begin(
        self,
        name: str,
        cat: str = "",
        vt: Optional[float] = None,
        **args: Any,
    ) -> Dict[str, Any]:
        return _NULL_EVENT

    def end(self, **args: Any) -> None:
        pass

    def span(
        self,
        name: str,
        cat: str = "",
        vt: Optional[float] = None,
        **args: Any,
    ) -> "_NullHandle":
        return _NULL_HANDLE

    def instant(
        self,
        name: str,
        cat: str = "",
        vt: Optional[float] = None,
        **args: Any,
    ) -> None:
        pass

    def sample(
        self,
        name: str,
        values: Dict[str, float],
        vt: Optional[float] = None,
    ) -> None:
        pass

    def open_spans(self) -> int:
        return 0

    def virtual_sequence(self) -> List[Tuple[str, Optional[float]]]:
        return []

    def to_chrome(
        self, other_data: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        return {"traceEvents": [], "otherData": dict(other_data or {})}


class _NullHandle:
    __slots__ = ()

    @property
    def event(self) -> Dict[str, Any]:
        # Writes land in a throwaway dict instead of a class-level one
        # shared across threads.
        return {"args": {}}

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_HANDLE = _NullHandle()
_NULL_EVENT: Dict[str, Any] = {}
NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# parsing / reconstruction (used by the report CLI and round-trip tests)
# ----------------------------------------------------------------------
def read_jsonl(path_or_file: "str | IO[str]") -> List[Dict[str, Any]]:
    """Parse a line-JSON event log back into event dicts (seq order)."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle if line.strip()]
    else:
        events = [
            json.loads(line) for line in path_or_file if line.strip()
        ]
    events.sort(key=lambda event: event.get("seq", 0))
    return events


def span_tree(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rebuild the span forest from flat events via parent links.

    Returns root nodes ``{"name", "vt", "id", "children": [...]}`` —
    the deterministic skeleton used by the round-trip test (wall-clock
    fields deliberately dropped).
    """
    nodes: Dict[int, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    for event in events:
        if event["ph"] not in ("X", "i"):
            continue
        node = {
            "name": event["name"],
            "vt": event.get("vt"),
            "id": event["id"],
            "children": [],
        }
        nodes[event["id"]] = node
        parent_id = event.get("parent")
        if parent_id is not None and parent_id in nodes:
            nodes[parent_id]["children"].append(node)
        else:
            roots.append(node)
    return roots
