"""fluxwhy — per-job scheduling decision provenance (ISSUE 10 tentpole).

At scale the operationally hard question is not *whether* a job matched
but *why it didn't*: which predicate, aggregate filter, exclusivity
conflict, planner window, admission policy or degradation rung pruned it,
and where in the tree.  ``dfu.failed`` is a single opaque counter; this
module turns it into a structured explain-tree.

The :class:`DecisionRecorder` rides on the :class:`~repro.obs.Observer`
(one per observed simulator) and captures, for every job on every
dispatch cycle:

* **admission verdicts** — admit / reject / shed / defer / promote, with
  the :class:`~repro.resilience.OverloadController` policy that fired;
* **attempt records** — one per scheduling attempt
  (:class:`~repro.sched.queue._SchedAttempt` scope), with verb, outcome
  and degradation level;
* **match-failure attribution** — per-vertex prune reasons from the
  traverser (:data:`PRUNE_REASONS` taxonomy) aggregated into
  ``reason|type`` counts with bounded example vertices, plus
  request-level failure verdicts (count shortfall, type mismatch,
  planner time conflict, ...).

Determinism: every recorded field derives from simulator state (virtual
time, cycle index, graph names) — never from wall clocks — so dual runs
of the same workload export byte-identical provenance (FluxSan's
nondeterminism detector stays green).  Disabled runs pay only the
null-twin pattern: :data:`NULL_WHY` no-ops every call, and the hot
traversal loop guards each probe behind one hoisted ``enabled`` bool.

Exposure:

* ``report.explain(job_id)`` on
  :class:`~repro.sched.simulator.SimulationReport`;
* ``python -m repro.obs why TRACE`` renders explain-trees and per-cycle
  unsat summaries from an exported trace;
* the provenance export rides in the Chrome trace's
  ``otherData.provenance``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "DecisionRecorder",
    "NullDecisionRecorder",
    "NULL_WHY",
    "PRUNE_REASONS",
    "FAIL_KINDS",
    "render_explain",
    "render_cycle_summary",
]

#: Per-vertex prune-reason taxonomy (traverser probe sites).
PRUNE_REASONS: Tuple[str, ...] = (
    "down",        # vertex drained/down closes its whole subtree
    "exclusive",   # exclusivity overlap (vertex exclusively held)
    "filter",      # aggregate pruning-filter miss (SDFU prune, §3.4)
    "predicate",   # requires-expression mismatch
    "quantity",    # per-vertex quantity shortfall
)

#: Request-level failure verdicts (one attempt may carry several, e.g. an
#: inner core shortfall explaining an outer node shortfall).
FAIL_KINDS: Tuple[str, ...] = (
    "type",               # no vertex of the requested type in the region
    "no_candidates",      # every candidate was pruned (see prune counts)
    "count",              # fewer feasible vertices than requested
    "quantity",           # pool units gathered fell short of the minimum
    "horizon",            # request extends beyond the planning horizon
    "planner_time",       # avail_time_first found no feasible window
    "reserve_exhausted",  # reservation search ran out of candidate times
    "deadline",           # attempt cut short by a scheduling deadline
)

_REASON_LABELS = {
    "down": "vertex down/drained",
    "exclusive": "exclusivity conflict",
    "filter": "aggregate-filter miss",
    "predicate": "predicate (requires) mismatch",
    "quantity": "per-vertex quantity shortfall",
}

_FAIL_LABELS = {
    "type": "type mismatch",
    "no_candidates": "all candidates pruned",
    "count": "count shortfall",
    "quantity": "quantity shortfall",
    "horizon": "planner horizon exceeded",
    "planner_time": "planner time conflict",
    "reserve_exhausted": "reservation search exhausted",
    "deadline": "scheduling deadline",
}

SCHEMA = "fluxwhy-v1"


def _fmt_vt(vt: Optional[float]) -> str:
    if vt is None:
        return "-"
    value = float(vt)
    if value.is_integer():
        return str(int(value))
    return repr(value)


class _Attempt:
    """One scheduling attempt being recorded (mutable while open)."""

    __slots__ = (
        "job_id", "cycle", "vt", "verb", "outcome", "level",
        "prune", "examples", "fails", "fails_dropped", "kept",
    )

    def __init__(
        self, job_id: int, cycle: Optional[int], vt: Optional[float],
        verb: str, kept: bool,
    ) -> None:
        self.job_id = job_id
        self.cycle = cycle
        self.vt = vt
        self.verb = verb
        self.outcome = "open"
        self.level: Optional[str] = None
        self.prune: Dict[str, int] = {}
        self.examples: Dict[str, List[str]] = {}
        self.fails: List[Dict[str, Any]] = []
        self.fails_dropped = 0
        #: False when the per-job attempt cap dropped this record
        self.kept = kept

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "cycle": self.cycle,
            "vt": self.vt,
            "verb": self.verb,
            "outcome": self.outcome,
        }
        if self.level is not None:
            out["level"] = self.level
        if self.prune:
            out["prune"] = dict(self.prune)
            out["examples"] = {k: list(v) for k, v in self.examples.items()}
        if self.fails:
            out["fails"] = [dict(f) for f in self.fails]
        if self.fails_dropped:
            out["fails_dropped"] = self.fails_dropped
        return out


class DecisionRecorder:
    """Structured per-job decision provenance for one observed run.

    Bounded by design: at most ``max_attempts_per_job`` attempt records
    are kept per job (later ones still count in ``dropped`` and in cycle
    summaries), ``top_k`` example vertex names per prune bucket, and
    ``max_cycles`` per-cycle summary rows — a week-long run cannot grow
    the recorder without bound.
    """

    enabled = True

    __slots__ = (
        "top_k", "max_attempts_per_job", "max_fails", "max_cycles",
        "_jobs", "_cycles", "_cycles_dropped", "_open",
        "_cycle_index", "_cycle_vt", "_cycle_counts", "_cycle_prune",
        "_total_attempts", "_total_failed", "_total_events",
    )

    def __init__(
        self,
        top_k: int = 3,
        max_attempts_per_job: int = 64,
        max_fails: int = 16,
        max_cycles: int = 512,
    ) -> None:
        self.top_k = top_k
        self.max_attempts_per_job = max_attempts_per_job
        self.max_fails = max_fails
        self.max_cycles = max_cycles
        #: job_id -> {"name", "events", "attempts", "dropped"}
        self._jobs: Dict[int, Dict[str, Any]] = {}
        self._cycles: List[Dict[str, Any]] = []
        self._cycles_dropped = 0
        self._open: Optional[_Attempt] = None
        self._cycle_index = -1
        self._cycle_vt: Optional[float] = None
        self._cycle_counts = {"attempts": 0, "matched": 0, "failed": 0}
        self._cycle_prune: Dict[str, int] = {}
        self._total_attempts = 0
        self._total_failed = 0
        self._total_events = 0

    # -- job bookkeeping ------------------------------------------------
    def _job(self, job_id: int, name: str = "") -> Dict[str, Any]:
        entry = self._jobs.get(job_id)
        if entry is None:
            entry = {"name": name, "events": [], "attempts": [], "dropped": 0}
            self._jobs[job_id] = entry
        elif name and not entry["name"]:
            entry["name"] = name
        return entry

    # -- cycle lifecycle ------------------------------------------------
    def begin_cycle(self, vt: float) -> None:
        """Open a new dispatch cycle; flushes the previous cycle summary."""
        self._flush_cycle()
        self._cycle_index += 1
        self._cycle_vt = vt

    def _flush_cycle(self) -> None:
        if self._cycle_index < 0 or not self._cycle_counts["attempts"]:
            self._cycle_counts = {"attempts": 0, "matched": 0, "failed": 0}
            self._cycle_prune = {}
            return
        if len(self._cycles) >= self.max_cycles:
            self._cycles_dropped += 1
        else:
            top = sorted(
                self._cycle_prune.items(), key=lambda kv: (-kv[1], kv[0])
            )[: self.top_k]
            row: Dict[str, Any] = {
                "cycle": self._cycle_index,
                "vt": self._cycle_vt,
            }
            row.update(self._cycle_counts)
            if top:
                row["top"] = [[key, count] for key, count in top]
            self._cycles.append(row)
        self._cycle_counts = {"attempts": 0, "matched": 0, "failed": 0}
        self._cycle_prune = {}

    # -- attempt lifecycle ----------------------------------------------
    def begin_attempt(
        self, job_id: int, vt: Optional[float], verb: str, name: str = ""
    ) -> None:
        """Open an attempt record; traverser probes accumulate into it."""
        entry = self._job(job_id, name)
        kept = len(entry["attempts"]) < self.max_attempts_per_job
        attempt = _Attempt(
            job_id, self._cycle_index if self._cycle_index >= 0 else None,
            vt, verb, kept,
        )
        if kept:
            entry["attempts"].append(attempt)
        else:
            entry["dropped"] += 1
        self._open = attempt

    def end_attempt(self, outcome: str, level: Optional[str] = None) -> None:
        """Close the open attempt with its outcome (no-op when none open)."""
        attempt = self._open
        if attempt is None:
            return
        attempt.outcome = outcome
        attempt.level = level
        self._open = None
        self._total_attempts += 1
        self._cycle_counts["attempts"] += 1
        if outcome in ("matched", "reserved"):
            self._cycle_counts["matched"] += 1
        elif outcome in ("failed", "unsat", "deadline"):
            self._total_failed += 1
            self._cycle_counts["failed"] += 1

    # -- traverser probes -----------------------------------------------
    def prune(self, reason: str, rtype: str, vertex: str) -> None:
        """One vertex (and its subtree) pruned during candidate collection."""
        attempt = self._open
        if attempt is None:
            return
        key = f"{reason}|{rtype}"
        count = attempt.prune.get(key, 0)
        attempt.prune[key] = count + 1
        if count < self.top_k:
            attempt.examples.setdefault(key, []).append(vertex)
        self._cycle_prune[key] = self._cycle_prune.get(key, 0) + 1

    def fail(self, kind: str, **detail: Any) -> None:
        """A request-level failure verdict for the open attempt."""
        attempt = self._open
        if attempt is None:
            return
        if len(attempt.fails) >= self.max_fails:
            attempt.fails_dropped += 1
            return
        record: Dict[str, Any] = {"kind": kind}
        record.update(detail)
        attempt.fails.append(record)

    def mark(self) -> int:
        """Opaque progress marker: prune events recorded so far in the open
        attempt (lets the traverser tell "nothing of that type exists" from
        "everything was pruned")."""
        attempt = self._open
        if attempt is None:
            return 0
        return sum(attempt.prune.values()) + len(attempt.fails)

    # -- admission / lifecycle events ------------------------------------
    def event(
        self, job_id: int, vt: Optional[float], event: str,
        name: str = "", **detail: Any,
    ) -> None:
        """Record an admission or lifecycle verdict for ``job_id``."""
        entry = self._job(job_id, name)
        record: Dict[str, Any] = {"vt": vt, "event": event}
        record.update(detail)
        entry["events"].append(record)
        self._total_events += 1

    # -- export ----------------------------------------------------------
    def export(self) -> Dict[str, Any]:
        """JSON-able snapshot of everything recorded (non-destructive)."""
        jobs: Dict[str, Any] = {}
        for job_id in sorted(self._jobs):
            entry = self._jobs[job_id]
            jobs[str(job_id)] = {
                "name": entry["name"],
                "events": [dict(e) for e in entry["events"]],
                "attempts": [a.as_dict() for a in entry["attempts"]],
                "dropped": entry["dropped"],
            }
        cycles = [dict(row) for row in self._cycles]
        # the in-progress cycle, rendered without mutating recorder state
        if self._cycle_index >= 0 and self._cycle_counts["attempts"]:
            if len(cycles) >= self.max_cycles:
                pass  # counted as dropped on the next flush
            else:
                top = sorted(
                    self._cycle_prune.items(), key=lambda kv: (-kv[1], kv[0])
                )[: self.top_k]
                row = {"cycle": self._cycle_index, "vt": self._cycle_vt}
                row.update(self._cycle_counts)
                if top:
                    row["top"] = [[key, count] for key, count in top]
                cycles.append(row)
        return {
            "schema": SCHEMA,
            "top_k": self.top_k,
            "jobs": jobs,
            "cycles": cycles,
            "cycles_dropped": self._cycles_dropped,
            "totals": {
                "attempts": self._total_attempts,
                "failed": self._total_failed,
                "events": self._total_events,
            },
        }

    def explain(self, job_id: int) -> str:
        """Rendered explain-tree for one job (see :func:`render_explain`)."""
        return render_explain(self.export(), job_id)


class NullDecisionRecorder:
    """Disabled recorder: records nothing, allocates nothing."""

    __slots__ = ()
    enabled = False

    def begin_cycle(self, vt: float) -> None:
        pass

    def begin_attempt(
        self, job_id: int, vt: Optional[float], verb: str, name: str = ""
    ) -> None:
        pass

    def end_attempt(self, outcome: str, level: Optional[str] = None) -> None:
        pass

    def prune(self, reason: str, rtype: str, vertex: str) -> None:
        pass

    def fail(self, kind: str, **detail: Any) -> None:
        pass

    def mark(self) -> int:
        return 0

    def event(
        self, job_id: int, vt: Optional[float], event: str,
        name: str = "", **detail: Any,
    ) -> None:
        pass

    def export(self) -> Dict[str, Any]:
        return {}

    def explain(self, job_id: int) -> str:
        return ""


NULL_WHY = NullDecisionRecorder()


# ----------------------------------------------------------------------
# rendering (shared by report.explain and `python -m repro.obs why`)
# ----------------------------------------------------------------------
def _blocking_lines(attempt: Dict[str, Any], top_k: int) -> List[str]:
    """Ranked blocking-constraint lines for one exported attempt."""
    lines: List[str] = []
    rank = 0
    for fail in attempt.get("fails", []):
        rank += 1
        kind = fail.get("kind", "?")
        label = _FAIL_LABELS.get(kind, kind)
        detail = ", ".join(
            f"{key}={fail[key]}"
            for key in sorted(fail)
            if key != "kind" and fail[key] != ""
        )
        lines.append(f"{rank}. {label}" + (f": {detail}" if detail else ""))
    dropped = attempt.get("fails_dropped", 0)
    if dropped:
        lines.append(f"   (+{dropped} more failure verdicts)")
    prune = attempt.get("prune", {})
    examples = attempt.get("examples", {})
    ordered = sorted(prune.items(), key=lambda kv: (-kv[1], kv[0]))
    for key, count in ordered[:top_k]:
        rank += 1
        reason, _, rtype = key.partition("|")
        label = _REASON_LABELS.get(reason, reason)
        sample = ", ".join(examples.get(key, []))
        suffix = f" (e.g. {sample})" if sample else ""
        lines.append(
            f"{rank}. {label}: {rtype} x{count} subtree(s) pruned{suffix}"
        )
    if len(ordered) > top_k:
        rest = sum(count for _, count in ordered[top_k:])
        lines.append(
            f"   (+{len(ordered) - top_k} more prune buckets, "
            f"{rest} subtrees)"
        )
    return lines


def render_explain(
    provenance: Dict[str, Any], job_id: int, job: Optional[object] = None
) -> str:
    """Render the explain-tree for ``job_id`` from an exported provenance.

    ``job`` optionally supplies live :class:`~repro.sched.job.Job` state
    (final state / cancel reason) for the header; the CLI path has only
    the provenance document.
    """
    entry = (provenance.get("jobs") or {}).get(str(job_id))
    top_k = int(provenance.get("top_k", 3))
    header = f"job {job_id}"
    if entry is not None and entry.get("name"):
        header += f" ({entry['name']})"
    if job is not None:
        state = getattr(job, "state", None)
        reason = getattr(job, "cancel_reason", None)
        if state is not None:
            header += f" — {state.value}"
        if reason is not None:
            header += f" ({reason.value})"
        degraded = getattr(job, "degraded", None)
        if degraded:
            header += f" [degraded={degraded}]"
    if entry is None:
        return header + "\n  (no decisions recorded for this job)"
    lines = [header]
    for event in entry.get("events", []):
        detail = ", ".join(
            f"{key}={event[key]}"
            for key in sorted(event)
            if key not in ("vt", "event") and event[key] != ""
        )
        lines.append(
            f"├─ t={_fmt_vt(event.get('vt'))} {event.get('event', '?')}"
            + (f" ({detail})" if detail else "")
        )
    attempts = entry.get("attempts", [])
    for index, attempt in enumerate(attempts):
        last = index == len(attempts) - 1
        branch = "└─" if last else "├─"
        stem = "   " if last else "│  "
        cycle = attempt.get("cycle")
        where = f" [cycle {cycle}]" if cycle is not None else ""
        level = attempt.get("level")
        level_text = f" level={level}" if level else ""
        lines.append(
            f"{branch} t={_fmt_vt(attempt.get('vt'))}{where} "
            f"{attempt.get('verb', '?')} -> "
            f"{attempt.get('outcome', '?')}{level_text}"
        )
        blocking = _blocking_lines(attempt, top_k)
        if blocking:
            lines.append(f"{stem}   blocking constraints:")
            for text in blocking:
                lines.append(f"{stem}     {text}")
    dropped = entry.get("dropped", 0)
    if dropped:
        lines.append(f"   ({dropped} further attempts not retained)")
    return "\n".join(lines)


def render_cycle_summary(provenance: Dict[str, Any]) -> str:
    """Per-cycle unsat summary table from an exported provenance."""
    cycles = provenance.get("cycles") or []
    if not cycles:
        return "(no scheduling cycles recorded)"
    lines = ["cycle        t  attempts  matched  failed  top blockers"]
    for row in cycles:
        top = row.get("top") or []
        rendered = ", ".join(f"{key} x{count}" for key, count in top)
        lines.append(
            f"{row.get('cycle', 0):>5} {_fmt_vt(row.get('vt')):>8}  "
            f"{row.get('attempts', 0):>8}  {row.get('matched', 0):>7}  "
            f"{row.get('failed', 0):>6}  {rendered}"
        )
    dropped = provenance.get("cycles_dropped", 0)
    if dropped:
        lines.append(f"(+{dropped} cycles beyond the retention cap)")
    return "\n".join(lines)
