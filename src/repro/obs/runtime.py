"""Process-global active observer.

Planner objects are owned by resource vertices, not by the simulator, so
threading an observer handle down to every ``Planner.avail_time_first``
call would contaminate a dozen signatures.  Instead the simulator
activates its observer here for the duration of a run, and planner-layer
instrumentation reads :data:`ACTIVE` — one module-attribute load on the
hot path, and the default :data:`~repro.obs.NULL_OBSERVER` makes every
downstream call a no-op.

Nested activation is not supported (last activation wins); simulators
restore the previous observer on ``deactivate`` so interleaved runs in
one process stay correct as long as their lifetimes nest.
"""

from __future__ import annotations

import os
from typing import List

from .metrics import NULL_REGISTRY, NullRegistry, MetricsRegistry  # noqa: F401
from .trace import NULL_TRACER, NullTracer, Tracer  # noqa: F401

__all__ = ["Observer", "NULL_OBSERVER", "ACTIVE", "activate", "deactivate",
           "active", "env_enabled", "resolve"]


class Observer:
    """A metrics registry + tracer pair with one ``enabled`` switch."""

    __slots__ = ("enabled", "metrics", "tracer")

    def __init__(
        self,
        enabled: bool = True,
        metrics: "MetricsRegistry | NullRegistry | None" = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        self.enabled = enabled
        if enabled:
            self.metrics = metrics if metrics is not None else MetricsRegistry()
            self.tracer = tracer if tracer is not None else Tracer()
        else:
            self.metrics = NULL_REGISTRY
            self.tracer = NULL_TRACER


NULL_OBSERVER = Observer(enabled=False)

#: The currently active observer; read directly on hot paths.
ACTIVE: Observer = NULL_OBSERVER

_PREVIOUS: List[Observer] = []


def activate(observer: Observer) -> None:
    """Make ``observer`` the process-global active observer."""
    global ACTIVE
    _PREVIOUS.append(ACTIVE)
    ACTIVE = observer


def deactivate() -> None:
    """Restore the observer that was active before the last activate()."""
    global ACTIVE
    ACTIVE = _PREVIOUS.pop() if _PREVIOUS else NULL_OBSERVER


def active() -> Observer:
    """The currently active observer (NULL_OBSERVER when none)."""
    return ACTIVE


def env_enabled() -> bool:
    """Whether ``FLUXOBS`` requests observability (same idiom as FLUXSAN)."""
    return os.environ.get("FLUXOBS", "") not in ("", "0")


def resolve(observe: "Observer | bool | None") -> Observer:
    """Normalize a user-facing ``observe=`` argument to an Observer.

    ``None`` defers to the ``FLUXOBS`` environment variable; ``True``
    builds a fresh enabled observer; ``False`` gives the null one; an
    :class:`Observer` instance passes through (shared registries allowed).
    """
    if isinstance(observe, Observer):
        return observe
    if observe is None:
        observe = env_enabled()
    return Observer(enabled=True) if observe else NULL_OBSERVER
