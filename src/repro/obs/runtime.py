"""Context-local active observer.

Planner objects are owned by resource vertices, not by the simulator, so
threading an observer handle down to every ``Planner.avail_time_first``
call would contaminate a dozen signatures.  Instead the simulator
activates its observer here for the duration of a cycle, and
planner-layer instrumentation reads ``ACTIVE.get()`` — one C-level
:class:`contextvars.ContextVar` lookup on the hot path, and the default
:data:`~repro.obs.NULL_OBSERVER` makes every downstream call a no-op.

:data:`ACTIVE` is a :class:`~contextvars.ContextVar`, so each thread (and
each asyncio task) sees its own activation: two simulators running
concurrently on separate threads never observe each other's metrics —
the first requirement for the scheduling-as-a-service work (ROADMAP
item 1), and the remediation for fluxrace's RACE001 finding against the
old process-global ``ACTIVE`` + ``_PREVIOUS`` pair.

Nesting is strict LIFO per context: :func:`activate` returns a token and
:func:`deactivate` restores the previous observer, raising
:class:`ObserverStateError` on a misnested or unmatched ``deactivate``
instead of silently popping the wrong observer.
"""

from __future__ import annotations

import os
from contextvars import ContextVar, Token
from typing import Optional, Tuple

from ..errors import FluxionError
from .metrics import NULL_REGISTRY, NullRegistry, MetricsRegistry  # noqa: F401
from .trace import NULL_TRACER, NullTracer, Tracer  # noqa: F401
from .why import NULL_WHY, DecisionRecorder, NullDecisionRecorder  # noqa: F401

__all__ = ["Observer", "ObserverStateError", "NULL_OBSERVER", "ACTIVE",
           "activate", "deactivate", "active", "env_enabled", "resolve"]


class ObserverStateError(FluxionError):
    """Raised on a misnested or unmatched observer ``deactivate()``."""


class Observer:
    """Metrics registry + tracer + decision recorder, one ``enabled`` switch.

    ``why`` follows the same null-twin contract as the other two legs:
    pass ``why=False`` to run an otherwise-enabled observer without
    decision provenance (the overhead benchmark compares exactly this),
    or a :class:`~repro.obs.why.DecisionRecorder` to share/configure one.
    """

    __slots__ = ("enabled", "metrics", "tracer", "why")

    def __init__(
        self,
        enabled: bool = True,
        metrics: "MetricsRegistry | NullRegistry | None" = None,
        tracer: "Tracer | NullTracer | None" = None,
        why: "DecisionRecorder | NullDecisionRecorder | bool | None" = None,
    ) -> None:
        self.enabled = enabled
        if enabled:
            self.metrics = metrics if metrics is not None else MetricsRegistry()
            self.tracer = tracer if tracer is not None else Tracer()
            if why is None or why is True:
                self.why = DecisionRecorder()
            elif why is False:
                self.why = NULL_WHY
            else:
                self.why = why
        else:
            self.metrics = NULL_REGISTRY
            self.tracer = NULL_TRACER
            self.why = NULL_WHY


NULL_OBSERVER = Observer(enabled=False)

#: The active observer for the current thread/task; hot paths call
#: ``ACTIVE.get()``.
ACTIVE: "ContextVar[Observer]" = ContextVar(
    "fluxobs_active", default=NULL_OBSERVER
)

#: Per-context stack of activation tokens, used to enforce strict LIFO
#: nesting.  A tuple (not a list) so each context owns an immutable value —
#: mutation happens by setting a new tuple, never by aliasing shared state.
_TOKENS: "ContextVar[Tuple[Token, ...]]" = ContextVar(
    "fluxobs_tokens", default=()
)


def activate(observer: Observer) -> "Token[Observer]":
    """Make ``observer`` active for the current context; returns a token.

    Pass the token back to :func:`deactivate` to assert the expected
    nesting; calling ``deactivate()`` with no token restores the most
    recent activation in this context.
    """
    token = ACTIVE.set(observer)
    _TOKENS.set(_TOKENS.get() + (token,))
    return token


def deactivate(token: "Optional[Token[Observer]]" = None) -> None:
    """Restore the observer active before the matching :func:`activate`.

    Raises :class:`ObserverStateError` when there is no activation to undo
    in this context, or when ``token`` is not the most recent activation
    (strict LIFO — a silently mispopped observer would cross-contaminate
    whoever activated in between).
    """
    tokens = _TOKENS.get()
    if not tokens:
        raise ObserverStateError(
            "deactivate() without a matching activate() in this context"
        )
    if token is None:
        token = tokens[-1]
    elif token is not tokens[-1]:
        raise ObserverStateError(
            "misnested deactivate(): the supplied token is not the most "
            "recent activation in this context; deactivate inner "
            "activations first"
        )
    try:
        ACTIVE.reset(token)
    except ValueError as exc:
        # reset in a different context, or a token used twice
        raise ObserverStateError(
            f"observer activation cannot be undone here: {exc}"
        ) from exc
    _TOKENS.set(tokens[:-1])


def active() -> Observer:
    """The currently active observer (NULL_OBSERVER when none)."""
    return ACTIVE.get()


def env_enabled() -> bool:
    """Whether ``FLUXOBS`` requests observability (same idiom as FLUXSAN)."""
    return os.environ.get("FLUXOBS", "") not in ("", "0")


def resolve(observe: "Observer | bool | None") -> Observer:
    """Normalize a user-facing ``observe=`` argument to an Observer.

    ``None`` defers to the ``FLUXOBS`` environment variable; ``True``
    builds a fresh enabled observer; ``False`` gives the null one; an
    :class:`Observer` instance passes through (shared registries allowed).
    """
    if isinstance(observe, Observer):
        return observe
    if observe is None:
        observe = env_enabled()
    return Observer(enabled=True) if observe else NULL_OBSERVER
