"""``python -m repro.obs`` — trace report and schema validation CLI.

Commands
--------
``report <trace>``
    Read a trace (line-JSON event log or Chrome ``trace_event`` JSON) and
    print the exact-profiler output: per-span callers/callees table and an
    ASCII flame summary, plus any metrics snapshot embedded in the
    Chrome export's ``otherData``.

``validate <trace.json>``
    Check that a file is structurally valid Chrome ``trace_event`` JSON
    (used by the CI observability job before uploading the artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

from .profile import aggregate
from .trace import read_jsonl

__all__ = ["main", "chrome_to_events", "validate_chrome"]


def chrome_to_events(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Convert Chrome ``traceEvents`` back to native tracer events.

    The Chrome format drops span ids and parent links, so nesting is
    recovered from interval containment: complete events are replayed in
    start order and a stack of still-open intervals supplies parents.
    """
    complete = [
        event for event in document.get("traceEvents", [])
        if event.get("ph") == "X"
    ]
    complete.sort(key=lambda event: (event["ts"], -event.get("dur", 0)))
    events: List[Dict[str, Any]] = []
    stack: List[Dict[str, Any]] = []  # native events still open
    for index, chrome in enumerate(complete):
        start = chrome["ts"]
        end = start + chrome.get("dur", 0)
        while stack and start >= stack[-1]["_end"]:
            stack.pop()
        parent = stack[-1] if stack else None
        native = {
            "ph": "X",
            "name": chrome.get("name", "?"),
            "cat": chrome.get("cat", ""),
            "id": index,
            "parent": parent["id"] if parent is not None else None,
            "depth": len(stack),
            "seq": index,
            "ts": start,
            "dur": chrome.get("dur", 0),
            "vt": chrome.get("args", {}).get("vt"),
            "args": chrome.get("args", {}),
            "_end": end,
        }
        events.append(native)
        stack.append(native)
    for event in events:
        del event["_end"]
    return events


def validate_chrome(document: Any) -> List[str]:
    """Structural schema check; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["top level must be a JSON object"]
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["missing 'traceEvents' list"]
    if not trace_events:
        problems.append("'traceEvents' is empty")
    for index, event in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing '{key}'")
        phase = event.get("ph")
        if phase not in ("X", "i", "C", "B", "E", "M"):
            problems.append(f"{where}: unknown phase {phase!r}")
        if phase == "X" and "dur" not in event:
            problems.append(f"{where}: complete event missing 'dur'")
        if not isinstance(event.get("ts", 0), (int, float)):
            problems.append(f"{where}: 'ts' is not a number")
    other = document.get("otherData")
    if other is not None and not isinstance(other, dict):
        problems.append("'otherData' must be an object when present")
    return problems


def _load(path: str) -> "tuple[List[Dict[str, Any]], Dict[str, Any]]":
    """Load a trace file; returns (native events, otherData).

    Both formats start with ``{``, so sniffing the first byte cannot tell
    them apart: a Chrome export is one JSON document with a ``traceEvents``
    key, while the line-JSON log is one event object per line.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except ValueError:
            handle.seek(0)
            return read_jsonl(handle), {}
    if isinstance(document, dict) and "traceEvents" in document:
        return chrome_to_events(document), document.get("otherData", {})
    # a single-line JSONL file parses as one plain event object
    return [document], {}


def _cmd_report(args: argparse.Namespace) -> int:
    events, other_data = _load(args.trace)
    profile = aggregate(events)
    spans = sum(1 for event in events if event.get("ph") == "X")
    print(f"# trace: {args.trace} ({spans} spans, "
          f"{len(events)} events, {profile.wall_total / 1000:.3f} ms traced)")
    print()
    print("## hottest spans (callers marked <-, callees ->)")
    print(profile.table(limit=args.limit))
    print()
    print("## flame summary")
    print(profile.flame())
    metrics = other_data.get("metrics") if isinstance(other_data, dict) else None
    if metrics:
        print()
        print("## metrics snapshot")
        for name in sorted(metrics):
            value = metrics[name]
            if isinstance(value, dict):
                print(f"{name} count={value.get('count')} "
                      f"sum={value.get('sum'):.6f}")
            else:
                print(f"{name} {value}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"{args.trace}: unreadable: {exc}", file=sys.stderr)
        return 1
    problems = validate_chrome(document)
    if problems:
        for problem in problems:
            print(f"{args.trace}: {problem}", file=sys.stderr)
        return 1
    count = len(document["traceEvents"])
    print(f"{args.trace}: valid Chrome trace ({count} events)")
    return 0


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace profiling report and Chrome-trace validation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="profile a trace file")
    report.add_argument("trace", help="JSONL event log or Chrome trace JSON")
    report.add_argument("--limit", type=int, default=30,
                        help="max rows in the span table (default 30)")
    report.set_defaults(func=_cmd_report)

    validate = sub.add_parser("validate", help="schema-check a Chrome trace")
    validate.add_argument("trace", help="Chrome trace JSON file")
    validate.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
