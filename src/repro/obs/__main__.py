"""``python -m repro.obs`` — trace report, decision provenance, validation.

Commands
--------
``report <trace>``
    Read a trace (line-JSON event log or Chrome ``trace_event`` JSON) and
    print the exact-profiler output: per-span callers/callees table and an
    ASCII flame summary, plus any metrics snapshot embedded in the
    Chrome export's ``otherData``.

``why <trace> [--job N]``
    Render fluxwhy decision provenance from a trace export (or a raw
    provenance JSON document): per-job explain-trees — admission
    verdicts, attempt outcomes, top-k blocking constraints — and the
    per-cycle unsat summary.

``validate <trace.json>``
    Check that a file is structurally valid Chrome ``trace_event`` JSON
    (used by the CI observability job before uploading the artifact).

``promcheck <metrics.prom>``
    Scrape-parse a Prometheus text-exposition file the way a scraper
    would: HELP/TYPE headers, sample lines, label syntax, histogram
    bucket monotonicity.  Exit 1 on the first malformation.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Any, Dict, List

from .profile import aggregate
from .trace import read_jsonl
from .why import render_cycle_summary, render_explain

__all__ = [
    "main",
    "chrome_to_events",
    "validate_chrome",
    "validate_prometheus",
]


def chrome_to_events(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Convert Chrome ``traceEvents`` back to native tracer events.

    The Chrome format drops span ids and parent links, so nesting is
    recovered from interval containment: complete events are replayed in
    start order and a stack of still-open intervals supplies parents.
    """
    complete = [
        event for event in document.get("traceEvents", [])
        if event.get("ph") == "X"
    ]
    complete.sort(key=lambda event: (event["ts"], -event.get("dur", 0)))
    events: List[Dict[str, Any]] = []
    stack: List[Dict[str, Any]] = []  # native events still open
    for index, chrome in enumerate(complete):
        start = chrome["ts"]
        end = start + chrome.get("dur", 0)
        while stack and start >= stack[-1]["_end"]:
            stack.pop()
        parent = stack[-1] if stack else None
        native = {
            "ph": "X",
            "name": chrome.get("name", "?"),
            "cat": chrome.get("cat", ""),
            "id": index,
            "parent": parent["id"] if parent is not None else None,
            "depth": len(stack),
            "seq": index,
            "ts": start,
            "dur": chrome.get("dur", 0),
            "vt": chrome.get("args", {}).get("vt"),
            "args": chrome.get("args", {}),
            "_end": end,
        }
        events.append(native)
        stack.append(native)
    for event in events:
        del event["_end"]
    return events


def validate_chrome(document: Any) -> List[str]:
    """Structural schema check; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["top level must be a JSON object"]
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["missing 'traceEvents' list"]
    if not trace_events:
        problems.append("'traceEvents' is empty")
    for index, event in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing '{key}'")
        phase = event.get("ph")
        if phase not in ("X", "i", "C", "B", "E", "M"):
            problems.append(f"{where}: unknown phase {phase!r}")
        if phase == "X" and "dur" not in event:
            problems.append(f"{where}: complete event missing 'dur'")
        if not isinstance(event.get("ts", 0), (int, float)):
            problems.append(f"{where}: 'ts' is not a number")
    other = document.get("otherData")
    if other is not None and not isinstance(other, dict):
        problems.append("'otherData' must be an object when present")
    return problems


def _load(path: str) -> "tuple[List[Dict[str, Any]], Dict[str, Any]]":
    """Load a trace file; returns (native events, otherData).

    Both formats start with ``{``, so sniffing the first byte cannot tell
    them apart: a Chrome export is one JSON document with a ``traceEvents``
    key, while the line-JSON log is one event object per line.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except ValueError:
            handle.seek(0)
            return read_jsonl(handle), {}
    if isinstance(document, dict) and "traceEvents" in document:
        return chrome_to_events(document), document.get("otherData", {})
    # a single-line JSONL file parses as one plain event object
    return [document], {}


def _cmd_report(args: argparse.Namespace) -> int:
    events, other_data = _load(args.trace)
    profile = aggregate(events)
    spans = sum(1 for event in events if event.get("ph") == "X")
    if not spans:
        # A schema-valid but span-free trace (e.g. an unobserved run's
        # export) is not an error: say so instead of a blank table.
        print(f"# trace: {args.trace}: empty trace (0 spans, "
              f"{len(events)} events) — nothing to profile")
        return 0
    print(f"# trace: {args.trace} ({spans} spans, "
          f"{len(events)} events, {profile.wall_total / 1000:.3f} ms traced)")
    print()
    print("## hottest spans (callers marked <-, callees ->)")
    print(profile.table(limit=args.limit))
    print()
    print("## flame summary")
    print(profile.flame())
    metrics = other_data.get("metrics") if isinstance(other_data, dict) else None
    if metrics:
        print()
        print("## metrics snapshot")
        for name in sorted(metrics):
            value = metrics[name]
            if isinstance(value, dict):
                print(f"{name} count={value.get('count')} "
                      f"sum={value.get('sum'):.6f}")
            else:
                print(f"{name} {value}")
    return 0


def _load_provenance(path: str) -> "Dict[str, Any] | None":
    """Provenance dict from a trace export or a raw fluxwhy JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except ValueError:
            return None
    if not isinstance(document, dict):
        return None
    if document.get("schema") == "fluxwhy-v1":
        return document
    other = document.get("otherData")
    if isinstance(other, dict):
        provenance = other.get("provenance")
        if isinstance(provenance, dict):
            return provenance
    return None


def _cmd_why(args: argparse.Namespace) -> int:
    provenance = _load_provenance(args.trace)
    if provenance is None:
        print(
            f"{args.trace}: no decision provenance found (run with "
            "observe=True / FLUXOBS=1 and export_trace, or pass a "
            "fluxwhy-v1 JSON document)",
            file=sys.stderr,
        )
        return 1
    jobs = provenance.get("jobs") or {}
    if args.job is not None:
        print(render_explain(provenance, args.job))
        return 0
    print(f"# fluxwhy: {args.trace} ({len(jobs)} jobs)")
    for job_key in sorted(jobs, key=int):
        print()
        print(render_explain(provenance, int(job_key)))
    print()
    print("# per-cycle summary")
    print(render_cycle_summary(provenance))
    return 0


# One sample line: name, optional {labels}, then a number.
_PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\",?)*\})?"
    r" (-?[0-9.e+-]+|NaN|[+-]Inf)$"
)


def validate_prometheus(text: str) -> List[str]:
    """Scrape-parse Prometheus exposition text; returns problems found.

    Deliberately small (no external client library): checks header
    syntax, HELP/TYPE-before-samples ordering, sample-line syntax, and
    that every histogram's cumulative buckets are monotonic and agree
    with its ``_count``.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    buckets: Dict[str, List[float]] = {}
    counts: Dict[str, float] = {}
    for number, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not parts[2]:
                problems.append(f"line {number}: malformed {parts[1]} header")
                continue
            if parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    problems.append(
                        f"line {number}: unknown TYPE {kind!r}"
                    )
                typed[parts[2]] = kind
            continue
        if line.startswith("#"):
            continue  # plain comment
        match = _PROM_SAMPLE.match(line)
        if match is None:
            problems.append(f"line {number}: unparseable sample: {line!r}")
            continue
        name, labels = match.group(1), match.group(2) or ""
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            problems.append(
                f"line {number}: sample {name!r} has no preceding # TYPE"
            )
        if name.endswith("_bucket"):
            le = re.search(r'le="([^"]+)"', labels)
            if le is None:
                problems.append(
                    f"line {number}: histogram bucket without le label"
                )
                continue
            series = base + labels[: labels.find('le="')]
            buckets.setdefault(series, []).append(float(match.group(3)))
        elif name.endswith("_count") and typed.get(base) == "histogram":
            counts[base + labels] = float(match.group(3))
    for series, values in buckets.items():
        if values != sorted(values):
            problems.append(
                f"histogram {series!r}: bucket counts not cumulative"
            )
    for series, values in buckets.items():
        key = series.rstrip("{,")
        total = counts.get(key, counts.get(series))
        if total is not None and values and values[-1] != total:
            problems.append(
                f"histogram {series!r}: +Inf bucket {values[-1]:g} "
                f"!= _count {total:g}"
            )
    return problems


def _cmd_promcheck(args: argparse.Namespace) -> int:
    try:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        print(f"{args.metrics}: unreadable: {exc}", file=sys.stderr)
        return 1
    problems = validate_prometheus(text)
    if problems:
        for problem in problems:
            print(f"{args.metrics}: {problem}", file=sys.stderr)
        return 1
    families = sum(1 for line in text.splitlines()
                   if line.startswith("# TYPE "))
    print(f"{args.metrics}: valid Prometheus exposition "
          f"({families} families)")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"{args.trace}: unreadable: {exc}", file=sys.stderr)
        return 1
    problems = validate_chrome(document)
    if problems:
        for problem in problems:
            print(f"{args.trace}: {problem}", file=sys.stderr)
        return 1
    count = len(document["traceEvents"])
    print(f"{args.trace}: valid Chrome trace ({count} events)")
    return 0


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace profiling report and Chrome-trace validation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="profile a trace file")
    report.add_argument("trace", help="JSONL event log or Chrome trace JSON")
    report.add_argument("--limit", type=int, default=30,
                        help="max rows in the span table (default 30)")
    report.set_defaults(func=_cmd_report)

    why = sub.add_parser(
        "why", help="render decision provenance from a trace"
    )
    why.add_argument(
        "trace", help="Chrome trace JSON with otherData.provenance, "
        "or a raw fluxwhy-v1 JSON document"
    )
    why.add_argument("--job", type=int, default=None,
                     help="explain a single job id only")
    why.set_defaults(func=_cmd_why)

    validate = sub.add_parser("validate", help="schema-check a Chrome trace")
    validate.add_argument("trace", help="Chrome trace JSON file")
    validate.set_defaults(func=_cmd_validate)

    promcheck = sub.add_parser(
        "promcheck", help="scrape-parse a Prometheus exposition file"
    )
    promcheck.add_argument("metrics", help="Prometheus text file")
    promcheck.set_defaults(func=_cmd_promcheck)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
