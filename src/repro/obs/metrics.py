"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the one home for quantitative instrumentation (the paper's
§6 is entirely about such numbers: visits per match, per-job scheduling
time, planner query cost).  Design points:

* **Cheap instruments.**  A :class:`Counter` is one ``__slots__`` object and
  ``inc()`` is one attribute add — on par with the ad-hoc ``stats`` dict it
  replaces.  Hot loops should still batch locally and flush once (see
  ``Traverser._collect``).
* **Fixed bucket boundaries.**  Histograms never rebucket, so two runs (or
  two processes) can be merged/compared bucket-by-bucket.
* **Labels.**  ``registry.counter("sim.events", labels=("kind",))`` returns
  a family; ``family.labels(kind="fail")`` returns a child counter cached
  per label value.
* **Zero-cost when disabled.**  :data:`NULL_REGISTRY` hands out no-op
  singletons so instrumented code needs no conditionals.

Registries are plain objects: create as many as you like (each
:class:`~repro.match.traverser.Traverser` owns one; an
:class:`~repro.obs.Observer` shares one across a simulator).
"""

from __future__ import annotations

import re

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "render_prometheus_families",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
]

#: Default histogram boundaries for wall-clock durations, in seconds
#: (1 microsecond up to 10 s; everything slower lands in the +Inf bucket).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """Monotonically increasing count (decrements are a programming error)."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, active allocations)."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-boundary histogram with total sum/count.

    ``boundaries`` are the upper bounds of the finite buckets; one extra
    +Inf bucket catches the tail.  ``observe(v)`` increments the first
    bucket whose bound is >= v.
    """

    __slots__ = ("name", "description", "boundaries", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        description: str = "",
        boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        bounds = tuple(boundaries)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one boundary")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} boundaries must be sorted")
        self.name = name
        self.description = description
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.boundaries):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding it.

        Edge cases are pinned down (and tested) so callers never see NaN:

        * empty histogram → ``0.0`` for every ``q``;
        * ``q=0`` → upper bound of the first **non-empty** bucket (the
          tightest bound on the minimum observation);
        * ``q=1`` → upper bound of the last non-empty bucket, clamped to
          the last finite boundary when the tail sits in the +Inf bucket;
        * negative observations land in the first bucket (``observe``
          uses ``value <= bound``), so they are attributed to its bound.

        ``q`` outside ``[0, 1]`` raises :class:`ValueError`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        # A rank of at least 1 keeps q=0 from reporting the bound of a
        # leading empty bucket no observation ever landed in.
        target = max(q * self.count, 1)
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target:
                if index < len(self.boundaries):
                    return self.boundaries[index]
                break
        return self.boundaries[-1]

    def as_dict(self) -> Dict[str, object]:
        buckets = {
            f"le_{bound:g}": count
            for bound, count in zip(self.boundaries, self.counts)
        }
        buckets["inf"] = self.counts[-1]
        return {"count": self.count, "sum": self.sum, "buckets": buckets}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self.count}, sum={self.sum:.6f})"


class MetricFamily:
    """A labelled metric: one child instrument per label-value combination."""

    __slots__ = ("name", "description", "label_names", "_factory", "_children")

    def __init__(
        self,
        name: str,
        description: str,
        label_names: Tuple[str, ...],
        factory: "type",
    ) -> None:
        if not label_names:
            raise ValueError(f"family {name!r} needs at least one label name")
        self.name = name
        self.description = description
        self.label_names = label_names
        self._factory = factory
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: str) -> object:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"family {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            rendered = ",".join(
                f"{name}={value}" for name, value in zip(self.label_names, key)
            )
            child = self._factory(f"{self.name}{{{rendered}}}", self.description)
            self._children[key] = child
        return child

    def children(self) -> Iterator[object]:
        for key in sorted(self._children):
            yield self._children[key]

    def items(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        """``(label_values, child)`` pairs in sorted label-value order."""
        for key in sorted(self._children):
            yield key, self._children[key]


class MetricsRegistry:
    """Named home for instruments; idempotent creation, stable iteration."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # -- creation ------------------------------------------------------
    def _get_or_create(self, name: str, factory, kind: type) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(
        self,
        name: str,
        description: str = "",
        labels: Optional[Sequence[str]] = None,
    ) -> "Counter | MetricFamily":
        if labels:
            return self._get_or_create(
                name,
                lambda: MetricFamily(name, description, tuple(labels), Counter),
                MetricFamily,
            )
        return self._get_or_create(
            name, lambda: Counter(name, description), Counter
        )

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, description), Gauge)

    def histogram(
        self,
        name: str,
        description: str = "",
        boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, description, boundaries), Histogram
        )

    # -- introspection -------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def instruments(self) -> Iterator[object]:
        """Every leaf instrument (family children expanded), name order."""
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, MetricFamily):
                yield from metric.children()
            else:
                yield metric

    def as_dict(self) -> Dict[str, object]:
        """JSON-able snapshot: counters/gauges as numbers, histograms nested."""
        out: Dict[str, object] = {}
        for metric in self.instruments():
            if isinstance(metric, Histogram):
                out[metric.name] = metric.as_dict()
            else:
                out[metric.name] = metric.value
        return out

    def render(self) -> str:
        """Human-readable one-line-per-instrument dump."""
        lines: List[str] = []
        for metric in self.instruments():
            if isinstance(metric, Histogram):
                lines.append(
                    f"{metric.name} count={metric.count} sum={metric.sum:.6f} "
                    f"mean={metric.mean():.6f} p95<={metric.quantile(0.95):g}"
                )
            else:
                lines.append(f"{metric.name} {metric.value}")
        return "\n".join(lines)

    def merge_counts(self, other: "MetricsRegistry") -> None:
        """Add every counter of ``other`` into this registry (same names)."""
        for metric in other.instruments():
            if isinstance(metric, Counter):
                self.counter(metric.name, metric.description).inc(metric.value)

    def render_prometheus(self) -> str:
        """Full Prometheus text-exposition of the registry.

        One family block per registered name, in sorted name order:
        ``# HELP`` / ``# TYPE`` headers, label sets with escaped values,
        and cumulative histogram buckets (``_bucket{le=...}`` including
        ``+Inf``, then ``_sum`` / ``_count``).  Output is deterministic:
        same instruments and values → byte-identical text, so it doubles
        as the scrape payload for ROADMAP item 1.
        """
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            lines.extend(_render_family(name, metric))
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name: ``sim.cycles`` → ``sim_cycles``."""
    sanitized = _PROM_NAME_BAD.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_help(text: str) -> str:
    """Escape a HELP docstring (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_value(value: "int | float") -> str:
    if isinstance(value, bool) or not isinstance(value, float):
        return str(int(value))
    if value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}"
    return repr(value)


def _prom_labels(
    label_names: Sequence[str], label_values: Sequence[str]
) -> str:
    rendered = ",".join(
        f'{name}="{_prom_escape(value)}"'
        for name, value in zip(label_names, label_values)
    )
    return "{" + rendered + "}"


def _prom_samples(
    name: str, metric: object, label_suffix: str = ""
) -> List[str]:
    """Sample lines for one leaf instrument (no headers)."""
    if isinstance(metric, Histogram):
        lines = []
        cumulative = 0
        for bound, count in zip(metric.boundaries, metric.counts):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{bound:g}"}} {cumulative}'
                if not label_suffix
                else f"{name}_bucket{label_suffix[:-1]},"
                f'le="{bound:g}"}} {cumulative}'
            )
        cumulative += metric.counts[-1]
        if not label_suffix:
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        else:
            lines.append(
                f'{name}_bucket{label_suffix[:-1]},le="+Inf"}} {cumulative}'
            )
        lines.append(f"{name}_sum{label_suffix} {_prom_value(metric.sum)}")
        lines.append(f"{name}_count{label_suffix} {metric.count}")
        return lines
    return [f"{name}{label_suffix} {_prom_value(metric.value)}"]


_PROM_TYPES = {"Counter": "counter", "Gauge": "gauge", "Histogram": "histogram"}


def _render_family(name: str, metric: object) -> List[str]:
    """HELP/TYPE headers plus samples for one registered metric."""
    sname = _prom_name(name)
    if isinstance(metric, MetricFamily):
        kind = _PROM_TYPES.get(metric._factory.__name__, "untyped")
        description = metric.description
    else:
        kind = _PROM_TYPES.get(type(metric).__name__, "untyped")
        description = getattr(metric, "description", "")
    lines = [
        f"# HELP {sname} {_prom_help(description)}".rstrip(),
        f"# TYPE {sname} {kind}",
    ]
    if isinstance(metric, MetricFamily):
        for label_values, child in metric.items():
            suffix = _prom_labels(metric.label_names, label_values)
            lines.extend(_prom_samples(sname, child, suffix))
    else:
        lines.extend(_prom_samples(sname, metric))
    return lines


def render_prometheus_families(registries: Sequence["MetricsRegistry"]) -> str:
    """One exposition document spanning several registries.

    The simulator owns two (the observer's and the traverser's always-on
    one); a scrape endpoint wants a single document with globally sorted
    families.  First registry wins on a name collision.
    """
    merged: Dict[str, object] = {}
    for registry in registries:
        metrics = getattr(registry, "_metrics", None)
        if not metrics:
            continue
        for name, metric in metrics.items():
            merged.setdefault(name, metric)
    lines: List[str] = []
    for name in sorted(merged):
        lines.extend(_render_family(name, merged[name]))
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# no-op implementations: observability disabled costs one method call
# ----------------------------------------------------------------------
class NullCounter:
    __slots__ = ()
    value = 0
    name = ""

    def inc(self, amount: int = 1) -> None:
        pass

    def reset(self) -> None:
        pass


class NullGauge:
    __slots__ = ()
    value = 0.0
    name = ""

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    count = 0
    sum = 0.0
    name = ""

    def observe(self, value: float) -> None:
        pass

    def mean(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0

    def as_dict(self) -> Dict[str, object]:
        return {"count": 0, "sum": 0.0, "buckets": {}}


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class _NullFamily:
    __slots__ = ("_child",)

    def __init__(self, child: object) -> None:
        self._child = child

    def labels(self, **labels: str) -> object:
        return self._child

    def children(self) -> Iterator[object]:
        return iter(())


_NULL_COUNTER_FAMILY = _NullFamily(_NULL_COUNTER)


class NullRegistry:
    """Registry look-alike that records nothing and allocates nothing."""

    __slots__ = ()

    def counter(
        self,
        name: str,
        description: str = "",
        labels: Optional[Sequence[str]] = None,
    ) -> object:
        return _NULL_COUNTER_FAMILY if labels else _NULL_COUNTER

    def gauge(self, name: str, description: str = "") -> NullGauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        description: str = "",
        boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> NullHistogram:
        return _NULL_HISTOGRAM

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def get(self, name: str) -> None:
        return None

    def instruments(self) -> Iterator[object]:
        return iter(())

    def as_dict(self) -> Dict[str, object]:
        return {}

    def render(self) -> str:
        return ""

    def render_prometheus(self) -> str:
        return ""

    def merge_counts(self, other: object) -> None:
        pass


NULL_REGISTRY = NullRegistry()
