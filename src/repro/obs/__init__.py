"""repro.obs — unified observability: metrics, tracing, profiling.

The three legs (ISSUE 5 tentpole):

* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  in a :class:`MetricsRegistry`, with no-op twins for the disabled path;
* :mod:`repro.obs.trace` — nested spans with deterministic virtual-time
  annotations plus wall-clock durations, exporting Chrome ``trace_event``
  JSON and line-JSON logs;
* :mod:`repro.obs.profile` — exact (sampling-free) aggregation of span
  durations into a callers/callees table and an ASCII flame summary,
  fronted by ``python -m repro.obs report``.

A fourth leg (ISSUE 10): :mod:`repro.obs.why` — per-job scheduling
decision provenance (admission verdicts, attempt outcomes, match-failure
attribution), rendered by ``report.explain(job_id)`` and
``python -m repro.obs why``; and Prometheus text exposition via
``MetricsRegistry.render_prometheus()``.

Everything is **off by default**: pass ``ClusterSimulator(observe=True)``
(or an :class:`Observer`), or set ``FLUXOBS=1``.  Disabled instrumentation
routes through null singletons, keeping the hot-path cost to an attribute
load and an empty call.

:mod:`repro.obs.clock` is the audited wall-clock shim — the only
sanctioned ``time.perf_counter`` in ``src/repro`` (fluxlint rule OBS001
enforces this).
"""

from .clock import WallTimer, wall_now, wall_timer
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    render_prometheus_families,
)
from .profile import Profile, aggregate
from .why import (
    FAIL_KINDS,
    NULL_WHY,
    PRUNE_REASONS,
    DecisionRecorder,
    NullDecisionRecorder,
    render_cycle_summary,
    render_explain,
)
from .runtime import (
    ACTIVE,
    NULL_OBSERVER,
    Observer,
    ObserverStateError,
    activate,
    active,
    deactivate,
    env_enabled,
    resolve,
)
from .trace import NULL_TRACER, NullTracer, Tracer, read_jsonl, span_tree

__all__ = [
    "Observer",
    "NULL_OBSERVER",
    "ObserverStateError",
    "activate",
    "deactivate",
    "active",
    "env_enabled",
    "resolve",
    "ACTIVE",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "DEFAULT_TIME_BUCKETS",
    "render_prometheus_families",
    "DecisionRecorder",
    "NullDecisionRecorder",
    "NULL_WHY",
    "PRUNE_REASONS",
    "FAIL_KINDS",
    "render_explain",
    "render_cycle_summary",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_jsonl",
    "span_tree",
    "Profile",
    "aggregate",
    "wall_now",
    "wall_timer",
    "WallTimer",
]
