"""Network-topology modeling: switch hierarchies as a subsystem (Fig. 1b).

The paper's Figure 1b models an InfiniBand fabric with ``conduit-of`` edges
from a core switch to edge switches to node HCAs.  This module builds a
two-level fat-tree alongside the containment hierarchy:

* containment: ``cluster -> rack -> node -> core ...`` (as usual);
* network: ``cluster -> core_switch -> edge_switch (one per rack) -> node``
  with a ``bandwidth`` pool under every switch, so bandwidth-constrained
  requests match against the *network* subsystem while compute requests
  match against containment — the paper's multi-subsystem story.

Use :class:`~repro.match.Traverser` with ``subsystem="network"`` to schedule
bandwidth, e.g. "give me 2 nodes plus 40 GB/s under one edge switch".
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..jobspec import Jobspec, ResourceRequest, slot
from ..resource import ResourceGraph

__all__ = ["fat_tree_cluster", "edge_local_bandwidth_job"]


def fat_tree_cluster(
    racks: int = 4,
    nodes_per_rack: int = 4,
    cores_per_node: int = 8,
    edge_bandwidth: int = 100,
    core_bandwidth: int = 200,
    plan_end: int = 2**40,
    prune_types: Optional[Sequence[str]] = ("core", "node"),
) -> ResourceGraph:
    """Build a cluster with a parallel two-level fat-tree network subsystem.

    Each rack's nodes hang off one edge switch; all edge switches hang off a
    single core switch.  Switches carry ``bandwidth`` pools (GB/s): the edge
    pool bounds intra-rack traffic, the core pool bounds traffic crossing
    racks — the classic oversubscription model (``core_bandwidth`` less than
    ``racks * edge_bandwidth`` means the fabric is oversubscribed).
    """
    graph = ResourceGraph(0, plan_end)
    cluster = graph.add_vertex("cluster")
    core_switch = graph.add_vertex("core_switch", basename="coresw")
    graph.add_edge(cluster, core_switch, subsystem="network",
                   edge_type="conduit-of")
    core_bw = graph.add_vertex("bandwidth", basename="corebw",
                               size=core_bandwidth)
    graph.add_edge(core_switch, core_bw, subsystem="network")
    for _ in range(racks):
        rack = graph.add_vertex("rack")
        graph.add_edge(cluster, rack)
        edge_switch = graph.add_vertex("edge_switch", basename="edgesw")
        graph.add_edge(core_switch, edge_switch, subsystem="network",
                       edge_type="conduit-of")
        edge_bw = graph.add_vertex("bandwidth", basename="edgebw",
                                   size=edge_bandwidth)
        graph.add_edge(edge_switch, edge_bw, subsystem="network")
        for _ in range(nodes_per_rack):
            node = graph.add_vertex("node")
            graph.add_edge(rack, node)
            graph.add_edge(edge_switch, node, subsystem="network",
                           edge_type="conduit-of")
            for _ in range(cores_per_node):
                graph.add_edge(node, graph.add_vertex("core"))
    if prune_types:
        graph.install_pruning_filters(list(prune_types), at_types=["rack"])
    return graph


def edge_local_bandwidth_job(
    nodes: int = 2,
    gbps: int = 40,
    duration: int = 3600,
) -> Jobspec:
    """Nodes plus bandwidth under a single edge switch (network subsystem).

    Match this with ``Traverser(graph, subsystem="network")``: the switch
    grouping guarantees the selected nodes and the reserved bandwidth share
    one edge switch — the locality constraint the paper's topology-aware
    plugins approximate.
    """
    switch = ResourceRequest(
        type="edge_switch",
        count=1,
        with_=(
            slot(
                1,
                ResourceRequest(type="node", count=nodes),
                ResourceRequest(type="bandwidth", count=gbps, unit="GB/s"),
            ),
        ),
    )
    return Jobspec(resources=(switch,), duration=duration)
