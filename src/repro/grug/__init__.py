"""GRUG: resource-graph generation — recipes and system presets (paper §6.1)."""

from .disaggregated import disaggregated_system
from .network import edge_local_bandwidth_job, fat_tree_cluster
from .presets import LOD_NAMES, build_lod, lod_recipe, quartz, tiny_cluster
from .rabbit import rabbit_system
from .recipe import build_from_recipe, load_recipe_file

__all__ = [
    "LOD_NAMES",
    "edge_local_bandwidth_job",
    "fat_tree_cluster",
    "build_from_recipe",
    "build_lod",
    "disaggregated_system",
    "load_recipe_file",
    "lod_recipe",
    "quartz",
    "rabbit_system",
    "tiny_cluster",
]
