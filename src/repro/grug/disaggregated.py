"""Disaggregated-system modeling (paper §5.4, Fig. 5).

A disaggregated supercomputer specialises racks by resource type — CPU racks,
GPU racks, memory racks, burst-buffer racks — joined by a high-performance
(e.g. optical) network.  With the graph model this is "fundamentally the same
as scheduling a traditional containment hierarchy": the specialised racks are
plain subtrees, and an optional ``network`` subsystem records which switch
connects them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..resource import ResourceGraph

__all__ = ["disaggregated_system"]


def disaggregated_system(
    cpu_racks: int = 2,
    gpu_racks: int = 2,
    memory_racks: int = 1,
    bb_racks: int = 1,
    cpus_per_rack: int = 32,
    gpus_per_rack: int = 16,
    memory_pools_per_rack: int = 16,
    memory_pool_size: int = 64,
    bb_pools_per_rack: int = 8,
    bb_pool_size: int = 400,
    with_network: bool = True,
    plan_end: int = 2**40,
    prune_types: Optional[Sequence[str]] = ("core", "gpu", "memory", "ssd"),
) -> ResourceGraph:
    """Build the Fig. 5b disaggregated system.

    Rack vertices carry a ``specialized`` property naming their pool kind.
    When ``with_network`` is set, a ``network`` subsystem connects an optical
    switch vertex to every rack (conduit-of edges), demonstrating
    multi-subsystem modeling.
    """
    graph = ResourceGraph(0, plan_end)
    cluster = graph.add_vertex("cluster", basename="disagg")
    racks = []

    def add_racks(count: int, kind: str, child_type: str, pools: int, size: int):
        for _ in range(count):
            rack = graph.add_vertex(
                "rack", basename=f"{kind}rack", properties={"specialized": kind}
            )
            graph.add_edge(cluster, rack)
            racks.append(rack)
            for _ in range(pools):
                pool = graph.add_vertex(child_type, size=size)
                graph.add_edge(rack, pool)

    add_racks(cpu_racks, "cpu", "core", cpus_per_rack, 1)
    add_racks(gpu_racks, "gpu", "gpu", gpus_per_rack, 1)
    add_racks(memory_racks, "memory", "memory", memory_pools_per_rack,
              memory_pool_size)
    add_racks(bb_racks, "bb", "ssd", bb_pools_per_rack, bb_pool_size)

    if with_network:
        switch = graph.add_vertex("switch", basename="optical")
        graph.add_edge(cluster, switch, subsystem="network",
                       edge_type="conduit-of")
        for rack in racks:
            graph.add_edge(switch, rack, subsystem="network",
                           edge_type="conduit-of")

    if prune_types:
        graph.install_pruning_filters(list(prune_types), at_types=["rack"])
    return graph
