"""Near-node-flash ("rabbit") system modeling (paper §5.1).

El Capitan-style multi-tiered storage: each compute chassis holds a small
fixed number of compute nodes plus one *rabbit* — a storage controller with a
collection of SSDs that can be configured as node-local or job-global
storage.  The graph encodes every constraint the paper lists:

* the rabbit vertex has edges from **both** its chassis and the cluster,
  because rabbits are schedulable as rack-level or cluster-level resources;
* per-SSD ``nvme_namespace`` pool vertices bound how many file systems can
  be carved from one rabbit (NVMe namespace limit);
* a single ``ip`` vertex of size one per rabbit enforces "at most one
  Lustre server per rabbit" (the server needs a unique IP).

Storage-only allocations (a user keeping a file system across jobs) are
ordinary matches that simply request no compute.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..resource import ResourceGraph

__all__ = ["rabbit_system"]


def rabbit_system(
    chassis: int = 4,
    nodes_per_chassis: int = 4,
    cores_per_node: int = 8,
    ssds_per_rabbit: int = 4,
    ssd_size: int = 1000,
    namespaces_per_ssd: int = 8,
    plan_end: int = 2**40,
    prune_types: Optional[Sequence[str]] = ("core", "node", "ssd"),
) -> ResourceGraph:
    """Build a rabbit-equipped system.

    Layout per chassis (modeled as a ``rack`` vertex)::

        rack -> node x nodes_per_chassis -> core x cores_per_node
        rack -> rabbit  (also cluster -> rabbit)
        rabbit -> ssd x ssds_per_rabbit          (pool of ssd_size GB each)
        rabbit -> nvme_namespace (pool of ssds_per_rabbit*namespaces_per_ssd)
        rabbit -> ip              (pool of size 1)
    """
    graph = ResourceGraph(0, plan_end)
    cluster = graph.add_vertex("cluster", basename="elcap")
    for _ in range(chassis):
        rack = graph.add_vertex("rack", basename="chassis")
        graph.add_edge(cluster, rack)
        for _ in range(nodes_per_chassis):
            node = graph.add_vertex("node")
            graph.add_edge(rack, node)
            for _ in range(cores_per_node):
                graph.add_edge(node, graph.add_vertex("core"))
        rabbit = graph.add_vertex("rabbit")
        graph.add_edge(rack, rabbit)
        # Rabbits are both rack- and cluster-level resources (§5.1).
        graph.add_edge(cluster, rabbit)
        for _ in range(ssds_per_rabbit):
            ssd = graph.add_vertex("ssd", size=ssd_size)
            graph.add_edge(rabbit, ssd)
        namespaces = graph.add_vertex(
            "nvme_namespace", size=ssds_per_rabbit * namespaces_per_ssd
        )
        graph.add_edge(rabbit, namespaces)
        ip = graph.add_vertex("ip", size=1)
        graph.add_edge(rabbit, ip)
    if prune_types:
        graph.install_pruning_filters(list(prune_types), at_types=["rack", "rabbit"])
    return graph
