"""GRUG-style resource-graph generation recipes (paper §6.1).

Fluxion's GRUG ("Generating Resources Using GraphML") reads a recipe and
populates the resource graph store.  This module provides the equivalent with
a YAML/dict recipe format::

    plan_end: 100000
    resources:
      type: cluster
      with:
        - type: rack
          count: 56
          with:
            - type: node
              count: 18
              with:
                - {type: socket, count: 2, with: [
                      {type: core, count: 20},
                      {type: gpu, count: 2},
                      {type: memory, count: 8, size: 16, unit: GB},
                      {type: ssd, count: 8, size: 100, unit: GB}]}

``count`` replicates a vertex under its parent; ``size`` sets the pool size
of each replica (levels of detail: 8x16GB vs 4x64GB memory pools, §3.3).
``properties`` attaches free-form tags to each replica.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import yaml

from ..errors import RecipeError
from ..resource import ResourceGraph, ResourceVertex

__all__ = ["build_from_recipe", "load_recipe_file"]

_VERTEX_KEYS = {"type", "count", "size", "unit", "basename", "properties", "with"}


def _build_level(
    graph: ResourceGraph, parent: Optional[ResourceVertex], spec: Mapping[str, Any]
) -> None:
    if not isinstance(spec, Mapping):
        raise RecipeError(f"resource spec must be a mapping, got {spec!r}")
    if "type" not in spec:
        raise RecipeError(f"resource spec missing 'type': {spec!r}")
    unknown = set(spec) - _VERTEX_KEYS
    if unknown:
        raise RecipeError(f"{spec['type']}: unknown recipe keys {sorted(unknown)}")
    count = spec.get("count", 1)
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise RecipeError(f"{spec['type']}: count must be a positive int")
    size = spec.get("size", 1)
    if not isinstance(size, int) or isinstance(size, bool) or size < 0:
        raise RecipeError(f"{spec['type']}: size must be a non-negative int")
    children = spec.get("with", [])
    if not isinstance(children, list):
        raise RecipeError(f"{spec['type']}: 'with' must be a list")
    for _ in range(count):
        vertex = graph.add_vertex(
            type=str(spec["type"]),
            basename=spec.get("basename"),
            size=size,
            unit=spec.get("unit"),
            properties=spec.get("properties"),
        )
        if parent is not None:
            graph.add_edge(parent, vertex)
        for child in children:
            _build_level(graph, vertex, child)


def build_from_recipe(source: "str | Mapping[str, Any]") -> ResourceGraph:
    """Build a :class:`ResourceGraph` from a recipe (YAML text or mapping)."""
    if isinstance(source, str):
        try:
            data = yaml.safe_load(source)
        except yaml.YAMLError as exc:
            raise RecipeError(f"invalid YAML: {exc}") from exc
    else:
        data = source
    if not isinstance(data, Mapping):
        raise RecipeError("recipe must be a mapping")
    if "resources" not in data:
        raise RecipeError("recipe requires a 'resources' entry")
    plan_start = data.get("plan_start", 0)
    plan_end = data.get("plan_end", 2**62)
    graph = ResourceGraph(plan_start, plan_end)
    _build_level(graph, None, data["resources"])
    prune = data.get("prune_filters")
    if prune:
        if not isinstance(prune, Mapping) or "types" not in prune:
            raise RecipeError("prune_filters requires a 'types' list")
        graph.install_pruning_filters(
            list(prune["types"]), at_types=prune.get("at")
        )
    return graph


def load_recipe_file(path: str) -> ResourceGraph:
    """Read and build a recipe YAML file."""
    with open(path, "r", encoding="utf-8") as handle:
        return build_from_recipe(handle.read())
