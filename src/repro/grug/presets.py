"""System presets, including the four §6.1 level-of-detail configurations.

The paper's LOD experiment (Fig. 6a) models the same 1008-node system four
ways:

* **High** — cluster -> 56 racks -> 18 nodes; each node has 2 sockets, each
  socket 20 cores, 2 gpus, 8x16GB memory pools and 8x100GB burst buffers.
* **Med** — sockets removed and node-local granularity coarsened: 40 cores,
  4 gpus, 8x32GB memory, 8x200GB burst buffers per node.
* **Low** — racks removed too; cores federated into pools of 5; 4x64GB
  memory and 4x400GB burst buffers per node.
* **Low2** — identical to Low but keeping the rack level (so pruning
  happens higher up).

Also provided: ``tiny_cluster`` for tests/examples and ``quartz`` for the
§6.3 variation-aware study (42 racks x 62 nodes; the study uses 39 full
racks = 2418 nodes).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..resource import ResourceGraph
from .recipe import build_from_recipe

__all__ = ["lod_recipe", "build_lod", "LOD_NAMES", "tiny_cluster", "quartz"]

LOD_NAMES = ("high", "med", "low", "low2")

_NODE_SPECS = {
    "high": [
        {
            "type": "socket",
            "count": 2,
            "with": [
                {"type": "core", "count": 20},
                {"type": "gpu", "count": 2},
                {"type": "memory", "count": 8, "size": 16, "unit": "GB"},
                {"type": "ssd", "count": 8, "size": 100, "unit": "GB"},
            ],
        }
    ],
    "med": [
        {"type": "core", "count": 40},
        {"type": "gpu", "count": 4},
        {"type": "memory", "count": 8, "size": 32, "unit": "GB"},
        {"type": "ssd", "count": 8, "size": 200, "unit": "GB"},
    ],
    "low": [
        {"type": "core", "count": 8, "size": 5},
        {"type": "gpu", "count": 4},
        {"type": "memory", "count": 4, "size": 64, "unit": "GB"},
        {"type": "ssd", "count": 4, "size": 400, "unit": "GB"},
    ],
}
_NODE_SPECS["low2"] = _NODE_SPECS["low"]

#: LODs that include the rack level (Low removes it, Low2 restores it).
_HAS_RACKS = {"high": True, "med": True, "low": False, "low2": True}


def lod_recipe(
    lod: str,
    racks: int = 56,
    nodes_per_rack: int = 18,
    plan_end: int = 2**40,
) -> dict:
    """Return the GRUG recipe mapping for one §6.1 LOD configuration."""
    lod = lod.lower()
    if lod not in LOD_NAMES:
        raise ValueError(f"unknown LOD {lod!r}; expected one of {LOD_NAMES}")
    node = {"type": "node", "with": _NODE_SPECS[lod]}
    if _HAS_RACKS[lod]:
        node_level = dict(node, count=nodes_per_rack)
        top_children = [{"type": "rack", "count": racks, "with": [node_level]}]
    else:
        top_children = [dict(node, count=racks * nodes_per_rack)]
    return {
        "plan_end": plan_end,
        "resources": {"type": "cluster", "with": top_children},
    }


def build_lod(
    lod: str,
    racks: int = 56,
    nodes_per_rack: int = 18,
    prune_types: Optional[Sequence[str]] = ("core",),
    plan_end: int = 2**40,
) -> ResourceGraph:
    """Build one §6.1 LOD system, optionally installing pruning filters.

    ``prune_types`` mirrors resource-query's ``--prune-filters`` (the paper
    uses the core resource type); pass None for the no-pruning variants.
    Filters are installed at rack and node vertices plus the root.
    """
    graph = build_from_recipe(lod_recipe(lod, racks, nodes_per_rack, plan_end))
    if prune_types:
        graph.install_pruning_filters(
            list(prune_types), at_types=["rack", "node"]
        )
    return graph


def tiny_cluster(
    racks: int = 2,
    nodes_per_rack: int = 2,
    cores: int = 4,
    gpus: int = 1,
    memory_pools: int = 2,
    memory_size: int = 16,
    plan_end: int = 2**40,
    prune_types: Optional[Sequence[str]] = ("core", "node", "memory", "gpu"),
) -> ResourceGraph:
    """A small cluster for examples and tests."""
    node_children = [{"type": "core", "count": cores}]
    if gpus:
        node_children.append({"type": "gpu", "count": gpus})
    if memory_pools:
        node_children.append(
            {"type": "memory", "count": memory_pools, "size": memory_size,
             "unit": "GB"}
        )
    graph = build_from_recipe(
        {
            "plan_end": plan_end,
            "resources": {
                "type": "cluster",
                "with": [
                    {
                        "type": "rack",
                        "count": racks,
                        "with": [
                            {"type": "node", "count": nodes_per_rack,
                             "with": node_children}
                        ],
                    }
                ],
            },
        }
    )
    if prune_types:
        graph.install_pruning_filters(
            list(prune_types), at_types=["rack", "node"]
        )
    return graph


def quartz(
    racks: int = 39,
    nodes_per_rack: int = 62,
    cores_per_node: int = 36,
    with_cores: bool = False,
    perf_classes: Optional[Mapping[int, int]] = None,
    plan_end: int = 2**40,
    prune_types: Optional[Sequence[str]] = ("node",),
) -> ResourceGraph:
    """The §6.3 quartz model: 39 full racks x 62 nodes = 2418 nodes.

    The variation study schedules whole nodes, so per-core vertices are
    omitted by default (``with_cores=True`` restores them).  ``perf_classes``
    maps node id -> performance class (Eq. 1) and is stored as the
    ``perf_class`` node property the variation-aware policy reads.
    """
    node: dict = {"type": "node"}
    if with_cores:
        node["with"] = [{"type": "core", "count": cores_per_node}]
    graph = build_from_recipe(
        {
            "plan_end": plan_end,
            "resources": {
                "type": "cluster",
                "basename": "quartz",
                "with": [
                    {
                        "type": "rack",
                        "count": racks,
                        "with": [dict(node, count=nodes_per_rack)],
                    }
                ],
            },
        }
    )
    if perf_classes:
        for vertex in graph.vertices("node"):
            if vertex.id in perf_classes:
                vertex.properties["perf_class"] = perf_classes[vertex.id]
    if prune_types:
        graph.install_pruning_filters(list(prune_types), at_types=["rack"])
    return graph
