"""Scheduling framework: jobs, queue policies, simulator, elasticity, hierarchy."""

from .capacity import CapacitySchedule, Outage
from .elastic import grow, grow_job, resize_pool, shrink_job, shrink_subtree
from .failures import affected_jobs, fail_vertex, repair_vertex
from .hierarchy import Instance
from .job import CancelReason, Job, JobState
from .queue import (
    QUEUE_POLICIES,
    ConservativeBackfill,
    EasyBackfill,
    FCFSQueue,
    QueuePolicy,
    make_queue_policy,
)
from .simulator import ClusterSimulator, SimulationReport
from .workflow import Task, Workflow, WorkflowResult

__all__ = [
    "CancelReason",
    "CapacitySchedule",
    "Outage",
    "QUEUE_POLICIES",
    "ClusterSimulator",
    "ConservativeBackfill",
    "EasyBackfill",
    "FCFSQueue",
    "Instance",
    "Job",
    "JobState",
    "QueuePolicy",
    "SimulationReport",
    "Task",
    "Workflow",
    "WorkflowResult",
    "affected_jobs",
    "fail_vertex",
    "grow",
    "grow_job",
    "make_queue_policy",
    "repair_vertex",
    "resize_pool",
    "shrink_job",
    "shrink_subtree",
]
