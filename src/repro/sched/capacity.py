"""Variable system capacity: planned outages and maintenance windows (§5.5).

"Variable capacity in system resources" [Zhang & Chien] means the scheduler
must plan around capacity that comes and goes: maintenance windows, power
emergencies, cloud capacity leases.  With the graph model an outage is just
an exclusive hold on a subtree for a future window — reservations and
backfilling then route around it automatically, because the planners already
encode when the capacity disappears and returns.

:class:`CapacitySchedule` books and releases such windows, keeping the
pruning filters consistent the same way the traverser's SDFU does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ResourceGraphError
from ..resource import ResourceGraph, ResourceVertex
from ..resource.vertex import X_LIMIT

__all__ = ["CapacitySchedule", "Outage"]


@dataclass
class Outage:
    """A planned capacity removal of one subtree over ``[start, end)``."""

    outage_id: int
    vertex: ResourceVertex
    start: int
    end: int
    reason: str = ""
    _span_records: List[Tuple[object, int]] = field(default_factory=list,
                                                    repr=False)


class CapacitySchedule:
    """Planned-outage manager over one resource graph.

    Outages are booked exactly like exclusive allocations: full pool size on
    every vertex of the subtree, the exclusivity level on their x-planners,
    and subtree totals into every pruning filter above — so matching,
    reservations and ``avail_time_first`` all see the window without any
    special-casing.
    """

    def __init__(self, graph: ResourceGraph) -> None:
        self.graph = graph
        self.outages: Dict[int, Outage] = {}
        self._next_id = 1

    def add_outage(
        self,
        vertex: ResourceVertex,
        start: int,
        duration: int,
        reason: str = "",
    ) -> Outage:
        """Take ``vertex`` and its subtree offline over ``[start, start+duration)``.

        Raises :class:`ResourceGraphError` when any affected vertex already
        has conflicting bookings in the window (drain jobs first, or pick a
        window the planners show as free).
        """
        subtree = [vertex] + list(self.graph.descendants(vertex))
        records: List[Tuple[object, int]] = []
        try:
            for v in subtree:
                if v.size:
                    records.append(
                        (v.plans, v.plans.add_span(start, duration, v.size))
                    )
                records.append(
                    (v.xplans, v.xplans.add_span(start, duration, X_LIMIT))
                )
            self._book_filters(vertex, subtree, start, duration, records)
        except BaseException:
            # BaseException on purpose: rollback must also run when the
            # failure is a SimulatedCrash (which bypasses Exception so that
            # ordinary handlers cannot swallow it).  The bare raise keeps the
            # original cause intact.
            for planner, span_id in records:
                planner.rem_span(span_id)
            raise
        outage = Outage(
            outage_id=self._next_id,
            vertex=vertex,
            start=start,
            end=start + duration,
            reason=reason,
            _span_records=records,
        )
        self._next_id += 1
        self.outages[outage.outage_id] = outage
        return outage

    def _book_filters(
        self,
        vertex: ResourceVertex,
        subtree: List[ResourceVertex],
        start: int,
        duration: int,
        records: List[Tuple[object, int]],
    ) -> None:
        prune_types = set(self.graph.prune_types)
        if not prune_types:
            return
        totals: Dict[str, int] = {}
        for v in subtree:
            if v.type in prune_types:
                totals[v.type] = totals.get(v.type, 0) + v.size
        if not totals:
            return
        targets = [vertex] + list(self.graph.ancestors(vertex))
        for target in targets:
            filters = target.prune_filters
            if filters is None:
                continue
            tracked = {t: n for t, n in totals.items() if filters.tracks(t)}
            if tracked:
                records.append(
                    (filters, filters.add_span(start, duration, tracked))
                )

    def cancel(self, outage_id: int) -> Outage:
        """Cancel a planned outage, restoring the capacity."""
        try:
            outage = self.outages.pop(outage_id)
        except KeyError:
            raise ResourceGraphError(f"unknown outage {outage_id}") from None
        for planner, span_id in outage._span_records:
            planner.rem_span(span_id)
        outage._span_records.clear()
        return outage

    def capacity_at(self, rtype: str, at: int) -> int:
        """Schedulable capacity of ``rtype`` at instant ``at`` (excludes both
        outages and job allocations)."""
        return sum(
            v.plans.avail_resources_at(at) for v in self.graph.vertices(rtype)
        )

    def offline_at(self, at: int) -> List[Outage]:
        """Outages active at instant ``at``."""
        return [o for o in self.outages.values() if o.start <= at < o.end]
