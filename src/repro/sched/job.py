"""Job lifecycle records for the scheduling framework."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import JobError
from ..jobspec import Jobspec
from ..match import Allocation

__all__ = ["Job", "JobState", "CancelReason"]


class JobState(enum.Enum):
    """Lifecycle: PENDING -> (RESERVED ->) RUNNING -> COMPLETED | CANCELED."""

    PENDING = "pending"
    RESERVED = "reserved"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELED = "canceled"


class CancelReason(enum.Enum):
    """Why a job ended up CANCELED.

    A single terminal state covers very different fates — a request the
    machine can never satisfy, an operator's cancel, a hardware failure
    under the job, or the job overrunning its requested walltime — and
    reports must not conflate them.
    """

    UNSATISFIABLE = "unsatisfiable"
    USER = "user"
    NODE_FAILURE = "node-failure"
    WALLTIME = "walltime"
    #: refused by admission control at submission (queue depth bound)
    ADMISSION = "admission-reject"
    #: evicted from the queue to make room for a higher-priority submission
    SHED = "admission-shed"


_TRANSITIONS = {
    JobState.PENDING: {JobState.RESERVED, JobState.RUNNING, JobState.CANCELED},
    JobState.RESERVED: {JobState.RUNNING, JobState.PENDING, JobState.CANCELED},
    JobState.RUNNING: {JobState.COMPLETED, JobState.CANCELED},
    JobState.COMPLETED: set(),
    JobState.CANCELED: set(),
}


@dataclass
class Job:
    """One job moving through the scheduler.

    A job may hold several allocations when grown elastically (§5.5); the
    first is the primary one whose window defines start/end.  ``priority``
    orders the queue (higher first; ties by submission order).

    The requested walltime is ``jobspec.duration`` — what the scheduler books.
    ``actual_duration`` is how much work the job really needs: shorter jobs
    complete early, longer ones are killed at the walltime limit (and may be
    retried with the remaining work when checkpointing is configured).
    """

    job_id: int
    jobspec: Jobspec
    submit_time: int = 0
    name: str = ""
    priority: int = 0
    state: JobState = JobState.PENDING
    allocations: List[Allocation] = field(default_factory=list)
    #: wall-clock seconds the scheduler spent matching this job (Fig 7b metric)
    sched_time: float = 0.0
    #: true work requirement in ticks (None: exactly the requested walltime)
    actual_duration: Optional[int] = None
    #: why the job was canceled (None while not CANCELED)
    cancel_reason: Optional[CancelReason] = None
    #: retry generation: 0 for an original submission, +1 per resubmission
    attempt: int = 0
    #: job_id of the original submission this job retries (None if original)
    retry_of: Optional[int] = None
    #: checkpointed work carried over from killed prior attempts
    work_credited: int = 0
    #: ticks this job actually occupied resources (across kills/completion)
    ran_seconds: int = 0
    #: simulation time the job stopped running (completed or killed)
    finished_at: Optional[int] = None
    #: degradation-ladder level this job was matched at ("COARSE"/
    #: "NODECENTRIC"; None for a full-fidelity match)
    degraded: Optional[str] = None

    @property
    def allocation(self) -> Optional[Allocation]:
        """The primary allocation (None while pending)."""
        return self.allocations[0] if self.allocations else None

    @property
    def start_time(self) -> Optional[int]:
        alloc = self.allocation
        return None if alloc is None else alloc.at

    @property
    def end_time(self) -> Optional[int]:
        alloc = self.allocation
        return None if alloc is None else alloc.end

    @property
    def wait_time(self) -> Optional[int]:
        """Ticks between submission and (planned) start."""
        start = self.start_time
        return None if start is None else start - self.submit_time

    @property
    def walltime(self) -> int:
        """Requested walltime: the window length the scheduler books."""
        return self.jobspec.duration

    @property
    def work_required(self) -> int:
        """Work remaining for this attempt (defaults to the walltime)."""
        return self.walltime if self.actual_duration is None else self.actual_duration

    @property
    def overruns(self) -> bool:
        """True when the job needs more work than its walltime allows."""
        return self.work_required > self.walltime

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``, enforcing the lifecycle state machine."""
        if new_state not in _TRANSITIONS[self.state]:
            raise JobError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    @property
    def is_active(self) -> bool:
        """True while the job still holds or may acquire resources."""
        return self.state in (JobState.PENDING, JobState.RESERVED, JobState.RUNNING)

    # ------------------------------------------------------------------
    # snapshot records (crash recovery)
    # ------------------------------------------------------------------
    def to_record(self) -> dict:
        """Serialise this job for a scheduler snapshot.

        Allocations are recorded by id only — the snapshot layer serialises
        them once through the traverser and rewires references on restore.
        """
        return {
            "job_id": self.job_id,
            "jobspec": self.jobspec.to_dict(),
            "submit_time": self.submit_time,
            "name": self.name,
            "priority": self.priority,
            "state": self.state.value,
            "alloc_ids": [a.alloc_id for a in self.allocations],
            "sched_time": self.sched_time,
            "actual_duration": self.actual_duration,
            "cancel_reason": (
                None if self.cancel_reason is None else self.cancel_reason.value
            ),
            "attempt": self.attempt,
            "retry_of": self.retry_of,
            "work_credited": self.work_credited,
            "ran_seconds": self.ran_seconds,
            "finished_at": self.finished_at,
            "degraded": self.degraded,
        }

    @classmethod
    def from_record(cls, record: dict, allocations: dict) -> "Job":
        """Rebuild a job from :meth:`to_record` output.

        ``allocations`` maps alloc id -> restored Allocation; ids a job
        references must already be present there.
        """
        from ..jobspec import parse_jobspec

        reason = record.get("cancel_reason")
        job = cls(
            job_id=int(record["job_id"]),
            jobspec=parse_jobspec(record["jobspec"]),
            submit_time=int(record["submit_time"]),
            name=record.get("name", ""),
            priority=int(record.get("priority", 0)),
            state=JobState(record["state"]),
            allocations=[allocations[int(i)] for i in record["alloc_ids"]],
            sched_time=float(record.get("sched_time", 0.0)),
            actual_duration=record.get("actual_duration"),
            cancel_reason=None if reason is None else CancelReason(reason),
            attempt=int(record.get("attempt", 0)),
            retry_of=record.get("retry_of"),
            work_credited=int(record.get("work_credited", 0)),
            ran_seconds=int(record.get("ran_seconds", 0)),
            finished_at=record.get("finished_at"),
            degraded=record.get("degraded"),
        )
        return job

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        window = ""
        if self.allocation:
            window = f" [{self.start_time},{self.end_time})"
        return f"Job(#{self.job_id} {self.state.value}{window})"
