"""Failure injection and recovery.

Production resource managers must survive hardware failing under running
jobs.  With the graph model, a failure is a drain (:meth:`mark_down
<repro.resource.graph.ResourceGraph.mark_down>`) plus cleanup of the jobs
that were touching the failed subtree:

* :func:`fail_vertex` — mark a vertex down mid-simulation, cancel every
  active job holding resources beneath it (cancel reason
  ``NODE_FAILURE``), optionally resubmit those jobs per the simulator's
  retry policy, and run a scheduling cycle so retries and survivors are
  placed immediately;
* :func:`repair_vertex` — return the vertex to service and reschedule.

Both are thin wrappers over :meth:`ClusterSimulator.fail
<repro.sched.simulator.ClusterSimulator.fail>` / :meth:`repair
<repro.sched.simulator.ClusterSimulator.repair>`, which the simulator also
invokes for failure/repair events scheduled on its heap (see
:mod:`repro.resilience`).  The traverser already skips down vertices, so no
special-casing is needed in the scheduler itself.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..resource import CONTAINMENT, ResourceVertex
from .job import Job
from .simulator import ClusterSimulator

__all__ = ["fail_vertex", "repair_vertex", "affected_jobs"]


def affected_jobs(sim: ClusterSimulator, vertex: ResourceVertex) -> List[Job]:
    """Active jobs holding any resource at or below ``vertex``.

    Membership is decided on the graph's containment structure rather than
    path-string prefixes, so root vertices, vertices without a containment
    path, and sibling names that share a prefix (``node1`` vs ``node10``)
    are all handled correctly.
    """
    doomed: Set[int] = {vertex.uniq_id}
    if CONTAINMENT in sim.graph.subsystems:
        for v in sim.graph.descendants(vertex):
            doomed.add(v.uniq_id)
    hit = []
    for job in sim.jobs.values():
        if not job.is_active or not job.allocations:
            continue
        if any(
            s.vertex.uniq_id in doomed
            for alloc in job.allocations
            for s in alloc.selections
        ):
            hit.append(job)
    return hit


def fail_vertex(
    sim: ClusterSimulator,
    vertex: ResourceVertex,
    resubmit: bool = True,
) -> Tuple[List[Job], List[Job]]:
    """Fail ``vertex`` (and implicitly its subtree) during a simulation.

    Cancels every active job touching the subtree; with ``resubmit`` each
    canceled job is resubmitted (same jobspec, retry-policy-governed delay
    and priority) so the queue reschedules it on healthy resources.  A
    scheduling cycle runs before returning.  Returns ``(canceled,
    resubmitted)`` job lists.
    """
    return sim.fail(vertex, resubmit=resubmit)


def repair_vertex(sim: ClusterSimulator, vertex: ResourceVertex) -> None:
    """Return a failed vertex to service and run a scheduling cycle so
    pending work can use it immediately."""
    sim.repair(vertex)
