"""Failure injection and recovery.

Production resource managers must survive hardware failing under running
jobs.  With the graph model, a failure is a drain (:meth:`mark_down
<repro.resource.graph.ResourceGraph.mark_down>`) plus cleanup of the jobs
that were touching the failed subtree:

* :func:`fail_vertex` — mark a vertex down mid-simulation, cancel every
  active job holding resources beneath it, and optionally resubmit those
  jobs (they re-queue at the current time and get rescheduled onto healthy
  resources by the normal cycle);
* :func:`repair_vertex` — return the vertex to service.

These work on a live :class:`~repro.sched.simulator.ClusterSimulator`
without any special-casing in the scheduler itself — the traverser already
skips down vertices.
"""

from __future__ import annotations

from typing import List, Tuple

from ..resource import ResourceVertex
from .job import Job, JobState
from .simulator import ClusterSimulator

__all__ = ["fail_vertex", "repair_vertex", "affected_jobs"]


def affected_jobs(sim: ClusterSimulator, vertex: ResourceVertex) -> List[Job]:
    """Active jobs holding any resource at or below ``vertex``."""
    prefix = vertex.path("containment")
    doomed = []
    for job in sim.jobs.values():
        if not job.is_active or not job.allocations:
            continue
        for alloc in job.allocations:
            if any(
                s.vertex is vertex
                or s.vertex.path("containment").startswith(prefix + "/")
                for s in alloc.selections
            ):
                doomed.append(job)
                break
    return doomed


def fail_vertex(
    sim: ClusterSimulator,
    vertex: ResourceVertex,
    resubmit: bool = True,
) -> Tuple[List[Job], List[Job]]:
    """Fail ``vertex`` (and implicitly its subtree) during a simulation.

    Cancels every active job touching the subtree; with ``resubmit`` each
    canceled job is resubmitted at the current simulation time (same
    jobspec/priority) so the queue reschedules it on healthy resources.
    Returns ``(canceled, resubmitted)`` job lists.
    """
    sim.graph.mark_down(vertex)
    canceled = affected_jobs(sim, vertex)
    resubmitted: List[Job] = []
    for job in canceled:
        sim.cancel(job)
    if resubmit:
        for job in canceled:
            resubmitted.append(
                sim.submit(job.jobspec, at=sim.now, name=f"{job.name}-retry",
                           priority=job.priority)
            )
    return canceled, resubmitted


def repair_vertex(sim: ClusterSimulator, vertex: ResourceVertex) -> None:
    """Return a failed vertex to service and run a scheduling cycle so
    pending work can use it immediately."""
    sim.graph.mark_up(vertex)
    sim._cycle()
