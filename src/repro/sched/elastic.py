"""Elasticity: dynamic updates to the resource graph store (paper §5.5).

Systems grow (new racks arrive, cloud capacity is attached) and shrink
(nodes drained, capacity reclaimed) while the scheduler keeps running.  The
graph model supports this directly: subtrees are added or removed and the
affected pruning-filter totals are resized in place — no global rebuild, and
existing allocations are never broken (shrinking allocated resources is
refused).

Job-side elasticity (malleability) works through the ordinary match verbs: a
job grows by acquiring an additional allocation and shrinks by releasing one
(see :meth:`grow_job` / :meth:`shrink_job`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..errors import ResourceGraphError
from ..grug.recipe import _build_level
from ..jobspec import Jobspec
from ..match import Allocation, Traverser
from ..resource import ResourceGraph, ResourceVertex
from .job import Job

__all__ = ["grow", "shrink_subtree", "resize_pool", "grow_job", "shrink_job"]


def _adjust_ancestor_filters(
    graph: ResourceGraph,
    vertex: ResourceVertex,
    deltas: Mapping[str, int],
    include_self: bool = False,
) -> None:
    """Apply per-type capacity deltas to every filter above ``vertex``."""
    targets: List[ResourceVertex] = list(graph.ancestors(vertex))
    if include_self:
        targets.insert(0, vertex)
    for ancestor in targets:
        filters = ancestor.prune_filters
        if filters is None:
            continue
        for rtype, delta in deltas.items():
            if not delta or rtype not in graph.prune_types:
                continue
            if filters.tracks(rtype):
                filters.resize(rtype, filters.total(rtype) + delta)
            elif delta > 0:
                filters.add_type(rtype, delta)


def grow(
    graph: ResourceGraph,
    parent: ResourceVertex,
    spec: Mapping[str, Any],
) -> List[ResourceVertex]:
    """Attach a new subtree under ``parent`` and return the created vertices.

    ``spec`` uses the GRUG recipe vertex format (type/count/size/with/...).
    Pruning filters on ``parent`` and its ancestors are grown by the new
    subtree's totals, so matching sees the capacity immediately.
    """
    first_new_id = graph._next_id
    _build_level(graph, parent, spec)
    created = [
        graph.vertex(uid) for uid in range(first_new_id, graph._next_id)
    ]
    deltas: Dict[str, int] = {}
    for vertex in created:
        deltas[vertex.type] = deltas.get(vertex.type, 0) + vertex.size
    _adjust_ancestor_filters(graph, parent, deltas, include_self=True)
    return created


def shrink_subtree(
    graph: ResourceGraph, vertex: ResourceVertex, force: bool = False
) -> int:
    """Remove ``vertex`` and its entire subtree; return how many were removed.

    Refuses when any vertex in the subtree holds active allocations unless
    ``force`` (which tears the spans' vertices out regardless — only for
    failure simulation).  Ancestor filter totals shrink accordingly.
    """
    doomed = [vertex] + list(graph.descendants(vertex))
    if not force:
        busy = [
            v.name
            for v in doomed
            if v.plans.span_count or v.xplans.span_count
        ]
        if busy:
            raise ResourceGraphError(
                f"subtree of {vertex.name} has active allocations on "
                f"{busy[:5]}; drain first or pass force=True"
            )
    deltas: Dict[str, int] = {}
    for v in doomed:
        deltas[v.type] = deltas.get(v.type, 0) - v.size
    parents = graph.parents(vertex)
    anchor = parents[0] if parents else None
    for v in reversed(doomed):
        graph.remove_vertex(v, force=True)
    if anchor is not None:
        _adjust_ancestor_filters(graph, anchor, deltas, include_self=True)
    return len(doomed)


def resize_pool(
    graph: ResourceGraph, vertex: ResourceVertex, new_size: int
) -> None:
    """Change a pool vertex's schedulable quantity (e.g. add memory).

    Shrinking below the amount currently allocated at any time raises.
    """
    delta = new_size - vertex.size
    if delta == 0:
        return
    vertex.plans.resize(new_size)
    vertex.size = new_size
    _adjust_ancestor_filters(graph, vertex, {vertex.type: delta})


def grow_job(
    traverser: Traverser, job: Job, jobspec: Jobspec, now: int = 0
) -> Optional[Allocation]:
    """Malleable grow: acquire an additional allocation for ``job``.

    Returns the new allocation (attached to the job) or None if it does not
    fit right now.  The extra window is clipped to the job's remaining
    runtime when the job already has a primary allocation.
    """
    alloc = traverser.allocate(jobspec, at=now)
    if alloc is not None:
        job.allocations.append(alloc)
    return alloc


def shrink_job(traverser: Traverser, job: Job, allocation: Allocation) -> None:
    """Malleable shrink: release one of the job's allocations early."""
    if allocation not in job.allocations:
        raise ResourceGraphError(
            f"allocation {allocation.alloc_id} does not belong to job {job.job_id}"
        )
    if allocation is job.allocation and len(job.allocations) > 1:
        raise ResourceGraphError(
            "cannot release the primary allocation while grown allocations "
            "remain; shrink those first"
        )
    traverser.remove(allocation.alloc_id)
    job.allocations.remove(allocation)
