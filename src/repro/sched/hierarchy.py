"""Fully hierarchical scheduling (paper §5.6).

Under the Flux design any instance can spawn child instances, granting each a
subset of its jobs and resources; the parent-child relationship extends to
arbitrary depth and width, enabling high throughput and per-child scheduler
specialisation.

Here an :class:`Instance` owns a resource graph and a traverser.  Spawning a
child allocates the granted resources from the parent (an ordinary exclusive
match), *clones* the granted subgraph into a fresh graph store, and hands
that to the child — exactly the separation the paper describes: the child is
a fully independent scheduler over its grant, and the parent sees the grant
as one opaque allocation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..errors import SchedulerError
from ..jobspec import Jobspec
from ..match import Allocation, MatchPolicy, Traverser
from ..resource import ResourceGraph, ResourceVertex

__all__ = ["Instance"]


class Instance:
    """One Flux-style scheduler instance over its own resource graph.

    Parameters
    ----------
    graph:
        The instance's resource graph (the root instance owns the real
        system graph; children own grant clones).
    match_policy:
        Match policy for this instance's traverser — children may specialise
        (§5.6: "customized scheduler specialization").
    """

    def __init__(
        self,
        graph: ResourceGraph,
        match_policy: "MatchPolicy | str" = "first",
        prune: bool = True,
        name: str = "root",
        parent: Optional["Instance"] = None,
    ) -> None:
        self.graph = graph
        self.traverser = Traverser(graph, policy=match_policy, prune=prune)
        self.name = name
        self.parent = parent
        self.children: List["Instance"] = []
        #: child name -> the parent-side allocation backing the child's grant
        self._grants: Dict[str, Allocation] = {}

    @property
    def depth(self) -> int:
        """Root instance has depth 0."""
        return 0 if self.parent is None else self.parent.depth + 1

    # ------------------------------------------------------------------
    # scheduling within this instance
    # ------------------------------------------------------------------
    def allocate(self, jobspec: Jobspec, at: int = 0) -> Optional[Allocation]:
        """Allocate a job within this instance's resources."""
        return self.traverser.allocate(jobspec, at=at)

    def allocate_orelse_reserve(
        self, jobspec: Jobspec, now: int = 0
    ) -> Optional[Allocation]:
        return self.traverser.allocate_orelse_reserve(jobspec, now=now)

    def free(self, alloc_id: int) -> None:
        self.traverser.remove(alloc_id)

    # ------------------------------------------------------------------
    # hierarchy management
    # ------------------------------------------------------------------
    def spawn_child(
        self,
        jobspec: Jobspec,
        match_policy: "MatchPolicy | str" = "first",
        name: str = "",
        at: int = 0,
    ) -> "Instance":
        """Grant ``jobspec``'s resources to a new child instance.

        The grant is allocated from this instance (so siblings cannot step on
        it), cloned into a standalone graph, and returned wrapped in a child
        :class:`Instance`.  Raises :class:`SchedulerError` when the grant does
        not fit.
        """
        grant = self.traverser.allocate(jobspec, at=at)
        if grant is None:
            raise SchedulerError(
                f"instance {self.name}: grant does not fit: {jobspec.summary()}"
            )
        child_name = name or f"{self.name}/{len(self.children)}"
        child_graph = self._clone_grant(grant, child_name)
        child = Instance(
            child_graph,
            match_policy=match_policy,
            name=child_name,
            parent=self,
        )
        self.children.append(child)
        self._grants[child_name] = grant
        return child

    def shutdown_child(self, child: "Instance") -> None:
        """Tear down ``child`` and return its grant to this instance."""
        if child not in self.children:
            raise SchedulerError(f"{child.name} is not a child of {self.name}")
        for grandchild in list(child.children):
            child.shutdown_child(grandchild)
        grant = self._grants.pop(child.name)
        self.traverser.remove(grant.alloc_id)
        self.children.remove(child)
        child.parent = None

    def walk(self) -> Iterator["Instance"]:
        """Yield this instance and all descendants (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    # ------------------------------------------------------------------
    # grant cloning
    # ------------------------------------------------------------------
    def _clone_grant(self, grant: Allocation, child_name: str) -> ResourceGraph:
        """Build a fresh graph containing the granted resources.

        Exclusive selections bring their whole subtree; shared/partial pool
        selections are cloned at the granted quantity.  Interior structure
        (racks etc.) is recreated as scaffolding so locality-aware policies
        keep working in the child.
        """
        parent_graph = self.graph
        clone = ResourceGraph(
            parent_graph.plan_start, parent_graph.plan_end, parent_graph.registry
        )
        root = clone.add_vertex("cluster", basename=child_name.replace("/", "_"))
        scaffold: Dict[int, ResourceVertex] = {}

        def scaffold_for(vertex: ResourceVertex) -> ResourceVertex:
            """Clone (memoised) the ancestor chain of ``vertex`` below root."""
            chain: List[ResourceVertex] = []
            current = vertex
            while True:
                parents = parent_graph.parents(current)
                if not parents:
                    break
                current = parents[0]
                chain.append(current)
            anchor = root
            for ancestor in reversed(chain[:-1]):  # skip the original root
                copy = scaffold.get(ancestor.uniq_id)
                if copy is None:
                    copy = clone.add_vertex(
                        ancestor.type,
                        basename=ancestor.basename,
                        id=ancestor.id,
                        size=ancestor.size,
                        unit=ancestor.unit,
                        properties=ancestor.properties,
                    )
                    clone.add_edge(anchor, copy)
                    scaffold[ancestor.uniq_id] = copy
                anchor = copy
            return anchor

        def deep_copy(vertex: ResourceVertex, parent_copy: ResourceVertex) -> None:
            copy = clone.add_vertex(
                vertex.type,
                basename=vertex.basename,
                id=vertex.id,
                size=vertex.size,
                unit=vertex.unit,
                properties=vertex.properties,
            )
            clone.add_edge(parent_copy, copy)
            scaffold[vertex.uniq_id] = copy
            for child in parent_graph.children(vertex):
                deep_copy(child, copy)

        for selection in grant.resources():
            anchor = scaffold_for(selection.vertex)
            if selection.exclusive:
                deep_copy(selection.vertex, anchor)
            else:
                partial = clone.add_vertex(
                    selection.vertex.type,
                    basename=selection.vertex.basename,
                    id=selection.vertex.id,
                    size=selection.amount or selection.vertex.size,
                    unit=selection.vertex.unit,
                    properties=selection.vertex.properties,
                )
                clone.add_edge(anchor, partial)
        if parent_graph.prune_types:
            clone.install_pruning_filters(
                list(parent_graph.prune_types), at_types=["rack", "node"]
            )
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Instance({self.name!r}, depth={self.depth}, "
            f"children={len(self.children)}, vertices={len(self.graph)})"
        )
