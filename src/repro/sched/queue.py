"""Queue policies: FCFS, EASY backfill, conservative backfill (paper §3.2).

The resource model deliberately knows nothing about queueing — these policies
sit on top of a :class:`~repro.match.Traverser` and only call its public
match verbs (separation of concerns, §3.5).  Because reservations are
physically booked in the planners, backfilled jobs can never delay a
reservation: the match itself refuses conflicting windows.

* :class:`FCFSQueue` — strict order, no reservations: the queue head either
  starts now or everything waits.
* :class:`EasyBackfill` — the head of the queue gets a reservation; later
  jobs may start *now* if they fit (they cannot push the head back).
* :class:`ConservativeBackfill` — every job gets allocate-orelse-reserve in
  submit order, the discipline the paper's §6.3 study uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SchedulerError
from ..match import Traverser
from ..obs import NULL_OBSERVER, Observer, WallTimer
from .job import Job, JobState

__all__ = [
    "QueuePolicy",
    "FCFSQueue",
    "EasyBackfill",
    "ConservativeBackfill",
    "QUEUE_POLICIES",
    "make_queue_policy",
]


class _SchedAttempt:
    """Times one full scheduling attempt for one job.

    Everything inside the ``with`` block — match/reserve verbs, reservation
    cancels during re-planning, state transitions — is charged to
    ``job.sched_time`` (wall-clock observability only; excluded from state
    fingerprints so it cannot break replay determinism).  When an observer
    is enabled the attempt also lands in the ``sched.attempt_seconds``
    histogram and opens a ``sched.attempt`` tracer span.
    """

    __slots__ = ("_obs", "_job", "_now", "_verb", "_timer", "_alloc0")

    def __init__(self, obs: Observer, job: Job, now: int, verb: str) -> None:
        self._obs = obs
        self._job = job
        self._now = now
        self._verb = verb
        self._timer = WallTimer()
        self._alloc0 = 0

    def __enter__(self) -> "_SchedAttempt":
        if self._obs.enabled:
            self._obs.tracer.begin(
                "sched.attempt", "sched", vt=float(self._now),
                job=self._job.job_id, verb=self._verb,
            )
            why = self._obs.why
            if why.enabled:
                self._alloc0 = len(self._job.allocations)
                why.begin_attempt(
                    self._job.job_id, float(self._now), self._verb,
                    name=self._job.name,
                )
        self._timer.__enter__()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.__exit__()
        self._job.sched_time += self._timer.elapsed
        if self._obs.enabled:
            self._obs.metrics.histogram(
                "sched.attempt_seconds",
                "wall time per full scheduling attempt",
            ).observe(self._timer.elapsed)
            why = self._obs.why
            if why.enabled:
                why.end_attempt(*self._outcome(exc))
            self._obs.tracer.end()

    def _outcome(self, exc: tuple) -> tuple:
        """(outcome, degradation level) for the attempt that just closed."""
        level = None
        if self._verb.startswith("degraded_"):
            level = self._verb[len("degraded_"):].upper()
        if exc and exc[0] is not None:
            return "deadline", level
        if self._verb == "replan_cancel":
            return "replan_cancel", level
        if len(self._job.allocations) > self._alloc0:
            alloc = self._job.allocations[-1]
            return ("reserved" if alloc.reserved else "matched"), level
        return "failed", level


class QueuePolicy:
    """Base queue policy; subclasses implement :meth:`cycle`."""

    name = "base"
    #: observability sink; ``ClusterSimulator(observe=...)`` replaces this
    #: per instance (class default keeps standalone policies zero-cost).
    obs: Observer = NULL_OBSERVER

    def cycle(self, pending: List[Job], traverser: Traverser, now: int) -> None:
        """Try to place pending jobs (in submit order) at time ``now``.

        Implementations mutate job state/allocations via the traverser.  Jobs
        left PENDING stay in the queue for the next cycle.
        """
        raise NotImplementedError

    def _attempt(self, job: Job, now: int, verb: str) -> _SchedAttempt:
        """Scope one job's full scheduling attempt (see _SchedAttempt)."""
        return _SchedAttempt(self.obs, job, now, verb)

    @staticmethod
    def _out_of_budget(traverser: Traverser) -> bool:
        """True when an attached overload work budget is spent: policies
        stop attempting further jobs this cycle (clean stop between
        attempts; mid-attempt the budget's own cancellation checkpoints
        fire — see :mod:`repro.resilience.overload`)."""
        budget = traverser.budget
        return budget is not None and budget.cycle_exhausted

    @staticmethod
    def _timed_match(job: Job, call, *args, **kwargs):
        """Deprecated: time a single traverser verb into job.sched_time.

        Kept for API compatibility; :meth:`_attempt` supersedes it because
        it scopes the *whole* attempt (reservation cancels included).
        """
        with WallTimer() as timer:
            result = call(*args, **kwargs)
        job.sched_time += timer.elapsed
        return result

    @staticmethod
    def _attach(job: Job, alloc, now: int) -> None:
        job.allocations.append(alloc)
        job.transition(JobState.RUNNING if alloc.at <= now else JobState.RESERVED)

    # -- snapshot state (crash recovery) -------------------------------
    def export_state(self) -> dict:
        """Policy-internal state to carry across a restart (default: none)."""
        return {}

    def import_state(self, state: dict, jobs: Dict[int, Job]) -> None:
        """Restore :meth:`export_state` output; ``jobs`` maps id -> Job."""


class FCFSQueue(QueuePolicy):
    """First-come first-served without backfilling."""

    name = "fcfs"

    def cycle(self, pending: List[Job], traverser: Traverser, now: int) -> None:
        for job in pending:
            if job.state is not JobState.PENDING:
                continue
            if self._out_of_budget(traverser):
                break
            with self._attempt(job, now, "allocate"):
                alloc = traverser.allocate(job.jobspec, at=now)
                if alloc is not None:
                    self._attach(job, alloc, now)
            if alloc is None:
                break  # head of queue blocks everyone behind it


class EasyBackfill(QueuePolicy):
    """EASY backfilling: one reservation for the queue head, others start-now.

    The head's reservation is re-planned every cycle (canceled and re-made)
    so completions pull it earlier; backfilled jobs physically cannot delay
    it because the reservation's spans are booked in the planners.
    """

    name = "easy"

    def __init__(self) -> None:
        self._head_reservation: Dict[int, tuple] = {}  # job_id -> (job, alloc_id)

    def cycle(self, pending: List[Job], traverser: Traverser, now: int) -> None:
        # Cancel the standing head reservation (if it has not started running
        # in the meantime); it is re-planned below so completions pull it
        # earlier.
        for job_id, (job, alloc_id) in list(self._head_reservation.items()):
            del self._head_reservation[job_id]
            if job.state is JobState.RESERVED and alloc_id in traverser.allocations:
                # Re-planning work is scheduling cost too: charge the cancel
                # to the job whose reservation is being re-made.
                with self._attempt(job, now, "replan_cancel"):
                    traverser.remove(alloc_id)
                    job.transition(JobState.PENDING)
                    job.allocations.clear()
        head_blocked = False
        for job in pending:
            if self._out_of_budget(traverser):
                break
            if not head_blocked:
                with self._attempt(job, now, "allocate_orelse_reserve"):
                    alloc = traverser.allocate_orelse_reserve(
                        job.jobspec, now=now
                    )
                    if alloc is not None:
                        self._attach(job, alloc, now)
                if alloc is None:
                    continue  # never satisfiable; skip (stays pending)
                if alloc.reserved:
                    head_blocked = True
                    self._head_reservation[job.job_id] = (job, alloc.alloc_id)
            else:
                with self._attempt(job, now, "backfill"):
                    alloc = traverser.allocate(job.jobspec, at=now)
                    if alloc is not None:
                        self._attach(job, alloc, now)

    def export_state(self) -> dict:
        return {
            "head_reservation": {
                str(job_id): alloc_id
                for job_id, (_job, alloc_id) in self._head_reservation.items()
            }
        }

    def import_state(self, state: dict, jobs: Dict[int, Job]) -> None:
        self._head_reservation = {
            int(job_id): (jobs[int(job_id)], int(alloc_id))
            for job_id, alloc_id in (state.get("head_reservation") or {}).items()
        }


class ConservativeBackfill(QueuePolicy):
    """Conservative backfilling: every job allocates now or reserves.

    Reservations are kept (never re-planned), so each job's planned start can
    only be honored, matching the guarantee conservative backfilling makes.

    ``depth`` bounds how many jobs hold future reservations at once
    (Fluxion's ``queue-depth``): deep queues stop paying reservation-planning
    cost for jobs far from the head, at the price of weaker start-time
    guarantees for them.  ``None`` means unlimited.
    """

    name = "conservative"

    def __init__(self, depth: Optional[int] = None) -> None:
        if depth is not None and depth < 1:
            raise SchedulerError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth

    def cycle(self, pending: List[Job], traverser: Traverser, now: int) -> None:
        reserved = sum(1 for job in pending if job.state is JobState.RESERVED)
        for job in pending:
            if job.state is not JobState.PENDING:
                continue
            if self._out_of_budget(traverser):
                break
            if self.depth is not None and reserved >= self.depth:
                # Depth reached: only start-now placements beyond this point.
                with self._attempt(job, now, "allocate"):
                    alloc = traverser.allocate(job.jobspec, at=now)
                    if alloc is not None:
                        self._attach(job, alloc, now)
            else:
                with self._attempt(job, now, "allocate_orelse_reserve"):
                    alloc = traverser.allocate_orelse_reserve(
                        job.jobspec, now=now
                    )
                    if alloc is not None:
                        self._attach(job, alloc, now)
            if alloc is not None and alloc.reserved:
                reserved += 1

    def export_state(self) -> dict:
        return {"depth": self.depth}

    def import_state(self, state: dict, jobs: Dict[int, Job]) -> None:
        self.depth = state.get("depth")


QUEUE_POLICIES = {
    "fcfs": FCFSQueue,
    "easy": EasyBackfill,
    "conservative": ConservativeBackfill,
}


def make_queue_policy(name: str) -> QueuePolicy:
    """Instantiate a queue policy by registry name."""
    try:
        return QUEUE_POLICIES[name]()
    except KeyError:
        raise SchedulerError(
            f"unknown queue policy {name!r}; known: {sorted(QUEUE_POLICIES)}"
        ) from None
