"""Workflow (DAG) scheduling on top of the simulator.

The paper's opening motivation is "management of complex and high-throughput
scientific workflows ... large-scale coordinated workflows, in-situ
workflows, ensemble simulations" (§1).  This module runs a task DAG through
a :class:`~repro.sched.simulator.ClusterSimulator`: a task is submitted the
moment its dependencies complete, and the scheduler (queue policy + match
policy + resource graph) decides everything else — the workflow layer adds
*no* new matching machinery, which is exactly the separation of concerns
§3.5 advertises.

Example::

    wf = Workflow()
    pre = wf.add_task("preprocess", nodes_jobspec(1, duration=100))
    sims = [
        wf.add_task(f"sim{i}", nodes_jobspec(2, duration=500), deps=[pre])
        for i in range(8)
    ]
    wf.add_task("analyze", nodes_jobspec(4, duration=200), deps=sims)
    result = wf.execute(ClusterSimulator(tiny_cluster()))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import SchedulerError
from ..jobspec import Jobspec
from .job import Job, JobState
from .simulator import ClusterSimulator, SimulationReport

__all__ = ["Workflow", "Task", "WorkflowResult"]


@dataclass
class Task:
    """One workflow task: a jobspec plus dependencies (by task name)."""

    name: str
    jobspec: Jobspec
    deps: List[str] = field(default_factory=list)
    priority: int = 0
    #: the scheduler job once submitted
    job: Optional[Job] = None

    @property
    def state(self) -> str:
        if self.job is None:
            return "waiting"
        return self.job.state.value


@dataclass
class WorkflowResult:
    """Outcome of one workflow execution."""

    tasks: Dict[str, Task]
    report: SimulationReport

    @property
    def makespan(self) -> int:
        ends = [
            t.job.end_time
            for t in self.tasks.values()
            if t.job is not None and t.job.end_time is not None
        ]
        return max(ends) if ends else 0

    def completed(self) -> List[Task]:
        return [
            t for t in self.tasks.values()
            if t.job is not None and t.job.state is JobState.COMPLETED
        ]

    def failed(self) -> List[Task]:
        """Tasks that never ran (unsatisfiable, or upstream never finished)."""
        return [t for t in self.tasks.values() if t not in self.completed()]

    def critical_path_respected(self) -> bool:
        """True when every task started at/after all its dependencies' ends."""
        for task in self.completed():
            for dep_name in task.deps:
                dep = self.tasks[dep_name]
                if dep.job is None or dep.job.end_time is None:
                    return False
                if task.job.start_time < dep.job.end_time:
                    return False
        return True


class Workflow:
    """A DAG of jobs executed through one simulator."""

    def __init__(self) -> None:
        self.tasks: Dict[str, Task] = {}

    def add_task(
        self,
        name: str,
        jobspec: Jobspec,
        deps: Optional[Sequence["str | Task"]] = None,
        priority: int = 0,
    ) -> Task:
        """Register a task; ``deps`` may be task names or Task objects."""
        if name in self.tasks:
            raise SchedulerError(f"duplicate task name {name!r}")
        dep_names = []
        for dep in deps or []:
            dep_name = dep.name if isinstance(dep, Task) else str(dep)
            if dep_name not in self.tasks:
                raise SchedulerError(
                    f"task {name!r} depends on unknown task {dep_name!r}"
                )
            dep_names.append(dep_name)
        task = Task(name=name, jobspec=jobspec, deps=dep_names,
                    priority=priority)
        self.tasks[name] = task
        return task

    def _ready_tasks(self) -> List[Task]:
        ready = []
        for task in self.tasks.values():
            if task.job is not None:
                continue
            if all(
                self.tasks[d].job is not None
                and self.tasks[d].job.state is JobState.COMPLETED
                for d in task.deps
            ):
                ready.append(task)
        return ready

    def execute(self, sim: ClusterSimulator) -> WorkflowResult:
        """Run the DAG to completion (or until it can make no progress).

        Tasks are submitted the moment their dependencies complete; the
        simulator's queue policy handles ordering, backfilling and
        reservations among the submitted tasks.  A task whose jobspec is
        unsatisfiable is canceled by the simulator and permanently blocks
        its descendants (reported via :meth:`WorkflowResult.failed`).
        """
        if not self.tasks:
            raise SchedulerError("workflow has no tasks")
        # Submit the initial frontier, then interleave event processing with
        # dependency-triggered submissions.
        for task in self._ready_tasks():
            task.job = sim.submit(task.jobspec, at=sim.now, name=task.name,
                                  priority=task.priority)
        while True:
            progressed = sim.step() is not None
            newly_ready = self._ready_tasks()
            for task in newly_ready:
                task.job = sim.submit(task.jobspec, at=sim.now,
                                      name=task.name, priority=task.priority)
            if not progressed and not newly_ready:
                break
        return WorkflowResult(tasks=dict(self.tasks), report=sim.report())
