"""Event-driven cluster simulator.

Drives a resource graph + traverser + queue policy through simulated time:
job submissions, starts and completions are heap events; every submission or
completion triggers a scheduling cycle.  This substitutes for the Flux
resource manager around Fluxion (the paper's experiments only measure the
matching layer, which is identical here).

Typical use::

    graph = tiny_cluster()
    sim = ClusterSimulator(graph, match_policy="low", queue="conservative")
    sim.submit(simple_node_jobspec(cores=4, duration=600), at=0)
    report = sim.run()
    print(report.summary())
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SchedulerError
from ..jobspec import Jobspec
from ..match import MatchPolicy, Traverser
from ..resource import ResourceGraph
from .job import Job, JobState
from .queue import QueuePolicy, make_queue_policy

__all__ = ["ClusterSimulator", "SimulationReport"]

_SUBMIT, _START, _END = 0, 1, 2


@dataclass
class SimulationReport:
    """Aggregate results of a simulation run."""

    jobs: List[Job]
    makespan: int
    total_sched_time: float

    @property
    def completed(self) -> List[Job]:
        return [j for j in self.jobs if j.state is JobState.COMPLETED]

    @property
    def unsatisfiable(self) -> List[Job]:
        return [j for j in self.jobs if j.state is JobState.CANCELED]

    def mean_wait(self) -> float:
        """Mean wait (submit -> start) over jobs that started."""
        waits = [j.wait_time for j in self.jobs if j.wait_time is not None]
        return sum(waits) / len(waits) if waits else 0.0

    def immediate_starts(self) -> int:
        """Jobs that started the instant they were submitted (§6.3 reports 62/200)."""
        return sum(1 for j in self.jobs if j.wait_time == 0)

    def summary(self) -> str:
        return (
            f"{len(self.completed)}/{len(self.jobs)} jobs completed, "
            f"makespan={self.makespan}, mean wait={self.mean_wait():.1f}, "
            f"sched time={self.total_sched_time:.3f}s"
        )


class ClusterSimulator:
    """Discrete-event simulation of one cluster under one queue policy.

    Parameters
    ----------
    graph:
        The resource graph store (one simulator owns its planners).
    match_policy:
        Traverser match policy name or instance.
    queue:
        Queue policy name (``fcfs``/``easy``/``conservative``) or instance.
    prune:
        Enable pruning filters during matching.
    """

    def __init__(
        self,
        graph: ResourceGraph,
        match_policy: "MatchPolicy | str" = "first",
        queue: "QueuePolicy | str" = "conservative",
        prune: bool = True,
    ) -> None:
        self.graph = graph
        self.traverser = Traverser(graph, policy=match_policy, prune=prune)
        self.queue_policy = (
            make_queue_policy(queue) if isinstance(queue, str) else queue
        )
        self.jobs: Dict[int, Job] = {}
        self.now = graph.plan_start
        self._events: List[tuple] = []  # (time, kind, seq, job_id)
        self._seq = itertools.count()
        self._next_job_id = 1
        self._started_allocs: set = set()
        #: chronological (time, event, job_id) log: submit/start/end/cancel
        self.event_log: List[tuple] = []

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        jobspec: Jobspec,
        at: Optional[int] = None,
        name: str = "",
        priority: int = 0,
    ) -> Job:
        """Queue ``jobspec`` for submission at time ``at`` (default: now).

        ``priority`` reorders the queue: higher-priority jobs are considered
        first by every queue policy (ties resolved by submission order).
        """
        submit_time = self.now if at is None else at
        if submit_time < self.now:
            raise SchedulerError(
                f"cannot submit in the past (t={submit_time} < now={self.now})"
            )
        job = Job(
            job_id=self._next_job_id,
            jobspec=jobspec,
            submit_time=submit_time,
            name=name or f"job{self._next_job_id}",
            priority=priority,
        )
        self._next_job_id += 1
        self.jobs[job.job_id] = job
        self._push(submit_time, _SUBMIT, job.job_id)
        self.event_log.append((submit_time, "submit", job.job_id))
        return job

    def cancel(self, job: Job) -> None:
        """Cancel a pending/reserved/running job, releasing its resources."""
        if not job.is_active:
            raise SchedulerError(f"job {job.job_id} is not active")
        for alloc in job.allocations:
            if alloc.alloc_id in self.traverser.allocations:
                self.traverser.remove(alloc.alloc_id)
        job.allocations.clear()
        job.transition(JobState.CANCELED)
        self.event_log.append((self.now, "cancel", job.job_id))

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> SimulationReport:
        """Process events until the heap drains (or simulated ``until``)."""
        while self._events:
            when, kind, _, job_id = self._events[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._events)
            self.now = max(self.now, when)
            job = self.jobs[job_id]
            if kind == _SUBMIT:
                self._on_submit(job)
            elif kind == _START:
                self._on_start(job)
            else:
                self._on_end(job)
        return self.report()

    def step(self) -> Optional[int]:
        """Process a single event; returns its time or None when drained."""
        if not self._events:
            return None
        when, kind, _, job_id = heapq.heappop(self._events)
        self.now = max(self.now, when)
        job = self.jobs[job_id]
        if kind == _SUBMIT:
            self._on_submit(job)
        elif kind == _START:
            self._on_start(job)
        else:
            self._on_end(job)
        return when

    def report(self) -> SimulationReport:
        makespan = max(
            (j.end_time for j in self.jobs.values() if j.end_time is not None),
            default=self.now,
        )
        return SimulationReport(
            jobs=sorted(self.jobs.values(), key=lambda j: j.job_id),
            makespan=makespan,
            total_sched_time=sum(j.sched_time for j in self.jobs.values()),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _push(self, when: int, kind: int, job_id: int) -> None:
        heapq.heappush(self._events, (when, kind, next(self._seq), job_id))

    def _pending_jobs(self) -> List[Job]:
        return [
            j
            for j in sorted(
                self.jobs.values(), key=lambda j: (-j.priority, j.job_id)
            )
            if j.state in (JobState.PENDING, JobState.RESERVED)
            and j.submit_time <= self.now
        ]

    def _on_submit(self, job: Job) -> None:
        if not self.traverser.satisfiable(job.jobspec):
            job.transition(JobState.CANCELED)
            return
        self._cycle()

    def _on_start(self, job: Job) -> None:
        if job.state is JobState.RESERVED and job.start_time == self.now:
            job.transition(JobState.RUNNING)
            self.event_log.append((self.now, "start", job.job_id))

    def _on_end(self, job: Job) -> None:
        # Stale events (from re-planned EASY reservations) are ignored: the
        # job must be running and actually due to end now.
        if job.state is not JobState.RUNNING or job.end_time != self.now:
            return
        for alloc in job.allocations:
            if alloc.alloc_id in self.traverser.allocations:
                self.traverser.remove(alloc.alloc_id)
        job.transition(JobState.COMPLETED)
        self.event_log.append((self.now, "end", job.job_id))
        self._cycle()

    def _cycle(self) -> None:
        """Run one scheduling cycle and enqueue start/end events."""
        self.queue_policy.cycle(self._pending_jobs(), self.traverser, self.now)
        for job in self.jobs.values():
            alloc = job.allocation
            if alloc is None or alloc.alloc_id in self._started_allocs:
                continue
            self._started_allocs.add(alloc.alloc_id)
            if job.state is JobState.RESERVED:
                self._push(alloc.at, _START, job.job_id)
            else:
                self.event_log.append((self.now, "start", job.job_id))
            self._push(alloc.end, _END, job.job_id)
