"""Event-driven cluster simulator.

Drives a resource graph + traverser + queue policy through simulated time:
job submissions, starts, completions, hardware failures/repairs and walltime
kills are heap events; every submission, completion, failure, repair or kill
triggers a scheduling cycle.  This substitutes for the Flux resource manager
around Fluxion (the paper's experiments only measure the matching layer,
which is identical here).

Typical use::

    graph = tiny_cluster()
    sim = ClusterSimulator(graph, match_policy="low", queue="conservative")
    sim.submit(simple_node_jobspec(cores=4, duration=600), at=0)
    report = sim.run()
    print(report.summary())

Resilience: failure/repair events can be scheduled directly
(:meth:`ClusterSimulator.schedule_failure` / :meth:`schedule_repair`) or
generated from seeded MTBF/MTTR distributions by
:class:`~repro.resilience.FaultInjector`.  A
:class:`~repro.resilience.RetryPolicy` governs how killed jobs are
resubmitted, and ``audit=True`` cross-checks scheduler state after every
cycle (:mod:`repro.resilience.auditor`).
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SchedulerError
from ..jobspec import Jobspec
from ..match import MatchPolicy, Traverser
from ..obs import Observer, resolve as _resolve_observer
from ..obs import runtime as _obs_runtime
from ..resource import ResourceGraph, ResourceVertex
from .job import CancelReason, Job, JobState
from .queue import QueuePolicy, make_queue_policy

__all__ = ["ClusterSimulator", "SimulationReport"]

_SUBMIT, _START, _END, _FAIL, _REPAIR, _WALLTIME = 0, 1, 2, 3, 4, 5


@dataclass
class SimulationReport:
    """Aggregate results of a simulation run."""

    jobs: List[Job]
    makespan: int
    total_sched_time: float
    #: total schedulable node pool size of the graph (for utilization)
    node_capacity: int = 0
    #: vertex failure events processed
    failures: int = 0
    #: jobs resubmitted after a failure or walltime kill
    retries: int = 0
    #: node-seconds of capacity unavailable due to down vertices
    node_seconds_lost: int = 0
    #: node-seconds of job progress discarded by kills (after checkpoints)
    work_lost: int = 0
    #: node-seconds jobs actually occupied resources (finished jobs only)
    busy_node_seconds: int = 0
    #: mean observed repair time over completed down intervals (0 if none)
    mttr_observed: float = 0.0
    # -- crash-recovery observability (repro.recovery) -----------------
    #: snapshots written by an attached RecoveryManager
    snapshots_taken: int = 0
    #: write-ahead-journal records appended
    journal_records: int = 0
    #: journal records consumed while replaying after a restart
    journal_replayed: int = 0
    #: torn (truncated/corrupt) trailing journal records dropped on recovery
    torn_records_dropped: int = 0
    #: times this simulator state was restored from snapshot+journal
    recoveries: int = 0
    #: replay heap-top divergences observed (raises outside salvage mode)
    replay_divergences: int = 0
    #: CRC-bad mid-stream journal records skipped by salvage recovery
    salvage_skipped: int = 0
    #: replay-suffix records dropped after a salvage-mode divergence stop
    salvage_dropped: int = 0
    #: corrupt snapshot sections dropped and rebuilt by salvage recovery
    snapshot_sections_rebuilt: int = 0
    # -- observability (repro.obs) --------------------------------------
    #: metrics snapshot (observer + traverser registries) when the run was
    #: observed (ClusterSimulator(observe=...) / FLUXOBS=1), else None
    metrics: "Optional[Dict[str, object]]" = None
    #: fluxwhy decision-provenance export (schema "fluxwhy-v1") when the
    #: run was observed with a DecisionRecorder, else None
    provenance: "Optional[Dict[str, object]]" = None
    # -- overload protection (repro.resilience.overload) ----------------
    #: True when an OverloadController was attached for the run
    overload_enabled: bool = False
    #: submissions refused by admission control (policy "reject")
    overload_rejected: int = 0
    #: jobs evicted (or refused) by the shed-lowest-priority policy
    overload_shed: int = 0
    #: submissions parked by the "defer" policy over the whole run
    overload_deferred: int = 0
    #: deferred jobs promoted back into the schedulable queue
    overload_promoted: int = 0
    #: jobs still parked in the deferred holding bay at end of run
    overload_still_deferred: int = 0
    #: jobs matched at a degraded ladder level (COARSE/NODECENTRIC)
    degraded_matches: int = 0
    #: match attempts cut short by the attempt deadline
    deadline_attempts: int = 0
    #: dispatch cycles cut short by the cycle deadline
    deadline_cycles: int = 0
    #: circuit-breaker trips across every breaker
    breaker_trips: int = 0
    #: degradation-ladder level when the run ended ("" when disabled)
    overload_level: str = ""
    #: worst cycle-budget overrun in work units (bounded by one
    #: cancellation-checkpoint interval)
    max_cycle_overrun: int = 0
    # -- state integrity (repro.recovery.integrity) ----------------------
    #: True when an IntegrityMonitor scrubbed this run
    integrity_enabled: bool = False
    #: vertices examined by scrub passes over the whole run
    vertices_scrubbed: int = 0
    #: individual findings detected (checksum/span/tree drift)
    corruption_detected: int = 0
    #: vertices quarantined (drained pending repair)
    corruption_quarantined: int = 0
    #: vertices repaired and returned to service
    corruption_repaired: int = 0
    #: vertices left quarantined (repair + evacuation both failed)
    corruption_unrepaired: int = 0
    #: journaled repair actions applied
    integrity_repair_actions: int = 0
    #: jobs requeued because their reservations were lost to corruption
    integrity_jobs_requeued: int = 0

    @property
    def completed(self) -> List[Job]:
        return [j for j in self.jobs if j.state is JobState.COMPLETED]

    @property
    def canceled(self) -> List[Job]:
        """Every CANCELED job, regardless of reason."""
        return [j for j in self.jobs if j.state is JobState.CANCELED]

    def _by_reason(self, reason: CancelReason) -> List[Job]:
        return [j for j in self.canceled if j.cancel_reason is reason]

    @property
    def unsatisfiable(self) -> List[Job]:
        """Jobs the machine can never run (not failure/walltime victims)."""
        return self._by_reason(CancelReason.UNSATISFIABLE)

    @property
    def failure_killed(self) -> List[Job]:
        return self._by_reason(CancelReason.NODE_FAILURE)

    @property
    def walltime_exceeded(self) -> List[Job]:
        return self._by_reason(CancelReason.WALLTIME)

    @property
    def user_canceled(self) -> List[Job]:
        return self._by_reason(CancelReason.USER)

    @property
    def admission_rejected(self) -> List[Job]:
        """Jobs refused outright by admission control."""
        return self._by_reason(CancelReason.ADMISSION)

    @property
    def admission_shed(self) -> List[Job]:
        """Jobs evicted (or refused) by the shed-lowest-priority policy."""
        return self._by_reason(CancelReason.SHED)

    @property
    def degraded(self) -> List[Job]:
        """Jobs whose allocation came from a degraded ladder level."""
        return [j for j in self.jobs if j.degraded is not None]

    def mean_wait(self) -> float:
        """Mean wait (submit -> start) over jobs that started."""
        waits = [j.wait_time for j in self.jobs if j.wait_time is not None]
        return sum(waits) / len(waits) if waits else 0.0

    def immediate_starts(self) -> int:
        """Jobs that started the instant they were submitted (§6.3 reports 62/200)."""
        return sum(1 for j in self.jobs if j.wait_time == 0)

    def utilization(self) -> float:
        """Raw node utilization: occupied node-seconds over capacity."""
        denom = self.node_capacity * self.makespan
        return self.busy_node_seconds / denom if denom else 0.0

    def goodput(self) -> float:
        """Useful node utilization: occupancy minus work lost to kills."""
        denom = self.node_capacity * self.makespan
        if not denom:
            return 0.0
        return (self.busy_node_seconds - self.work_lost) / denom

    def explain(self, job_id: int) -> str:
        """Explain-tree for one job's scheduling decisions (fluxwhy).

        Renders the recorded admission verdicts, attempt outcomes and
        blocking constraints for ``job_id``; a header line carries the
        job's final state.  Needs a run observed with a decision recorder
        (``observe=True`` enables one) — otherwise reports that nothing
        was recorded.
        """
        from ..obs.why import render_explain

        job = next((j for j in self.jobs if j.job_id == job_id), None)
        return render_explain(self.provenance or {}, job_id, job)

    def summary(self) -> str:
        text = (
            f"{len(self.completed)}/{len(self.jobs)} jobs completed, "
            f"makespan={self.makespan}, mean wait={self.mean_wait():.1f}, "
            f"sched time={self.total_sched_time:.3f}s"
        )
        if self.failures or self.retries:
            text += (
                f"; {self.failures} failures, {self.retries} retries, "
                f"{self.node_seconds_lost} node-s down, "
                f"{self.work_lost} node-s work lost, "
                f"goodput={self.goodput():.2f}/{self.utilization():.2f}"
            )
        if (
            self.snapshots_taken
            or self.journal_records
            or self.recoveries
            or self.torn_records_dropped
            or self.replay_divergences
        ):
            text += (
                f"; recovery: {self.snapshots_taken} snapshots, "
                f"{self.journal_records} journal records, "
                f"{self.recoveries} restarts "
                f"({self.journal_replayed} replayed, "
                f"{self.torn_records_dropped} torn dropped, "
                f"{self.replay_divergences} replay divergences)"
            )
        if (
            self.salvage_skipped
            or self.salvage_dropped
            or self.snapshot_sections_rebuilt
        ):
            text += (
                f"; salvage: {self.salvage_skipped} records skipped, "
                f"{self.salvage_dropped} dropped post-divergence, "
                f"{self.snapshot_sections_rebuilt} snapshot sections rebuilt"
            )
        if self.integrity_enabled:
            text += (
                f"; integrity: {self.vertices_scrubbed} scrubbed, "
                f"{self.corruption_detected} findings, "
                f"{self.corruption_quarantined} quarantined, "
                f"{self.corruption_repaired} repaired "
                f"({self.integrity_repair_actions} actions, "
                f"{self.integrity_jobs_requeued} jobs requeued, "
                f"{self.corruption_unrepaired} unrepaired)"
            )
        if self.overload_enabled:
            text += (
                f"; overload: {self.overload_rejected} rejected, "
                f"{self.overload_shed} shed, "
                f"{self.overload_deferred} deferred "
                f"({self.overload_promoted} resumed, "
                f"{self.overload_still_deferred} parked), "
                f"{self.degraded_matches} degraded matches, "
                f"{self.deadline_attempts} attempt deadlines, "
                f"{self.deadline_cycles} cut cycles, "
                f"{self.breaker_trips} breaker trips, "
                f"level={self.overload_level.lower()}"
            )
        if self.metrics:
            visits = self.metrics.get("dfu.visits", 0)
            matched = self.metrics.get("dfu.matched", 0)
            hits = self.metrics.get("sdfu.filter_hits", 0)
            misses = self.metrics.get("sdfu.filter_misses", 0)
            consults = hits + misses
            attempts = self.metrics.get("sched.attempt_seconds")
            attempt_count = (
                attempts.get("count", 0) if isinstance(attempts, dict) else 0
            )
            text += (
                f"; obs: {self.metrics.get('sim.cycles', 0)} cycles, "
                f"{attempt_count} sched attempts, {visits} visits, "
                f"{matched} matched, sdfu prune hits {hits}/{consults}"
            )
        if self.provenance:
            totals = self.provenance.get("totals", {})
            text += (
                f"; why: {totals.get('attempts', 0)} attempts recorded "
                f"({totals.get('failed', 0)} failed, "
                f"{totals.get('events', 0)} admission events); "
                f"see report.explain(job_id)"
            )
        return text


class ClusterSimulator:
    """Discrete-event simulation of one cluster under one queue policy.

    Parameters
    ----------
    graph:
        The resource graph store (one simulator owns its planners).
    match_policy:
        Traverser match policy name or instance.
    queue:
        Queue policy name (``fcfs``/``easy``/``conservative``) or instance.
    prune:
        Enable pruning filters during matching.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy` governing
        resubmission of failure/walltime-killed jobs.  ``None`` preserves the
        historical behaviour: immediate resubmission, no backoff, no
        checkpointing, unlimited attempts.
    audit:
        Run the :class:`~repro.resilience.InvariantAuditor` after every
        scheduling cycle, raising
        :class:`~repro.resilience.InvariantViolation` on corrupt state.
        Pass ``True`` for a default auditor or an auditor instance.
    sanitize:
        Activate the :class:`~repro.statcheck.FluxSan` runtime sanitizer for
        this simulator's lifetime (span double-free, exclusive-overlap and
        SDFU-divergence checks).  Also enabled globally by setting the
        ``FLUXSAN=1`` environment variable.
    observe:
        Observability (:mod:`repro.obs`): ``True`` (or ``FLUXOBS=1`` in the
        environment) records metrics and structured trace spans for the
        whole run; an :class:`~repro.obs.Observer` instance shares sinks
        across simulators.  Off by default; the disabled path costs only
        no-op calls.  See :meth:`export_trace` and
        :attr:`SimulationReport.metrics`.
    overload:
        Overload protection (:mod:`repro.resilience.overload`): an
        :class:`~repro.resilience.OverloadConfig` (or a pre-built
        :class:`~repro.resilience.OverloadController`) enables admission
        control, scheduling deadlines, circuit breakers and the graceful
        degradation ladder for this simulator.  ``None`` (default) keeps
        the historical unbounded behaviour.
    integrity:
        Online state-integrity scrubbing (:mod:`repro.recovery.integrity`):
        an :class:`~repro.recovery.IntegrityConfig` (or a pre-built
        :class:`~repro.recovery.IntegrityMonitor`) runs a work-budgeted
        fluxfsck pass at the head of every scheduling cycle, quarantining
        and repairing corrupted vertices before matching reads them.
        ``None`` (default) disables scrubbing.
    """

    def __init__(
        self,
        graph: ResourceGraph,
        match_policy: "MatchPolicy | str" = "first",
        queue: "QueuePolicy | str" = "conservative",
        prune: bool = True,
        retry_policy: "Optional[RetryPolicy]" = None,
        audit: bool = False,
        sanitize: bool = False,
        observe: "Observer | bool | None" = None,
        overload: "OverloadConfig | OverloadController | None" = None,
        integrity: "IntegrityConfig | IntegrityMonitor | None" = None,
    ) -> None:
        self.graph = graph
        self.obs = _resolve_observer(observe)
        self.traverser = Traverser(
            graph, policy=match_policy, prune=prune, obs=self.obs
        )
        self.queue_policy = (
            make_queue_policy(queue) if isinstance(queue, str) else queue
        )
        self.queue_policy.obs = self.obs
        self.jobs: Dict[int, Job] = {}
        self.now = graph.plan_start
        self._events: List[tuple] = []  # (time, kind, seq, ref, data)
        self._event_seq = 0
        self._next_job_id = 1
        self._started_allocs: set = set()
        #: chronological (time, event, ref) log: submit/start/end/cancel/
        #: walltime per job, fail/repair per vertex name
        self.event_log: List[tuple] = []
        self.retry_policy = retry_policy
        self.auditor = None
        if audit:
            from ..resilience.auditor import InvariantAuditor

            self.auditor = audit if not isinstance(audit, bool) else InvariantAuditor()
        # resilience accounting
        self.failures = 0
        self.retries = 0
        self._down_since: Dict[int, Tuple[int, int]] = {}  # uid -> (t, nodes)
        self._downtime: List[Tuple[int, int, int, int]] = []  # uid, t0, t1, nodes
        self._busy_node_seconds = 0
        self._work_lost = 0
        # crash recovery (repro.recovery): a RecoveryManager journals every
        # top-level command before it is applied and restores state after a
        # crash; a CrashInjector kills the process at named cut points.
        self.recovery = None
        self._crash_injector = None
        self._replaying = False
        self._applying = 0  # >0 while executing a journaled command
        self.recovery_stats = {
            "snapshots_taken": 0,
            "journal_records": 0,
            "journal_replayed": 0,
            "torn_records_dropped": 0,
            "recoveries": 0,
            "replay_divergences": 0,
            "salvage_skipped": 0,
            "salvage_dropped": 0,
            "snapshot_sections_rebuilt": 0,
        }
        # opt-in runtime sanitizer (repro.statcheck): FLUXSAN=1 in the
        # environment turns it on for every simulator; sanitize=True for one.
        self.fluxsan = None
        if sanitize or os.environ.get("FLUXSAN", "") not in ("", "0"):
            from ..statcheck.sanitizer import FluxSan

            self.fluxsan = FluxSan().activate()
        # overload protection (repro.resilience.overload)
        self.overload = None
        if overload is not None:
            from ..resilience.overload import (
                OverloadConfig,
                OverloadController,
            )

            self.overload = (
                overload
                if isinstance(overload, OverloadController)
                else OverloadController(overload)
            )
            self.overload.attach(self)
        # online state-integrity scrubbing (repro.recovery.integrity)
        self.integrity = None
        if integrity is not None:
            from ..recovery.integrity import IntegrityMonitor

            self.integrity = (
                integrity
                if isinstance(integrity, IntegrityMonitor)
                else IntegrityMonitor(integrity)
            )
            self.integrity.attach(self)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        jobspec: Jobspec,
        at: Optional[int] = None,
        name: str = "",
        priority: int = 0,
        actual_duration: Optional[int] = None,
    ) -> Job:
        """Queue ``jobspec`` for submission at time ``at`` (default: now).

        ``priority`` reorders the queue: higher-priority jobs are considered
        first by every queue policy (ties resolved by submission order).
        ``actual_duration`` is the job's true work requirement when it
        differs from the requested walltime (``jobspec.duration``): shorter
        jobs complete early, longer jobs are killed at the walltime limit.
        """
        submit_time = self.now if at is None else at
        if submit_time < self.now:
            raise SchedulerError(
                f"cannot submit in the past (t={submit_time} < now={self.now})"
            )
        if actual_duration is not None and actual_duration < 1:
            raise SchedulerError(
                f"actual_duration must be >= 1, got {actual_duration}"
            )
        self._journal(
            {
                "type": "submit",
                "jobspec": jobspec.to_dict(),
                "at": submit_time,
                "name": name,
                "priority": priority,
                "actual_duration": actual_duration,
            }
        )
        job = Job(
            job_id=self._next_job_id,
            jobspec=jobspec,
            submit_time=submit_time,
            name=name or f"job{self._next_job_id}",
            priority=priority,
            actual_duration=actual_duration,
        )
        self._next_job_id += 1
        self.jobs[job.job_id] = job
        self._push(submit_time, _SUBMIT, job.job_id)
        self.event_log.append((submit_time, "submit", job.job_id))
        return job

    def cancel(self, job: Job, reason: CancelReason = CancelReason.USER) -> None:
        """Cancel a pending/reserved/running job, releasing its resources."""
        if not job.is_active:
            raise SchedulerError(f"job {job.job_id} is not active")
        self._journal(
            {"type": "cancel", "job_id": job.job_id, "reason": reason.value}
        )
        for alloc in job.allocations:
            if alloc.alloc_id in self.traverser.allocations:
                self.traverser.remove(alloc.alloc_id)
            self._started_allocs.discard(alloc.alloc_id)
        job.allocations.clear()
        job.cancel_reason = reason
        job.transition(JobState.CANCELED)
        self.event_log.append((self.now, "cancel", job.job_id))

    # ------------------------------------------------------------------
    # failures and repairs (resilience layer)
    # ------------------------------------------------------------------
    def schedule_failure(self, vertex: ResourceVertex, at: int) -> None:
        """Enqueue a failure of ``vertex`` at simulated time ``at``."""
        if at < self.now:
            raise SchedulerError(
                f"cannot schedule a failure in the past (t={at} < now={self.now})"
            )
        self._journal({"type": "sched_fail", "vertex": vertex.name, "at": at})
        self._push(at, _FAIL, vertex.uniq_id)

    def schedule_repair(self, vertex: ResourceVertex, at: int) -> None:
        """Enqueue a repair of ``vertex`` at simulated time ``at``."""
        if at < self.now:
            raise SchedulerError(
                f"cannot schedule a repair in the past (t={at} < now={self.now})"
            )
        self._journal({"type": "sched_repair", "vertex": vertex.name, "at": at})
        self._push(at, _REPAIR, vertex.uniq_id)

    def fail(
        self, vertex: ResourceVertex, resubmit: bool = True
    ) -> Tuple[List[Job], List[Job]]:
        """Fail ``vertex`` now: drain it, kill the jobs beneath it, retry.

        Every active job holding resources at or below ``vertex`` is
        canceled with :attr:`CancelReason.NODE_FAILURE`; with ``resubmit``
        each victim is resubmitted per the simulator's retry policy (or
        immediately when no policy is set).  A scheduling cycle runs before
        returning so survivors and retries are placed without waiting for
        the next natural event.  Returns ``(canceled, resubmitted)``.
        """
        from .failures import affected_jobs

        if vertex.status == "down":
            return [], []
        self._journal(
            {"type": "fail", "vertex": vertex.name, "resubmit": resubmit}
        )
        self._applying += 1
        try:
            self.graph.mark_down(vertex)
            self.failures += 1
            self._down_since[vertex.uniq_id] = (
                self.now,
                self._node_weight(vertex),
            )
            self.event_log.append((self.now, "fail", vertex.name))
            victims = affected_jobs(self, vertex)
            retries: List[Job] = []
            for job in victims:
                retry = self._kill(job, CancelReason.NODE_FAILURE, retry=resubmit)
                if retry is not None:
                    retries.append(retry)
            self._cycle()
        finally:
            self._applying -= 1
        return victims, retries

    def repair(self, vertex: ResourceVertex) -> None:
        """Return a failed vertex to service and reschedule pending work."""
        if vertex.status == "up":
            return
        self._journal({"type": "repair", "vertex": vertex.name})
        self._applying += 1
        try:
            self.graph.mark_up(vertex)
            record = self._down_since.pop(vertex.uniq_id, None)
            if record is not None:
                down_at, nodes = record
                self._downtime.append((vertex.uniq_id, down_at, self.now, nodes))
            self.event_log.append((self.now, "repair", vertex.name))
            self._cycle()
        finally:
            self._applying -= 1

    def reschedule(self) -> None:
        """Run one scheduling cycle now (public hook for external changes:
        repairs, graph growth, manual priority adjustments, ...)."""
        self._journal({"type": "reschedule"})
        self._applying += 1
        try:
            self._cycle()
        finally:
            self._applying -= 1

    def inject_corruption(
        self, kind: str, vertex: ResourceVertex, salt: int = 0
    ) -> bool:
        """Deterministically corrupt live state on ``vertex`` (test hook).

        A journaled top-level command, exactly like :meth:`fail`: the
        ``corrupt`` record is written *before* the damage is applied, so
        crash-recovery replay re-corrupts the restored state identically —
        and the integrity scrubber then re-detects and re-repairs it,
        regenerating every quarantine/repair effect deterministically.
        Kinds are documented at
        :func:`~repro.recovery.integrity.apply_corruption`; returns False
        when the vertex holds no state of the requested kind.
        """
        from ..recovery.integrity import apply_corruption

        self._journal(
            {"type": "corrupt", "kind": kind, "vertex": vertex.name,
             "salt": salt}
        )
        self._applying += 1
        try:
            applied = apply_corruption(self, vertex, kind, salt)
            if applied:
                self.event_log.append((self.now, "corrupt", vertex.name))
                # Run a cycle immediately (like fail()) so the scrubber sees
                # the damage before span releases can mask it.
                self._cycle()
        finally:
            self._applying -= 1
        return applied

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> SimulationReport:
        """Process events until the heap drains (or simulated ``until``)."""
        while self._events:
            when = self._events[0][0]
            if until is not None and when > until:
                break
            self.step()
        return self.report()

    def step(self) -> Optional[int]:
        """Process a single event; returns its time or None when drained.

        The event is journaled as a ``dispatch`` command *before* it is
        popped and applied (write-ahead), so a crash mid-application replays
        it in full from the reconstructed heap.
        """
        if not self._events:
            return None
        when, kind, _, ref, data = self._events[0]
        self._journal(
            {
                "type": "dispatch",
                "when": when,
                "kind": kind,
                "ref": (
                    self.graph.vertex(ref).name
                    if kind in (_FAIL, _REPAIR)
                    else ref
                ),
                "data": data,
            }
        )
        heapq.heappop(self._events)
        self._applying += 1
        observed = self.obs.enabled
        if observed:
            # After the journal write on purpose: tracing is observability,
            # never part of the write-ahead command stream.
            self.obs.tracer.begin(
                "sim.dispatch", "sim", vt=float(when), kind=kind
            )
        try:
            self._dispatch(when, kind, ref, data)
        finally:
            if observed:
                self.obs.tracer.end()
            self._applying -= 1
        if self.recovery is not None and not self._replaying:
            self.recovery.after_event(self)
        return when

    def report(self) -> SimulationReport:
        ends = []
        for j in self.jobs.values():
            if j.finished_at is not None:
                ends.append(j.finished_at)
            elif j.end_time is not None:
                ends.append(j.end_time)
        makespan = max(ends, default=self.now)
        overload: Dict[str, object] = {}
        if self.overload is not None:
            counters = self.overload.counters
            overload = {
                "overload_enabled": True,
                "overload_rejected": counters["rejected"],
                "overload_shed": counters["shed"],
                "overload_deferred": counters["deferred"],
                "overload_promoted": counters["promoted"],
                "overload_still_deferred": len(self.overload.deferred),
                "degraded_matches": counters["degraded_matches"],
                "deadline_attempts": counters["deadline_attempts"],
                "deadline_cycles": counters["deadline_cycles"],
                "breaker_trips": self.overload.breaker_trips,
                "overload_level": self.overload.level.name,
                "max_cycle_overrun": self.overload.max_cycle_overrun,
            }
        integrity: Dict[str, object] = {}
        if self.integrity is not None:
            icounters = self.integrity.counters
            integrity = {
                "integrity_enabled": True,
                "vertices_scrubbed": icounters["scrubbed_vertices"],
                "corruption_detected": icounters["detected"],
                "corruption_quarantined": icounters["quarantined"],
                "corruption_repaired": icounters["repaired"],
                "corruption_unrepaired": icounters["unrepaired"],
                "integrity_repair_actions": icounters["repair_actions"],
                "integrity_jobs_requeued": icounters["jobs_requeued"],
            }
        closed = [(t1 - t0) for _, t0, t1, _ in self._downtime]
        node_seconds_lost = sum(
            (t1 - t0) * nodes for _, t0, t1, nodes in self._downtime
        ) + sum(
            (self.now - t0) * nodes for t0, nodes in self._down_since.values()
        )
        return SimulationReport(
            jobs=sorted(self.jobs.values(), key=lambda j: j.job_id),
            makespan=makespan,
            total_sched_time=sum(j.sched_time for j in self.jobs.values()),
            node_capacity=sum(v.size for v in self.graph.vertices("node")),
            failures=self.failures,
            retries=self.retries,
            node_seconds_lost=node_seconds_lost,
            work_lost=self._work_lost,
            busy_node_seconds=self._busy_node_seconds,
            mttr_observed=sum(closed) / len(closed) if closed else 0.0,
            snapshots_taken=self.recovery_stats["snapshots_taken"],
            journal_records=self.recovery_stats["journal_records"],
            journal_replayed=self.recovery_stats["journal_replayed"],
            torn_records_dropped=self.recovery_stats["torn_records_dropped"],
            recoveries=self.recovery_stats["recoveries"],
            replay_divergences=self.recovery_stats.get(
                "replay_divergences", 0
            ),
            salvage_skipped=self.recovery_stats.get("salvage_skipped", 0),
            salvage_dropped=self.recovery_stats.get("salvage_dropped", 0),
            snapshot_sections_rebuilt=self.recovery_stats.get(
                "snapshot_sections_rebuilt", 0
            ),
            metrics=self.metrics_snapshot() if self.obs.enabled else None,
            provenance=(
                self.obs.why.export() if self.obs.why.enabled else None
            ),
            **overload,
            **integrity,
        )

    def metrics_snapshot(self) -> Dict[str, object]:
        """Observer + traverser registries as one JSON-able dict."""
        merged: Dict[str, object] = dict(self.obs.metrics.as_dict())
        merged.update(self.traverser.metrics.as_dict())
        return merged

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every metric this simulator owns.

        Spans the observer's registry and the traverser's always-on one in
        a single document with globally sorted families — the scrape
        payload for ROADMAP item 1's service front end.  Works unobserved
        too (the traverser counters are always collected).
        """
        from ..obs.metrics import render_prometheus_families

        return render_prometheus_families(
            [self.obs.metrics, self.traverser.metrics]
        )

    def export_trace(
        self, path: str, jsonl_path: Optional[str] = None
    ) -> None:
        """Write the run's Chrome ``trace_event`` JSON to ``path``.

        The metrics snapshot rides along in ``otherData.metrics`` so
        ``python -m repro.obs report`` can print both.  ``jsonl_path``
        additionally writes the native line-JSON event log.  Raises
        :class:`SchedulerError` when the simulator was not observed.
        """
        if not self.obs.enabled:
            raise SchedulerError(
                "no trace recorded: construct the simulator with "
                "observe=True (or set FLUXOBS=1)"
            )
        other: Dict[str, object] = {"metrics": self.metrics_snapshot()}
        if self.obs.why.enabled:
            other["provenance"] = self.obs.why.export()
        self.obs.tracer.write_chrome(path, other)
        if jsonl_path is not None:
            self.obs.tracer.write_jsonl(jsonl_path)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _push(
        self, when: int, kind: int, ref: int, data: Optional[int] = None
    ) -> None:
        heapq.heappush(self._events, (when, kind, self._event_seq, ref, data))
        self._event_seq += 1

    def _journal(self, record: dict) -> None:
        """Append ``record`` to the attached write-ahead journal.

        Top-level calls journal *commands* (re-executed during recovery
        replay); calls nested inside a command (``_applying > 0``) journal
        observability *effects*, marked ``internal`` and skipped by replay
        because re-executing the enclosing command regenerates them.  No-op
        while replaying (the records being replayed are already on disk).
        """
        if self.recovery is None or self._replaying:
            return
        if self._applying > 0:
            record = dict(record, internal=True)
        self.recovery.record(record)

    def _crashpoint(self, name: str) -> None:
        """Named crash-injection cut point (see repro.recovery.crash)."""
        if self._crash_injector is not None:
            self._crash_injector.hit(name)

    def _dispatch(self, when: int, kind: int, ref: int, data: Optional[int]) -> None:
        self.now = max(self.now, when)
        if kind == _SUBMIT:
            self._on_submit(self.jobs[ref])
        elif kind == _START:
            self._on_start(self.jobs[ref], data)
        elif kind == _END:
            self._on_end(self.jobs[ref], data)
        elif kind == _FAIL:
            self.fail(self.graph.vertex(ref))
        elif kind == _REPAIR:
            self.repair(self.graph.vertex(ref))
        else:
            self._on_walltime(self.jobs[ref], data)

    def _pending_jobs(self) -> List[Job]:
        deferred = self.overload.deferred if self.overload is not None else ()
        return [
            j
            for j in sorted(
                self.jobs.values(), key=lambda j: (-j.priority, j.job_id)
            )
            if j.state in (JobState.PENDING, JobState.RESERVED)
            and j.submit_time <= self.now
            and j.job_id not in deferred
        ]

    def _on_submit(self, job: Job) -> None:
        if job.state is not JobState.PENDING:
            # Canceled between scheduling and dispatch — e.g. shed as an
            # admission victim by a same-tick sibling submission.
            return
        why = self.obs.why
        if why.enabled:
            why.begin_attempt(
                job.job_id, float(self.now), "satisfiable", name=job.name
            )
            satisfiable = self.traverser.satisfiable(job.jobspec)
            why.end_attempt("ok" if satisfiable else "unsat")
        else:
            satisfiable = self.traverser.satisfiable(job.jobspec)
        if not satisfiable:
            # Failure retries are spared the insta-cancel while the shortfall
            # is only down (not missing) hardware: they wait for the repair.
            if not (job.attempt and self._structurally_satisfiable(job.jobspec)):
                job.cancel_reason = CancelReason.UNSATISFIABLE
                job.transition(JobState.CANCELED)
                why.event(
                    job.job_id, float(self.now), "unsatisfiable",
                    name=job.name,
                )
                return
        if self.overload is not None and not self.overload.admit(job):
            return  # rejected, shed or deferred: no cycle to run
        self._cycle()

    def _structurally_satisfiable(self, jobspec: Jobspec) -> bool:
        """Would ``jobspec`` be satisfiable with every down vertex back up?"""
        down = [v for v in self.graph.vertices() if v.status == "down"]
        if not down:
            return False
        for v in down:
            v.status = "up"
        try:
            return self.traverser.satisfiable(jobspec)
        finally:
            for v in down:
                v.status = "down"

    def _on_start(self, job: Job, alloc_id: Optional[int]) -> None:
        alloc = job.allocation
        if (
            job.state is JobState.RESERVED
            and alloc is not None
            and alloc.alloc_id == alloc_id
            and alloc.at == self.now
        ):
            self._crashpoint("start.pre")
            job.transition(JobState.RUNNING)
            self.event_log.append((self.now, "start", job.job_id))
            self._crashpoint("start.post")

    def _finish_time(self, job: Job) -> Optional[int]:
        """When the job's current allocation actually stops running."""
        alloc = job.allocation
        if alloc is None:
            return None
        return alloc.at + min(job.work_required, alloc.duration)

    def _on_end(self, job: Job, alloc_id: Optional[int]) -> None:
        # Stale events (from re-planned EASY reservations or killed jobs) are
        # ignored: the job must be running this allocation and due to end now.
        alloc = job.allocation
        if (
            job.state is not JobState.RUNNING
            or alloc is None
            or alloc.alloc_id != alloc_id
            or self._finish_time(job) != self.now
        ):
            return
        self._crashpoint("end.pre")
        elapsed = self.now - alloc.at
        job.ran_seconds += elapsed
        self._busy_node_seconds += elapsed * max(1, self._nodes_of(job))
        for held in job.allocations:
            if held.alloc_id in self.traverser.allocations:
                self.traverser.remove(held.alloc_id)
        self._crashpoint("end.released")
        job.finished_at = self.now
        job.transition(JobState.COMPLETED)
        self.event_log.append((self.now, "end", job.job_id))
        self._cycle()
        self._crashpoint("end.post")

    def _on_walltime(self, job: Job, alloc_id: Optional[int]) -> None:
        alloc = job.allocation
        if (
            job.state is not JobState.RUNNING
            or alloc is None
            or alloc.alloc_id != alloc_id
            or alloc.end != self.now
        ):
            return
        self.event_log.append((self.now, "walltime", job.job_id))
        # Without a retry policy there is no checkpoint credit and no retry
        # budget: a resubmitted overrunner would overrun again, identically
        # and forever.  Only retry walltime kills under a policy.
        self._kill(
            job, CancelReason.WALLTIME, retry=self.retry_policy is not None
        )
        self._cycle()

    def _kill(
        self, job: Job, reason: CancelReason, retry: bool = True
    ) -> Optional[Job]:
        """Cancel a failure/walltime victim, account lost work, resubmit.

        Returns the retry job, or None when retries are disabled/exhausted.
        Checkpointing (``retry_policy.checkpoint_period``) credits completed
        work so the retry resumes with the remainder instead of restarting.
        """
        self._crashpoint("kill.pre")
        policy = self.retry_policy
        elapsed = credited = 0
        if job.state is JobState.RUNNING and job.start_time is not None:
            elapsed = self.now - job.start_time
            if policy is not None and policy.checkpoint_period:
                credited = min(
                    (elapsed // policy.checkpoint_period)
                    * policy.checkpoint_period,
                    job.work_required,
                )
            job.finished_at = self.now
        nodes = max(1, self._nodes_of(job))
        job.ran_seconds += elapsed
        self._busy_node_seconds += elapsed * nodes
        self._work_lost += (elapsed - credited) * nodes
        self.cancel(job, reason=reason)
        self._crashpoint("kill.canceled")
        if not retry:
            self._crashpoint("kill.post")
            return None
        if policy is not None and not policy.should_retry(job.attempt):
            self._crashpoint("kill.post")
            return None
        delay = 0 if policy is None else policy.delay(job.attempt)
        boost = 0 if policy is None else policy.priority_boost
        remaining = job.work_required - credited
        retry_job = self.submit(
            job.jobspec,
            at=self.now + delay,
            name=f"{job.name}-retry",
            priority=job.priority + boost,
            actual_duration=(
                remaining
                if (job.actual_duration is not None or credited)
                else None
            ),
        )
        retry_job.attempt = job.attempt + 1
        retry_job.retry_of = job.retry_of if job.retry_of is not None else job.job_id
        retry_job.work_credited = job.work_credited + credited
        self.retries += 1
        self._crashpoint("kill.post")
        return retry_job

    def _nodes_of(self, job: Job) -> int:
        """Distinct node vertices the job's allocations touch."""
        uids = set()
        for alloc in job.allocations:
            for sel in alloc.selections:
                if sel.vertex.type == "node":
                    uids.add(sel.vertex.uniq_id)
        return len(uids)

    def _node_weight(self, vertex: ResourceVertex) -> int:
        """Node pool size at or below ``vertex`` (for downtime accounting)."""
        weight = vertex.size if vertex.type == "node" else 0
        for v in self.graph.descendants(vertex):
            if v.type == "node":
                weight += v.size
        return weight

    def _cycle(self) -> None:
        """Run one scheduling cycle and enqueue start/end/kill events."""
        obs = self.obs
        if not obs.enabled:
            self._run_cycle()
            return
        # Planner-layer instrumentation reads the context-local observer
        # (planners have no back-pointer to the simulator); activate ours
        # only while our cycle runs so interleaved simulators stay honest,
        # and deactivate with the token so misnesting fails loudly.
        obs_token = _obs_runtime.activate(obs)
        obs.metrics.counter("sim.cycles", "scheduling cycles run").inc()
        obs.why.begin_cycle(float(self.now))
        obs.tracer.begin(
            "sim.cycle", "sim", vt=float(self.now), policy=self.queue_policy.name
        )
        try:
            self._run_cycle()
        finally:
            obs.tracer.end()
            _obs_runtime.deactivate(obs_token)

    def _run_cycle(self) -> None:
        self._crashpoint("cycle.pre")
        if self.integrity is not None:
            # Scrub before matching: corrupted vertices are quarantined or
            # repaired before any placement decision can read them (and
            # before the end-of-cycle auditor would trip on them).
            self.integrity.scrub_cycle()
        if self.overload is not None:
            self.overload.promote_deferred()
        pending = self._pending_jobs()
        if self.obs.enabled:
            self.obs.metrics.gauge(
                "queue.depth", "schedulable jobs at cycle start"
            ).set(len(pending))
            self.obs.tracer.sample(
                "queue.depth", {"pending": len(pending)}, vt=float(self.now)
            )
        if self.overload is not None:
            self.overload.run_cycle(pending)
        else:
            self.queue_policy.cycle(pending, self.traverser, self.now)
        self._crashpoint("cycle.booked")
        for job in self.jobs.values():
            alloc = job.allocation
            if alloc is None or alloc.alloc_id in self._started_allocs:
                continue
            self._started_allocs.add(alloc.alloc_id)
            if job.state is JobState.RESERVED:
                self._push(alloc.at, _START, job.job_id, alloc.alloc_id)
            else:
                self.event_log.append((self.now, "start", job.job_id))
            if job.work_required > alloc.duration:
                self._push(alloc.end, _WALLTIME, job.job_id, alloc.alloc_id)
            else:
                self._push(
                    self._finish_time(job), _END, job.job_id, alloc.alloc_id
                )
        if self.auditor is not None:
            self.auditor.check(self)
        self._crashpoint("cycle.post")
