"""Synthetic workload generation.

The paper's §6.3 trace is a snapshot of quartz's production job queue (467
jobs, 200 sampled) of which only two fields are used: node count and
duration.  This module generates seedable synthetic traces with the
distributions typical of HPC scheduler logs — node counts skewed toward
small powers of two with a heavy tail, durations log-uniform from minutes to
half a day — plus the uniform random span workload of the §6.2 Planner
study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..jobspec import Jobspec, nodes_jobspec, simple_node_jobspec

__all__ = ["TraceJob", "synthetic_trace", "planner_span_workload"]


@dataclass(frozen=True)
class TraceJob:
    """One job of a trace: what §6.3 extracts from the quartz snapshot."""

    job_index: int
    nnodes: int
    duration: int
    submit_time: int = 0

    def to_jobspec(self, exclusive: bool = True) -> Jobspec:
        """Whole-node jobspec for trace replay."""
        return nodes_jobspec(self.nnodes, duration=self.duration,
                             exclusive=exclusive)


def synthetic_trace(
    n_jobs: int = 200,
    seed: int = 7,
    max_nodes: int = 2418,
    min_duration: int = 600,
    max_duration: int = 43_200,
    arrival_spread: int = 0,
) -> List[TraceJob]:
    """Generate a quartz-queue-like snapshot trace.

    Node counts: ~60% of jobs pick a power of two up to 64; the rest are
    log-uniform up to ``max_nodes // 4`` (production queues rarely hold many
    near-full-system jobs).  Durations are log-uniform in
    ``[min_duration, max_duration]`` (the paper's 12 h horizon).  With
    ``arrival_spread`` > 0, submit times are uniform in ``[0, spread)``
    instead of a point-in-time snapshot.
    """
    rng = np.random.default_rng(seed)
    jobs: List[TraceJob] = []
    powers = [1, 2, 4, 8, 16, 32, 64]
    for index in range(n_jobs):
        if rng.random() < 0.6:
            nnodes = int(rng.choice(powers))
        else:
            hi = max(2, max_nodes // 4)
            nnodes = int(np.exp(rng.uniform(np.log(1), np.log(hi))))
        nnodes = max(1, min(nnodes, max_nodes))
        duration = int(
            np.exp(rng.uniform(np.log(min_duration), np.log(max_duration)))
        )
        submit = int(rng.integers(0, arrival_spread)) if arrival_spread else 0
        jobs.append(TraceJob(index, nnodes, duration, submit))
    return jobs


def planner_span_workload(
    n_spans: int,
    seed: int = 11,
    total: int = 128,
    max_duration: int = 43_200,
    horizon: int = 2**40,
) -> List[Tuple[int, int, int]]:
    """The §6.2 Planner workload: (start, duration, request) tuples.

    Requests are uniform in [1, total], durations uniform in
    [1, max_duration] (12 h), laid out with conservative-backfill semantics
    by the bench itself (each span is placed at its earliest fit), so starts
    returned here are monotone random offsets used as search hints.
    """
    rng = np.random.default_rng(seed)
    requests = rng.integers(1, total + 1, size=n_spans)
    durations = rng.integers(1, max_duration + 1, size=n_spans)
    starts = rng.integers(0, max(1, horizon - max_duration - 1), size=n_spans)
    return [
        (int(starts[i]), int(durations[i]), int(requests[i]))
        for i in range(n_spans)
    ]
