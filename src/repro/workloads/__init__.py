"""Workload generation: synthetic traces and Planner span workloads."""

from .trace import TraceJob, planner_span_workload, synthetic_trace

__all__ = ["TraceJob", "planner_span_workload", "synthetic_trace"]
