"""Online state-integrity scrubbing and corruption quarantine ("fluxfsck").

Long-running scheduler instances accumulate three families of state that
must stay mutually consistent: the resource graph (vertex structure and
status), the planner layer (span registries and scheduled-point trees) and
the allocation/queue layer (who holds what, and when).  A bit-flip or a
logic bug in any one of them silently poisons future placement decisions
long before a snapshot or restart would surface it.

This module provides the *detection and containment* half of the fluxfsck
subsystem (repairs live in :mod:`repro.recovery.repair`):

* :class:`IntegrityMonitor` — an online scrubber that walks a rotating
  window of vertices each scheduling cycle under a deterministic
  :class:`~repro.resilience.overload.WorkBudget`, cross-checking each
  vertex's structure against a content checksum taken at attach time and
  its planners against what the live allocation table says they *should*
  hold.  Drift is quarantined (the vertex is drained so matching skips it),
  repaired through the journaled repair engine, and re-verified — all
  within the same cycle, before the end-of-cycle auditor runs.
* :func:`expected_span_table` — the ground truth derivation: every live
  allocation's plans/xplans/filter spans recomputed from its selections
  via the same :func:`~repro.match.traverser.sdfu_charges` logic SDFU used
  to book them.
* :func:`apply_corruption` — a seeded, deterministic corruption injector
  used by the chaos harness and by :meth:`ClusterSimulator.inject_corruption`
  (which journals the injection as a replayable command, so crash-recovery
  replay re-corrupts and re-repairs identically).

Everything the scrubber decides is a pure function of simulator state plus
its own exported cursor/counters, so dual runs and journal replays converge.
"""

from __future__ import annotations

import hashlib
import json
import random
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import FluxionError, IntegrityError, SchedulingDeadlineExceeded

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..resource import ResourceVertex
    from ..sched.simulator import ClusterSimulator

__all__ = [
    "IntegrityConfig",
    "IntegrityMonitor",
    "Finding",
    "apply_corruption",
    "corruption_targets",
    "expected_span_table",
    "structure_checksum",
    "vertex_structure",
]

#: planner kinds a vertex can carry, in scan order
_PLANNER_KINDS = ("plans", "xplans", "filter")

#: live-corruption kinds understood by :func:`apply_corruption`
CORRUPTION_KINDS = ("span", "point", "aggregate", "structure")


# ----------------------------------------------------------------------
# content checksums
# ----------------------------------------------------------------------
def vertex_structure(vertex: "ResourceVertex") -> dict:
    """The structural (mid-run immutable) fields of a vertex, JSON-able."""
    return {
        "type": vertex.type,
        "basename": vertex.basename,
        "id": vertex.id,
        "size": vertex.size,
        "unit": vertex.unit,
        "rank": vertex.rank,
        "properties": dict(vertex.properties),
        "paths": dict(vertex.paths),
    }


def structure_checksum(vertex: "ResourceVertex") -> str:
    """sha256 over the canonical JSON of :func:`vertex_structure`."""
    blob = json.dumps(
        vertex_structure(vertex), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# ground truth: what the planners should hold, per the allocation table
# ----------------------------------------------------------------------
def expected_span_table(
    sim: "ClusterSimulator",
) -> Dict[Tuple[str, str], Dict[int, dict]]:
    """Re-derive every planner's expected bookings from live allocations.

    Returns ``{(vertex name, planner kind): {span id: expectation}}``.
    Plans/xplans expectations carry ``{"start", "end", "request"}``; filter
    expectations carry ``{"start", "end", "counts"}`` with the per-type
    charges recomputed through :func:`~repro.match.traverser.sdfu_charges`
    — the exact function SDFU booked them with, so a clean instance always
    matches its own table.
    """
    from ..match.traverser import sdfu_charges
    from ..match.writer import planner_owner_index
    from ..resource.vertex import X_LIMIT

    owners = planner_owner_index(sim.graph)
    by_name = {v.name: v for v in sim.graph.vertices()}
    table: Dict[Tuple[str, str], Dict[int, dict]] = {}
    subsystem = sim.traverser.subsystem
    for alloc in sim.traverser.allocations.values():
        sel_by_name = {sel.vertex.name: sel for sel in alloc.selections}
        charges = sdfu_charges(sim.graph, subsystem, alloc.selections)
        for planner, span_id in alloc._span_records:
            owner = owners.get(id(planner))
            if owner is None:
                continue
            name, kind = owner
            sel = sel_by_name.get(name)
            if kind == "plans":
                want = {
                    "start": alloc.at,
                    "end": alloc.end,
                    "request": sel.amount if sel is not None else 0,
                }
            elif kind == "xplans":
                level = X_LIMIT if (sel is not None and sel.exclusive) else 1
                want = {"start": alloc.at, "end": alloc.end, "request": level}
            else:  # filter bundle
                vertex = by_name[name]
                counts = {
                    rtype: qty
                    for rtype, qty in charges.get(vertex.uniq_id, {}).items()
                    if qty > 0
                }
                want = {"start": alloc.at, "end": alloc.end, "counts": counts}
            table.setdefault((name, kind), {})[span_id] = want
    return table


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One detected inconsistency on one vertex."""

    vertex: str
    kind: str  # structure | span-missing | span-drift | span-orphan | tree-drift
    planner: Optional[str]  # plans | xplans | filter | None (structure)
    detail: str

    def to_dict(self) -> dict:
        """JSON-able form (fsck reports, chaos artifacts)."""
        return {
            "vertex": self.vertex,
            "kind": self.kind,
            "planner": self.planner,
            "detail": self.detail,
        }


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass
class IntegrityConfig:
    """Tuning for the online scrubber.

    scrub_window:
        Vertices examined per scrub pass (None = the whole graph every
        pass).  The cursor rotates so every vertex is eventually covered.
    scrub_every:
        Run a scrub pass every N scheduling cycles (1 = every cycle).
    scrub_budget:
        Work-unit ceiling for one pass (a vertex or a span examined is one
        unit), enforced through a
        :class:`~repro.resilience.overload.WorkBudget`; None = unbounded.
    checkpoint_interval:
        Budget checkpoint cadence (see WorkBudget).
    auto_repair:
        Repair-and-release quarantined vertices within the same pass.  When
        False the scrubber only detects and drains — operator tooling
        (``python -m repro.recovery fsck --repair``) finishes the job.
    check_orphans:
        Flag planner spans no live allocation accounts for.  Disable when
        external bookers (e.g. capacity schedules) legitimately hold spans.
    """

    scrub_window: Optional[int] = 8
    scrub_every: int = 1
    scrub_budget: Optional[int] = None
    checkpoint_interval: int = 32
    auto_repair: bool = True
    check_orphans: bool = True

    def __post_init__(self) -> None:
        if self.scrub_window is not None and self.scrub_window < 1:
            raise IntegrityError(
                f"scrub_window must be >= 1, got {self.scrub_window}"
            )
        if self.scrub_every < 1:
            raise IntegrityError(
                f"scrub_every must be >= 1, got {self.scrub_every}"
            )
        if self.scrub_budget is not None and self.scrub_budget < 1:
            raise IntegrityError(
                f"scrub_budget must be >= 1, got {self.scrub_budget}"
            )
        if self.checkpoint_interval < 1:
            raise IntegrityError(
                f"checkpoint_interval must be >= 1, "
                f"got {self.checkpoint_interval}"
            )

    def to_dict(self) -> dict:
        """JSON-able form (snapshot / chaos reproducer serialisation)."""
        return {
            "scrub_window": self.scrub_window,
            "scrub_every": self.scrub_every,
            "scrub_budget": self.scrub_budget,
            "checkpoint_interval": self.checkpoint_interval,
            "auto_repair": self.auto_repair,
            "check_orphans": self.check_orphans,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IntegrityConfig":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


# ----------------------------------------------------------------------
# the monitor
# ----------------------------------------------------------------------
class IntegrityMonitor:
    """Per-cycle incremental verifier + quarantine coordinator.

    Attach to a :class:`~repro.sched.simulator.ClusterSimulator` (the
    ``integrity=`` constructor parameter does this); the simulator calls
    :meth:`scrub_cycle` at the start of every scheduling cycle, *before*
    matching, so corrupted vertices are drained or repaired before any
    placement decision can read them and before the end-of-cycle auditor
    runs.
    """

    def __init__(self, config: Optional[IntegrityConfig] = None) -> None:
        self.config = config or IntegrityConfig()
        self.sim: Optional["ClusterSimulator"] = None
        self.cursor = 0
        self.cycles_seen = 0
        self.quarantined: Dict[str, str] = {}
        self.counters: Dict[str, int] = {
            "scrub_passes": 0,
            "scrubbed_vertices": 0,
            "detected": 0,
            "quarantined": 0,
            "repaired": 0,
            "unrepaired": 0,
            "repair_actions": 0,
            "jobs_requeued": 0,
        }
        self._baseline: Dict[str, dict] = {}
        self._engine = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, sim: "ClusterSimulator") -> None:
        """Bind to a simulator and take structural baselines."""
        from .repair import RepairEngine

        self.sim = sim
        self._engine = RepairEngine(sim, monitor=self)
        self.rebaseline()

    def rebaseline(self) -> None:
        """(Re)capture per-vertex structural checksums from the live graph.

        Called at attach and after restores; intentional structural changes
        (elastic grow/shrink) should re-call this so the scrubber does not
        flag them as drift.
        """
        sim = self.sim
        if sim is None:
            raise IntegrityError("monitor is not attached to a simulator")
        self._baseline = {
            vertex.name: {
                "checksum": structure_checksum(vertex),
                "structure": vertex_structure(vertex),
            }
            for vertex in sim.graph.vertices()
        }

    def baseline_structure(self, vertex: "ResourceVertex") -> Optional[dict]:
        """The attach-time structural fields for ``vertex`` (None = unknown)."""
        base = self._baseline.get(vertex.name)
        return None if base is None else dict(base["structure"])

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------
    def scan_vertex(
        self,
        vertex: "ResourceVertex",
        expected: Dict[Tuple[str, str], Dict[int, dict]],
        budget: Optional[object] = None,
    ) -> List[Finding]:
        """Cross-check one vertex; returns findings (empty = clean)."""
        findings: List[Finding] = []
        name = vertex.name
        if budget is not None:
            budget.charge()
        base = self._baseline.get(name)
        if base is not None and structure_checksum(vertex) != base["checksum"]:
            findings.append(
                Finding(name, "structure", None, "content checksum mismatch")
            )
        for pkind in ("plans", "xplans"):
            planner = getattr(vertex, pkind)
            want = expected.get((name, pkind), {})
            have = {}
            for span in planner.spans():
                if budget is not None:
                    budget.charge()
                have[span.span_id] = span
            for sid in sorted(want):
                exp = want[sid]
                span = have.pop(sid, None)
                if span is None:
                    findings.append(
                        Finding(
                            name, "span-missing", pkind,
                            f"span {sid} absent (want "
                            f"{exp['request']}x[{exp['start']},{exp['end']}))",
                        )
                    )
                elif (span.start, span.end, span.request) != (
                    exp["start"], exp["end"], exp["request"]
                ):
                    findings.append(
                        Finding(
                            name, "span-drift", pkind,
                            f"span {sid}: have {span.request}x"
                            f"[{span.start},{span.end}), want "
                            f"{exp['request']}x[{exp['start']},{exp['end']})",
                        )
                    )
            if have and self.config.check_orphans:
                findings.append(
                    Finding(
                        name, "span-orphan", pkind,
                        f"unreferenced spans {sorted(have)}",
                    )
                )
            try:
                planner.check_invariants()
            except (AssertionError, FluxionError) as exc:
                findings.append(Finding(name, "tree-drift", pkind, repr(exc)))
        filters = vertex.prune_filters
        if filters is not None:
            findings.extend(
                self._scan_filter(vertex, filters, expected, budget)
            )
        return findings

    def _scan_filter(
        self,
        vertex: "ResourceVertex",
        filters: object,
        expected: Dict[Tuple[str, str], Dict[int, dict]],
        budget: Optional[object],
    ) -> List[Finding]:
        findings: List[Finding] = []
        name = vertex.name
        want = expected.get((name, "filter"), {})
        have_ids = set(filters.span_ids())
        for sid in sorted(want):
            exp = want[sid]
            if budget is not None:
                budget.charge()
            if sid not in have_ids:
                findings.append(
                    Finding(
                        name, "span-missing", "filter",
                        f"bundle {sid} absent (want {exp['counts']})",
                    )
                )
                continue
            have_ids.discard(sid)
            actual: Dict[str, int] = {}
            drift: List[str] = []
            try:
                for rtype, per_sid in sorted(filters.get_span(sid).items()):
                    span = filters.planner(rtype).get_span(per_sid)
                    actual[rtype] = span.request
                    if (span.start, span.end) != (exp["start"], exp["end"]):
                        drift.append(
                            f"{rtype} window [{span.start},{span.end})"
                        )
            except FluxionError as exc:
                drift.append(repr(exc))
            if drift or actual != exp["counts"]:
                findings.append(
                    Finding(
                        name, "span-drift", "filter",
                        f"bundle {sid}: have {actual} {';'.join(drift)}, "
                        f"want {exp['counts']}x"
                        f"[{exp['start']},{exp['end']})",
                    )
                )
        if have_ids and self.config.check_orphans:
            findings.append(
                Finding(
                    name, "span-orphan", "filter",
                    f"unreferenced bundles {sorted(have_ids)}",
                )
            )
        try:
            filters.check_invariants()
        except (AssertionError, FluxionError) as exc:
            findings.append(Finding(name, "tree-drift", "filter", repr(exc)))
        return findings

    def scan(self) -> List[Finding]:
        """Full-graph unbudgeted scan (fsck / test support)."""
        sim = self.sim
        if sim is None:
            raise IntegrityError("monitor is not attached to a simulator")
        expected = expected_span_table(sim)
        findings: List[Finding] = []
        for vertex in sorted(sim.graph.vertices(), key=lambda v: v.name):
            findings.extend(self.scan_vertex(vertex, expected))
        return findings

    # ------------------------------------------------------------------
    # the per-cycle scrub pass
    # ------------------------------------------------------------------
    def scrub_cycle(self) -> None:
        """One budgeted scrub pass: detect, quarantine, repair, release.

        Invoked by the simulator at the head of every scheduling cycle.
        Deterministic given simulator state + the monitor's cursor, so
        journal replay regenerates every quarantine/repair decision.
        """
        from ..resilience.overload import WorkBudget

        sim = self.sim
        if sim is None:
            return
        self.cycles_seen += 1
        if (self.cycles_seen - 1) % self.config.scrub_every:
            return
        ordered = sorted(sim.graph.vertices(), key=lambda v: v.name)
        if not ordered:
            return
        window = self.config.scrub_window or len(ordered)
        window = min(window, len(ordered))
        budget = WorkBudget(
            cycle_limit=self.config.scrub_budget,
            checkpoint_interval=self.config.checkpoint_interval,
        )
        expected = expected_span_table(sim)
        dirty: List[Tuple["ResourceVertex", List[Finding]]] = []
        scanned = 0
        try:
            for i in range(window):
                vertex = ordered[(self.cursor + i) % len(ordered)]
                findings = self.scan_vertex(vertex, expected, budget)
                scanned += 1
                if findings:
                    dirty.append((vertex, findings))
        except SchedulingDeadlineExceeded:
            # Budget exhausted: the cursor only advances past what was
            # actually scanned, so the next pass resumes exactly here.
            pass
        finally:
            budget.finish()
        self.cursor = (self.cursor + scanned) % len(ordered)
        self.counters["scrub_passes"] += 1
        self.counters["scrubbed_vertices"] += scanned
        self._obs_count("integrity.scrubbed", scanned)
        for vertex, findings in dirty:
            self._handle_dirty(vertex, findings, expected)

    def _handle_dirty(
        self,
        vertex: "ResourceVertex",
        findings: List[Finding],
        expected: Dict[Tuple[str, str], Dict[int, dict]],
    ) -> None:
        sim = self.sim
        name = vertex.name
        kinds = sorted({f.kind for f in findings})
        self._journal(
            "integrity_detect", vertex=name, kinds=kinds,
            findings=len(findings),
        )
        self.counters["detected"] += len(findings)
        self._obs_count("integrity.detected", len(findings))
        was_up = vertex.status == "up"
        if was_up:
            # Drain: matching skips the subtree while it is untrusted.
            sim.graph.mark_down(vertex)
        if name not in self.quarantined:
            self.counters["quarantined"] += 1
            self._obs_count("integrity.quarantined")
        self.quarantined[name] = ",".join(kinds)
        if sim.obs.enabled:
            sim.obs.tracer.instant(
                "integrity.quarantine", "integrity",
                vt=float(sim.now), vertex=name, kinds=",".join(kinds),
            )
        if not self.config.auto_repair:
            return
        actions = self._engine.repair_vertex(vertex, findings, expected)
        self.counters["repair_actions"] += len(actions)
        residual = self.scan_vertex(vertex, expected_span_table(sim))
        if not residual:
            self._release(vertex, was_up, actions)
            return
        # Last resort: shed everything the vertex carries, then retry once.
        requeued = self._engine.evacuate_vertex(vertex)
        self.counters["jobs_requeued"] += requeued
        self._obs_count("integrity.jobs_requeued", requeued)
        actions = self._engine.repair_vertex(
            vertex, residual, expected_span_table(sim)
        )
        self.counters["repair_actions"] += len(actions)
        if not self.scan_vertex(vertex, expected_span_table(sim)):
            self._release(vertex, was_up, actions)
        else:
            self.counters["unrepaired"] += 1
            self._obs_count("integrity.unrepaired")
            self._journal("integrity_unrepaired", vertex=name)

    def _release(
        self, vertex: "ResourceVertex", was_up: bool, actions: List[str]
    ) -> None:
        sim = self.sim
        name = vertex.name
        self._journal("integrity_repair", vertex=name, actions=actions)
        if was_up and vertex.status == "down":
            sim.graph.mark_up(vertex)
        self.quarantined.pop(name, None)
        self.counters["repaired"] += 1
        self._obs_count("integrity.repaired")
        if sim.obs.enabled:
            sim.obs.tracer.instant(
                "integrity.repair", "integrity",
                vt=float(sim.now), vertex=name, actions=",".join(actions),
            )

    # ------------------------------------------------------------------
    # journal / metrics plumbing
    # ------------------------------------------------------------------
    def _journal(self, kind: str, **fields: object) -> None:
        sim = self.sim
        if sim is None:
            return
        record = {"type": kind, "at": sim.now}
        record.update(fields)
        sim._journal(record)

    def _obs_count(self, name: str, amount: int = 1) -> None:
        sim = self.sim
        if sim is not None and sim.obs.enabled and amount:
            sim.obs.metrics.counter(name, "state-integrity events").inc(amount)

    # ------------------------------------------------------------------
    # snapshot state (crash recovery)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Dynamic scrubber state for snapshots and fingerprints."""
        return {
            "cursor": self.cursor,
            "cycles_seen": self.cycles_seen,
            "quarantined": dict(sorted(self.quarantined.items())),
            "counters": dict(self.counters),
        }

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output (after :meth:`attach`)."""
        self.cursor = int(state["cursor"])
        self.cycles_seen = int(state["cycles_seen"])
        self.quarantined = {
            str(k): str(v) for k, v in state["quarantined"].items()
        }
        self.counters.update(state["counters"])


# ----------------------------------------------------------------------
# seeded corruption injection (chaos / test support)
# ----------------------------------------------------------------------
def corruption_targets(sim: "ClusterSimulator", kind: str) -> List[str]:
    """Vertex names where :func:`apply_corruption` would have an effect."""
    names: List[str] = []
    for vertex in sorted(sim.graph.vertices(), key=lambda v: v.name):
        if kind == "structure":
            names.append(vertex.name)
        elif kind in ("span", "point"):
            if vertex.plans.span_count:
                names.append(vertex.name)
        elif kind == "aggregate":
            filters = vertex.prune_filters
            if filters is not None and any(
                filters.planner(t)._sp is not None for t in filters.types
            ):
                names.append(vertex.name)
        else:
            raise IntegrityError(f"unknown corruption kind: {kind!r}")
    return names


def apply_corruption(
    sim: "ClusterSimulator", vertex: "ResourceVertex", kind: str, salt: int = 0
) -> bool:
    """Deterministically damage live state on ``vertex`` (test hook).

    Kinds: ``span`` tampers a plans span-registry window; ``point`` bumps a
    plans scheduled-point's usage; ``aggregate`` bumps a pruning-filter
    point's usage (the paper's aggregate DFU data); ``structure`` perturbs
    the vertex ``size`` field.  The damage is a pure function of
    ``(vertex name, kind, salt)`` so journal replay re-applies it exactly.
    Returns False (and changes nothing) when the vertex has no state of the
    requested kind — keeping a journaled no-op replayable as a no-op.
    """
    rng = random.Random(salt ^ zlib.crc32(vertex.name.encode("utf-8")))
    if kind == "span":
        registry = vertex.plans._spans
        if not registry:
            return False
        sid = sorted(registry)[rng.randrange(len(registry))]
        span = registry[sid]
        registry[sid] = span.replace(end=span.end + 1 + rng.randrange(7))
        return True
    if kind in ("point", "aggregate"):
        if kind == "point":
            planner = vertex.plans
        else:
            filters = vertex.prune_filters
            if filters is None:
                return False
            candidates = [
                t
                for t in filters.types
                if filters.planner(t)._sp is not None
            ]
            if not candidates:
                return False
            planner = filters.planner(
                candidates[rng.randrange(len(candidates))]
            )
        if planner._sp is None:
            return False
        points = list(planner._sp)
        point = points[rng.randrange(len(points))]
        delta = 1 + rng.randrange(3)
        # Re-key the end-time tree around the mutation so the trees stay
        # structurally valid: only the usage *values* are corrupted.
        planner._et.remove(point)
        point.in_use += delta
        point.remaining -= delta
        planner._et.insert(point)
        return True
    if kind == "structure":
        vertex.size += 1 + rng.randrange(3)
        return True
    raise IntegrityError(f"unknown corruption kind: {kind!r}")
