"""fluxfsck command line: ``python -m repro.recovery fsck <dir>``.

Offline verification (and optional repair) of a recovery directory — the
journal plus its snapshots — using the same machinery the online scrubber
runs per cycle:

* ``--check`` (default): load the newest valid snapshot, replay the journal
  suffix **read-only** (no file is modified, no snapshot written) and run a
  full-graph integrity scan.
* ``--repair``: same load, then drive every finding through the journaled
  :class:`~repro.recovery.repair.RepairEngine`, re-scan, and persist the
  repaired state as a fresh snapshot (the journal restarts so the repaired
  snapshot is the new recovery anchor).
* ``--salvage``: tolerate mid-stream journal damage and partially valid
  snapshots (bounded-loss salvage, see :func:`~repro.recovery.manager.
  recover`); without it damage beyond a torn tail fails the load.
* ``--json PATH``: machine-readable report (findings, repairs, loss
  accounting) for CI artifacts.

Exit codes: ``0`` state verifies clean (or repaired clean); ``1`` integrity
findings remain; ``2`` the directory cannot be loaded at all.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from ..errors import FluxionError
from ..sched.simulator import ClusterSimulator
from .integrity import Finding, IntegrityMonitor
from .journal import read_journal, read_journal_salvage
from .manager import _replay, _snapshot_files, recover
from .snapshot import load_snapshot, load_snapshot_salvage, restore_simulator

__all__ = ["main"]


def _load_readonly(
    directory: str, salvage: bool
) -> Tuple[ClusterSimulator, Dict[str, Any]]:
    """Restore snapshot + journal suffix without touching any file.

    Mirrors :func:`~repro.recovery.manager.recover` minus every side
    effect: no torn-tail truncation, no journal rewrite, no manager attach,
    no snapshot write.  Raises :class:`~repro.errors.FluxionError` when the
    state cannot be loaded.
    """
    candidates = _snapshot_files(directory)
    if not candidates:
        raise FluxionError(f"no snapshot found in {directory!r}")
    doc = None
    salvaged: List[str] = []
    used = None
    errors: List[str] = []
    for path in candidates:
        try:
            doc = load_snapshot(path)
            used = path
            break
        except FluxionError as exc:
            errors.append(str(exc))
        if salvage:
            loaded = load_snapshot_salvage(path)
            if loaded is not None:
                doc, salvaged = loaded
                used = path
                break
    if doc is None:
        raise FluxionError(
            f"no loadable snapshot in {directory!r}: " + "; ".join(errors)
        )
    journal_path = os.path.join(directory, "journal.wal")
    if salvage:
        records, journal_loss = read_journal_salvage(journal_path)
    else:
        records, torn, _ = read_journal(journal_path)
        journal_loss = {"torn": torn, "crc_skipped": 0, "skipped": []}
    sim = restore_simulator(doc, salvaged=salvaged)
    suffix = [r for r in records if r["seq"] > doc["seq"]]
    dropped = _replay(sim, suffix, salvage=salvage)
    info = {
        "snapshot_path": used,
        "snapshot_sections_rebuilt": list(salvaged),
        "journal": journal_loss,
        "replay_dropped": dropped,
        "records_replayed": len(suffix) - dropped,
    }
    return sim, info


def _monitor_for(sim: ClusterSimulator) -> IntegrityMonitor:
    if sim.integrity is not None:
        return sim.integrity
    monitor = IntegrityMonitor()
    monitor.attach(sim)
    return monitor


def _findings_json(findings: List[Finding]) -> List[Dict[str, Any]]:
    return [finding.to_dict() for finding in findings]


def _repair_all(
    monitor: IntegrityMonitor, findings: List[Finding]
) -> List[Finding]:
    """Repair every dirty vertex; returns the findings that remain."""
    from .integrity import expected_span_table

    sim = monitor.sim
    by_vertex: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_vertex.setdefault(finding.vertex, []).append(finding)
    expected = expected_span_table(sim)
    for name, group in sorted(by_vertex.items()):
        vertex = sim.graph.vertex_by_name(name)
        monitor._engine.repair_vertex(vertex, group, expected)
        expected = expected_span_table(sim)
    return monitor.scan()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.recovery",
        description="fluxfsck: verify or repair a recovery directory",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    fsck = sub.add_parser("fsck", help="check/repair journal + snapshots")
    fsck.add_argument("directory", help="recovery directory to inspect")
    mode = fsck.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", action="store_true",
        help="verify only; never modify any file (default)",
    )
    mode.add_argument(
        "--repair", action="store_true",
        help="repair findings and write a repaired snapshot",
    )
    fsck.add_argument(
        "--salvage", action="store_true",
        help="tolerate mid-stream journal/snapshot damage (bounded loss)",
    )
    fsck.add_argument(
        "--json", metavar="PATH", default=None,
        help="write a machine-readable report to PATH ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    report: Dict[str, Any] = {
        "directory": args.directory,
        "mode": "repair" if args.repair else "check",
        "salvage": bool(args.salvage),
    }
    try:
        if args.repair:
            salvage_report: Dict[str, Any] = {}
            sim = recover(
                args.directory, salvage=args.salvage,
                salvage_report=salvage_report,
            )
            report["load"] = salvage_report or {
                "snapshot_sections_rebuilt": [],
                "replay_dropped": 0,
            }
        else:
            sim, info = _load_readonly(args.directory, args.salvage)
            report["load"] = info
    except FluxionError as exc:
        report["error"] = str(exc)
        _emit(args.json, report)
        print(f"fluxfsck: cannot load {args.directory!r}: {exc}",
              file=sys.stderr)
        return 2

    monitor = _monitor_for(sim)
    findings = monitor.scan()
    report["findings"] = _findings_json(findings)
    exit_code = 0
    if findings and args.repair:
        residual = _repair_all(monitor, findings)
        report["residual"] = _findings_json(residual)
        exit_code = 1 if residual else 0
        if sim.recovery is not None:
            # Persist the repaired state as the new recovery anchor.
            sim.recovery.snapshot()
    elif findings:
        exit_code = 1
    if args.repair and sim.recovery is not None:
        sim.recovery.close()

    verdict = "clean" if exit_code == 0 else "dirty"
    repaired = len(findings) - len(report.get("residual", findings))
    print(
        f"fluxfsck: {args.directory}: {verdict} "
        f"({len(findings)} finding(s), {repaired} repaired)"
    )
    report["exit"] = exit_code
    _emit(args.json, report)
    return exit_code


def _emit(dest: Optional[str], report: Dict[str, Any]) -> None:
    if dest is None:
        return
    payload = json.dumps(report, indent=2, sort_keys=True)
    if dest == "-":
        print(payload)
    else:
        with open(dest, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
