"""Journaled repair actions for the fluxfsck subsystem.

Every mutation of graph/planner/allocation state in this module flows
through :meth:`RepairEngine._journal_action` *before* the first raw write —
enforced mechanically by fluxlint rule INT001.  The journal records are
``internal`` effects (repairs always run inside a journaled command:
a dispatched event's scrub pass, a replayed ``corrupt`` command, or a
salvage restore), so replay regenerates them by re-running the command
rather than re-applying the record; journaling them anyway leaves an audit
trail an operator can correlate with ``integrity.*`` metrics.

Repair strategies (tentpole spec):

* **rebuild planner spans from the allocation table** — the live
  allocations are the source of truth; plans/xplans/filter registries and
  their scheduled-point trees are reconstructed to exactly what SDFU would
  have booked (via :func:`~repro.match.traverser.sdfu_charges`).
* **reconcile aggregate DFU filters** — filter bundles are re-derived from
  the selections that should be charging them, fixing drifted aggregates.
* **release orphaned spans** — spans no allocation accounts for are
  dropped as part of the registry rebuild.
* **requeue jobs whose reservations were lost** — when a vertex cannot be
  verified clean after repair, every job holding it is evacuated: spans
  released tolerantly, the job killed with ``NODE_FAILURE`` and resubmitted
  under the simulator's retry policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Container, Dict, Iterable, List, Optional

from ..errors import FluxionError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..match.writer import Allocation
    from ..resource import ResourceVertex
    from ..sched.simulator import ClusterSimulator
    from .integrity import Finding, IntegrityMonitor

__all__ = ["RepairEngine"]

#: planner kinds in repair order (filters last: they aggregate the others)
_REPAIR_ORDER = ("plans", "xplans", "filter")


class RepairEngine:
    """Deterministic, journaled state repair for one simulator instance."""

    def __init__(
        self,
        sim: "ClusterSimulator",
        monitor: Optional["IntegrityMonitor"] = None,
    ) -> None:
        self.sim = sim
        self.monitor = monitor
        self.skipped_spans = 0

    # ------------------------------------------------------------------
    # journal plumbing (INT001: call before any raw write)
    # ------------------------------------------------------------------
    def _journal_action(self, action: str, **fields: object) -> None:
        """Write-ahead record for one repair action (audit trail)."""
        record = {"type": "repair_action", "action": action,
                  "at": self.sim.now}
        record.update(fields)
        self.sim._journal(record)

    # ------------------------------------------------------------------
    # repair actions
    # ------------------------------------------------------------------
    def restore_structure(self, vertex: "ResourceVertex") -> bool:
        """Restore a vertex's structural fields from the attach baseline.

        Identity fields (type/basename/id) are not touched — the baseline
        is keyed by name, so identity corruption presents as an unknown
        vertex and is handled by quarantine, not rewriting.  Returns False
        when no baseline is known.
        """
        base = (
            self.monitor.baseline_structure(vertex)
            if self.monitor is not None
            else None
        )
        if base is None:
            return False
        self._journal_action("restore-structure", vertex=vertex.name)
        vertex.size = base["size"]
        vertex.unit = base["unit"]
        vertex.rank = base["rank"]
        vertex.properties = dict(base["properties"])
        vertex.paths = dict(base["paths"])
        return True

    def rebuild_planner(
        self,
        vertex: "ResourceVertex",
        pkind: str,
        want: Dict[int, dict],
    ) -> int:
        """Rebuild one planner to exactly the expected span set.

        ``want`` is the per-span expectation from
        :func:`~repro.recovery.integrity.expected_span_table`; the registry
        is replaced wholesale (releasing orphans) and the point trees are
        reconstructed from scratch, so even unreadable trees repair.
        Returns the number of spans booked.
        """
        self._journal_action(
            "rebuild-planner", vertex=vertex.name, planner=pkind,
            spans=len(want),
        )
        if pkind == "filter":
            filters = vertex.prune_filters
            if filters is None:
                return 0
            bundles = [
                {
                    "id": sid,
                    "start": exp["start"],
                    "end": exp["end"],
                    "counts": dict(exp["counts"]),
                }
                for sid, exp in sorted(want.items())
            ]
            return filters.rebuild(bundles=bundles)
        planner = getattr(vertex, pkind)
        records = [
            {
                "id": sid,
                "start": exp["start"],
                "end": exp["end"],
                "request": exp["request"],
                "metadata": {},
            }
            for sid, exp in sorted(want.items())
        ]
        return planner.rebuild(spans=records)

    def repair_vertex(
        self,
        vertex: "ResourceVertex",
        findings: Iterable["Finding"],
        expected: Dict[tuple, Dict[int, dict]],
    ) -> List[str]:
        """Apply the repair actions implied by ``findings``; returns labels.

        A planner whose expected span set turns out infeasible (corrupt
        beyond reconciliation) is skipped — the caller re-scans and
        escalates to :meth:`evacuate_vertex`.
        """
        actions: List[str] = []
        kinds = {f.kind for f in findings}
        planners = {f.planner for f in findings if f.planner is not None}
        if "structure" in kinds and self.restore_structure(vertex):
            actions.append("restore-structure")
        for pkind in _REPAIR_ORDER:
            if pkind not in planners:
                continue
            want = expected.get((vertex.name, pkind), {})
            try:
                self.rebuild_planner(vertex, pkind, want)
            except (AssertionError, FluxionError):
                # Leave it dirty; the monitor escalates after re-scanning.
                continue
            actions.append(f"rebuild-{pkind}")
        return actions

    # ------------------------------------------------------------------
    # bounded-loss escalation
    # ------------------------------------------------------------------
    def release_allocation(self, alloc: "Allocation") -> int:
        """Tolerantly release every span behind ``alloc`` and deregister it.

        Unlike :meth:`Traverser.remove`, a span that is already gone (or a
        tree too damaged to unbook) is skipped and counted in
        :attr:`skipped_spans` instead of aborting — the enclosing repair
        rebuilds the planner afterwards.  Returns spans actually released.
        """
        self._journal_action("release-allocation", alloc_id=alloc.alloc_id)
        released = 0
        for planner, span_id in list(alloc._span_records):
            try:
                planner.rem_span(span_id)
                released += 1
            except (AssertionError, FluxionError):
                self.skipped_spans += 1
        alloc._span_records.clear()
        self.sim.traverser.allocations.pop(alloc.alloc_id, None)
        self.sim._started_allocs.discard(alloc.alloc_id)
        return released

    def evacuate_vertex(self, vertex: "ResourceVertex") -> int:
        """Requeue every job holding ``vertex`` (reservations lost).

        The bounded-loss last resort: allocations beneath the vertex are
        released tolerantly, each victim killed with ``NODE_FAILURE`` and
        resubmitted per the retry policy (work-credit accounting included,
        exactly like a hardware failure).  Returns the victim count.
        """
        from ..sched.failures import affected_jobs
        from ..sched.job import CancelReason

        victims = affected_jobs(self.sim, vertex)
        if not victims:
            return 0
        self._journal_action(
            "evacuate", vertex=vertex.name,
            jobs=[job.job_id for job in victims],
        )
        for job in victims:
            for alloc in list(job.allocations):
                self.release_allocation(alloc)
            self.sim._kill(job, CancelReason.NODE_FAILURE, retry=True)
        return len(victims)

    # ------------------------------------------------------------------
    # snapshot salvage support
    # ------------------------------------------------------------------
    def rebuild_from_allocation_records(
        self,
        records: Iterable[dict],
        live_ids: Container[int],
    ) -> int:
        """Re-book planner spans for live allocation records.

        Snapshot-salvage path: when a snapshot's ``planners`` section is
        corrupt it is dropped entirely and the spans each *live* allocation
        record references are reconstructed here — windows from the record,
        requests from its selections, filter charges re-derived through
        :func:`~repro.match.traverser.sdfu_charges` — before
        ``Allocation.from_record`` resolves them.  Span ids are preserved;
        planner auto-id counters restart from the rebuilt registry (a
        bounded, accounted loss).  Returns the number of spans booked.
        """
        from ..match.traverser import sdfu_charges
        from ..match.writer import Selection
        from ..resource.vertex import X_LIMIT

        sim = self.sim
        by_name = {v.name: v for v in sim.graph.vertices()}
        subsystem = sim.traverser.subsystem
        self._journal_action("rebuild-from-allocations")
        booked = 0
        for record in records:
            if int(record["alloc_id"]) not in live_ids:
                continue  # released allocations hold no spans
            selections = [
                Selection(
                    vertex=by_name[s["vertex"]],
                    amount=int(s["amount"]),
                    exclusive=bool(s["exclusive"]),
                    passthrough=bool(s["passthrough"]),
                )
                for s in record["selections"]
            ]
            sel_by_name = {s.vertex.name: s for s in selections}
            charges = sdfu_charges(sim.graph, subsystem, selections)
            at = int(record["at"])
            duration = int(record["duration"])
            for entry in record["spans"]:
                vertex = by_name[entry["vertex"]]
                kind = entry["kind"]
                sid = int(entry["span_id"])
                sel = sel_by_name.get(vertex.name)
                if kind == "plans":
                    if not vertex.plans.has_span(sid):
                        vertex.plans.add_span(
                            at, duration,
                            sel.amount if sel is not None else 0,
                            span_id=sid,
                        )
                        booked += 1
                elif kind == "xplans":
                    if not vertex.xplans.has_span(sid):
                        level = (
                            X_LIMIT
                            if (sel is not None and sel.exclusive)
                            else 1
                        )
                        vertex.xplans.add_span(
                            at, duration, level, span_id=sid
                        )
                        booked += 1
                else:
                    filters = vertex.prune_filters
                    if filters is not None and not filters.has_span(sid):
                        counts = {
                            rtype: qty
                            for rtype, qty in charges.get(
                                vertex.uniq_id, {}
                            ).items()
                            if qty > 0
                        }
                        filters.add_span(at, duration, counts, span_id=sid)
                        booked += 1
        return booked
