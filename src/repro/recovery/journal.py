"""Write-ahead journal with per-record CRC framing and torn-tail recovery.

Every state-mutating scheduler command is appended *before* it is applied
(write-ahead), so after a crash the journal suffix re-executes exactly the
work the dead scheduler had started.  Records are JSON, one per line, framed
as::

    <seq>:<crc32 of payload, 8 hex digits>:<payload JSON>\\n

``seq`` is a monotonic sequence number starting at 1.  A crash can tear the
*last* record (partial line, missing newline, CRC mismatch); recovery drops
the torn suffix and truncates the file so appends continue cleanly.  A bad
record *followed by further valid records* is not a torn write — the journal
body is damaged and :class:`~repro.errors.JournalCorruptError` refuses to
guess.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, List, Tuple

from ..errors import JournalCorruptError, JournalError

__all__ = [
    "Journal",
    "read_journal",
    "read_journal_salvage",
    "append_record",
    "frame_record",
]


def frame_record(seq: int, record: Dict[str, Any]) -> bytes:
    """Encode one journal record into its on-disk framing."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    body = payload.encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return f"{seq}:{crc:08x}:".encode("ascii") + body + b"\n"


def _parse_line(line: bytes) -> Tuple[int, Dict[str, Any]]:
    """Decode one framed line (without trailing newline); raise ValueError."""
    head, _, rest = line.partition(b":")
    crc_text, _, body = rest.partition(b":")
    if not head or not crc_text or not body:
        raise ValueError("malformed frame")
    seq = int(head)
    crc = int(crc_text, 16)
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise ValueError("CRC mismatch")
    record = json.loads(body.decode("utf-8"))
    if not isinstance(record, dict):
        raise ValueError("payload is not an object")
    return seq, record


def read_journal(path: str) -> Tuple[List[Dict[str, Any]], int, int]:
    """Read ``path``; return ``(records, torn_dropped, valid_bytes)``.

    Each returned record carries its sequence number under ``"seq"``.
    ``torn_dropped`` counts invalid trailing records dropped (0 or 1 for a
    single torn write; a missing file reads as empty).  ``valid_bytes`` is
    the byte length of the valid prefix — truncate to it before appending.

    Raises :class:`JournalCorruptError` when an invalid record is *followed*
    by valid ones, or when sequence numbers are not strictly consecutive.
    """
    if not os.path.exists(path):
        return [], 0, 0
    with open(path, "rb") as handle:
        data = handle.read()
    records: List[Dict[str, Any]] = []
    valid_bytes = 0
    torn = 0
    offset = 0
    lines = data.split(b"\n")
    # A well-formed file ends with a newline, so split() yields a final
    # empty chunk; anything else trailing is a torn (unterminated) record.
    for index, line in enumerate(lines):
        terminated = index < len(lines) - 1
        if not terminated and line == b"":
            break  # clean end of file
        try:
            if not terminated:
                raise ValueError("unterminated record")
            seq, record = _parse_line(line)
            expected = records[-1]["seq"] + 1 if records else None
            if expected is not None and seq != expected:
                raise JournalCorruptError(
                    f"journal {path!r}: sequence jump "
                    f"{records[-1]['seq']} -> {seq}"
                )
        except ValueError:
            # Invalid record: torn tail if nothing valid follows.
            remainder = lines[index + 1 :]
            if any(chunk for chunk in remainder):
                raise JournalCorruptError(
                    f"journal {path!r}: corrupt record at byte {offset} "
                    "with valid records after it"
                ) from None
            torn = 1
            break
        record["seq"] = seq
        records.append(record)
        offset += len(line) + 1
        valid_bytes = offset
    return records, torn, valid_bytes


def read_journal_salvage(
    path: str,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Best-effort read for a journal :func:`read_journal` refuses.

    Bounded-loss salvage: every undamaged record is kept, every damaged one
    is skipped *and accounted*.  Returns ``(records, loss_report)`` where the
    report is::

        {"crc_skipped": int,      # mid-stream records dropped
         "skipped": [{"offset", "reason"}, ...],
         "torn": 0 | 1,           # unterminated trailing record
         "valid_bytes": int,      # end of the last valid record
         "records": int}          # records returned

    Sequence numbers must be strictly increasing but may have gaps (a
    skipped record leaves one); a non-increasing sequence is treated as
    damage and skipped too.  ``valid_bytes`` is reporting only — with
    mid-stream skips the prefix below it still contains damage, so salvage
    recovery rewrites the journal rather than truncating to it.
    """
    report: Dict[str, Any] = {
        "crc_skipped": 0,
        "skipped": [],
        "torn": 0,
        "valid_bytes": 0,
        "records": 0,
    }
    records: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return records, report
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.split(b"\n")
    offset = 0
    last_seq = 0
    for index, line in enumerate(lines):
        terminated = index < len(lines) - 1
        if not terminated:
            if line != b"":
                report["torn"] = 1
            break
        try:
            seq, record = _parse_line(line)
            if seq <= last_seq:
                raise ValueError(
                    f"non-increasing sequence {last_seq} -> {seq}"
                )
        except ValueError as exc:
            report["crc_skipped"] += 1
            report["skipped"].append(
                {"offset": offset, "reason": str(exc)}
            )
        else:
            record["seq"] = seq
            records.append(record)
            last_seq = seq
            report["valid_bytes"] = offset + len(line) + 1
        offset += len(line) + 1
    report["records"] = len(records)
    return records, report


def append_record(path: str, seq: int, record: Dict[str, Any]) -> None:
    """One-shot append (open, write, flush, fsync, close)."""
    with open(path, "ab") as handle:
        handle.write(frame_record(seq, record))
        handle.flush()
        os.fsync(handle.fileno())


class Journal:
    """Append-only journal writer.

    Parameters
    ----------
    path:
        Journal file.  Created empty when absent; appended to otherwise
        (pass ``start_seq`` to continue an existing sequence).
    start_seq:
        Last sequence number already present (next append is ``+1``).
    fsync:
        Issue ``os.fsync`` after every record (the durability barrier).
        Off by default: tests and simulations only need the crash
        consistency *logic*, and per-record fsync dominates runtime.
    """

    def __init__(self, path: str, start_seq: int = 0, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._seq = start_seq
        #: framed bytes written through this writer (observability)
        self.bytes_written = 0
        self._handle = open(path, "ab")

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._seq

    def append(self, record: Dict[str, Any]) -> int:
        """Frame, write and flush ``record``; returns its sequence number."""
        if self._handle is None:
            raise JournalError("journal is closed")
        self._seq += 1
        frame = frame_record(self._seq, record)
        self._handle.write(frame)
        self.bytes_written += len(frame)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        return self._seq

    def barrier(self) -> None:
        """Force an explicit durability barrier (flush + fsync)."""
        if self._handle is None:
            raise JournalError("journal is closed")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
