"""Crash injection: kill the scheduler at named cut points.

The simulator calls ``self._crashpoint(name)`` at every point where a crash
would leave partially applied state.  A :class:`CrashInjector` attached to a
simulator raises :class:`SimulatedCrash` at the *n*-th hit of a chosen point;
the test harness treats the exception as a process death — the in-memory
simulator is discarded and :func:`repro.recovery.recover` rebuilds a new one
from the snapshot + journal on disk.

``CRASH_POINTS`` lists every named point, grouped by the method that hosts
it (``OverloadController.admit``, ``_cycle``, ``_on_start``, ``_on_end``,
``_kill``).  The ``admit.*`` points are only reached when the simulator runs
with overload protection enabled (``ClusterSimulator(overload=...)``) *and*
admission control actually refuses/sheds/defers something.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["CRASH_POINTS", "SimulatedCrash", "CrashInjector"]

#: every named cut point the simulator exposes, in execution order
CRASH_POINTS = (
    # OverloadController.admit (only hit when overload protection is on)
    "admit.pre",        # admission decision pending, nothing applied yet
    "admit.shed",       # shed victim canceled, new job not yet proceeding
    "admit.post",       # admission decision fully applied
    # ClusterSimulator._cycle
    "cycle.pre",        # before the queue policy places anything
    "cycle.booked",     # allocations booked, start/end events not yet pushed
    "cycle.post",       # cycle fully applied (after the auditor)
    # ClusterSimulator._on_start
    "start.pre",        # reservation due, RUNNING transition not yet applied
    "start.post",       # start fully applied
    # ClusterSimulator._on_end
    "end.pre",          # job due to end, nothing released yet
    "end.released",     # allocations released, job not yet COMPLETED
    "end.post",         # end fully applied (including the follow-up cycle)
    # ClusterSimulator._kill
    "kill.pre",         # kill decided, nothing applied yet
    "kill.canceled",    # victim canceled, retry not yet submitted
    "kill.post",        # kill fully applied
)


class SimulatedCrash(BaseException):
    """The injected scheduler death.

    Derives from ``BaseException`` so ordinary ``except Exception`` cleanup
    in library or test code cannot accidentally swallow the crash — exactly
    like a real ``kill -9`` would not be catchable.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"simulated crash at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


class CrashInjector:
    """Raise :class:`SimulatedCrash` at the ``nth`` hit of ``point``.

    Parameters
    ----------
    point:
        One of :data:`CRASH_POINTS`.
    nth:
        Which hit triggers the crash (1 = first).  Crash points inside hot
        paths (``cycle.*``) fire many times per run; varying ``nth`` moves
        the cut around the schedule.

    An injector fires at most once (``armed`` drops after raising) so a
    recovered simulator re-attached to the same injector is not re-killed.
    """

    def __init__(self, point: str, nth: int = 1) -> None:
        if point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {point!r}; known: {list(CRASH_POINTS)}"
            )
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        self.point = point
        self.nth = nth
        self.armed = True
        #: hit counters for every point, for post-mortem inspection
        self.hits: Dict[str, int] = {}

    def attach(self, sim: "ClusterSimulator") -> None:
        """Install this injector on ``sim`` (one injector per simulator)."""
        sim._crash_injector = self

    def hit(self, point: str) -> None:
        """Called by the simulator at each cut point."""
        self.hits[point] = self.hits.get(point, 0) + 1
        if self.armed and point == self.point and self.hits[point] == self.nth:
            self.armed = False
            raise SimulatedCrash(point, self.nth)
