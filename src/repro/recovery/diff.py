"""State-diff checker: prove two simulators are in equivalent states.

The crash-equivalence tests compare a recovered simulator against an
uninterrupted control run.  Equivalence is *logical*: everything that can
influence future scheduling decisions or reported results must match —
graph structure and vertex status, planner spans (ids included, since ids
feed future decisions), allocations, jobs, queue state, the pending event
heap, the event log and the accounting counters.  Wall-clock measurements
(``Job.sched_time``) are excluded: two runs of identical decisions never
take identical wall time.

``state_fingerprint`` reduces a simulator to a nested JSON-able structure;
``state_diff`` returns human-readable paths where two fingerprints differ
(empty list = equivalent).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..match.writer import planner_owner_index
from ..sched.simulator import _FAIL, _REPAIR, ClusterSimulator

__all__ = ["state_fingerprint", "state_diff"]


def state_fingerprint(sim: ClusterSimulator) -> Dict[str, Any]:
    """Reduce ``sim`` to a comparable, JSON-able structure.

    Vertices appear under their globally unique names so fingerprints from
    independently constructed graphs (e.g. restored from JGF) compare
    correctly even though ``uniq_id`` values differ.
    """
    graph = sim.graph
    vertices: Dict[str, Any] = {}
    for vertex in graph.vertices():
        entry: Dict[str, Any] = {
            "type": vertex.type,
            "size": vertex.size,
            "status": vertex.status,
            "properties": dict(vertex.properties),
            "paths": dict(vertex.paths),
            "plans": vertex.plans.export_state(),
            "xplans": vertex.xplans.export_state(),
        }
        if vertex.prune_filters is not None:
            entry["filter"] = vertex.prune_filters.export_state()
        vertices[vertex.name] = entry

    owner = planner_owner_index(graph)
    allocations = {
        str(alloc_id): alloc.to_record(owner)
        for alloc_id, alloc in sim.traverser.allocations.items()
    }

    jobs = {}
    for job_id, job in sim.jobs.items():
        record = job.to_record()
        record.pop("sched_time", None)  # wall-clock: never reproducible
        # Released allocations of finished jobs still feed the report
        # (start/end windows), so their windows are part of the state.
        record["alloc_windows"] = [
            [a.at, a.duration, a.reserved] for a in job.allocations
        ]
        jobs[str(job_id)] = record

    events = []
    for when, kind, eseq, ref, data in sorted(sim._events):
        if kind in (_FAIL, _REPAIR):
            ref = graph.vertex(ref).name
        events.append([when, kind, eseq, ref, data])

    return {
        "now": sim.now,
        "vertices": vertices,
        "allocations": allocations,
        "next_alloc_id": sim.traverser._next_alloc_id,
        "jobs": jobs,
        "next_job_id": sim._next_job_id,
        "queue": {
            "name": sim.queue_policy.name,
            "state": sim.queue_policy.export_state(),
        },
        "events": events,
        "event_seq": sim._event_seq,
        "started_allocs": sorted(sim._started_allocs),
        "event_log": [list(entry) for entry in sim.event_log],
        "counters": {
            "failures": sim.failures,
            "retries": sim.retries,
            "busy_node_seconds": sim._busy_node_seconds,
            "work_lost": sim._work_lost,
        },
        "down_since": {
            graph.vertex(uid).name: [t, nodes]
            for uid, (t, nodes) in sim._down_since.items()
        },
        "downtime": sorted(
            [graph.vertex(uid).name, t0, t1, nodes]
            for uid, t0, t1, nodes in sim._downtime
        ),
        # Overload-protection state steers future admission/ladder/breaker
        # decisions, so it is part of logical equivalence (None = disabled).
        "overload": (
            None if sim.overload is None else sim.overload.export_state()
        ),
        # Scrub cursor and quarantine set steer future integrity decisions.
        "integrity": (
            None if sim.integrity is None else sim.integrity.export_state()
        ),
    }


def _walk(a: Any, b: Any, path: str, out: List[str]) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                out.append(f"{sub}: only in second ({b[key]!r})")
            elif key not in b:
                out.append(f"{sub}: only in first ({a[key]!r})")
            else:
                _walk(a[key], b[key], sub, out)
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
            return
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            _walk(item_a, item_b, f"{path}[{index}]", out)
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def state_diff(a: ClusterSimulator, b: ClusterSimulator) -> List[str]:
    """Human-readable differences between two simulators' logical states.

    Returns an empty list when the simulators are equivalent.
    """
    out: List[str] = []
    _walk(state_fingerprint(a), state_fingerprint(b), "", out)
    return out
