"""Snapshots: one versioned, checksummed document for the whole scheduler.

A snapshot captures everything a :class:`~repro.sched.ClusterSimulator`
needs to resume: the resource graph (as JGF, including down/drained status
and pruning-filter placement), every planner's spans (per-vertex ``plans``
and ``xplans`` plus pruning-filter aggregates), active and reserved
allocations, job and queue-policy state, the pending event heap, retry-policy
RNG state and the accounting counters.  The document is wrapped with a
SHA-256 checksum; a half-written or bit-rotted snapshot file fails
verification and recovery falls back to an older one.

Restores are *exact*: planner spans come back under their original ids (so
future auto-assigned ids match), the event heap keeps its sequence
tiebreakers, and vertices are matched by globally unique name (uniq_ids are
graph-internal and reassigned on load).
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import SnapshotError
from ..match.writer import Allocation, planner_owner_index
from ..resource.jgf import from_jgf, to_jgf
from ..sched.job import Job
from ..sched.simulator import _FAIL, _REPAIR, ClusterSimulator

__all__ = [
    "SNAPSHOT_VERSION",
    "REBUILDABLE_SECTIONS",
    "snapshot_state",
    "restore_simulator",
    "write_snapshot",
    "load_snapshot",
    "load_snapshot_salvage",
]

SNAPSHOT_VERSION = 1

#: sections :func:`load_snapshot_salvage` may drop: each can be rebuilt from
#: the rest of the document (planners from the allocation table) or holds
#: only reporting state whose loss is bounded and accounted.
REBUILDABLE_SECTIONS = frozenset(
    {"planners", "traverser_stats", "event_log", "recovery_stats"}
)


def _section_digest(value: Any) -> str:
    payload = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _planner_states(sim: ClusterSimulator) -> Dict[str, Dict[str, Any]]:
    """Per-vertex planner exports, skipping pristine (never-touched) ones."""

    def keep(state: Dict[str, Any]) -> bool:
        return bool(state["spans"]) or state["next_span_id"] > 1

    out: Dict[str, Dict[str, Any]] = {}
    for vertex in sim.graph.vertices():
        entry: Dict[str, Any] = {}
        plans = vertex.plans.export_state()
        if keep(plans):
            entry["plans"] = plans
        xplans = vertex.xplans.export_state()
        if keep(xplans):
            entry["xplans"] = xplans
        if vertex.prune_filters is not None:
            filt = vertex.prune_filters.export_state()
            if filt["spans"] or filt["next_span_id"] > 1:
                entry["filter"] = filt
        if entry:
            out[vertex.name] = entry
    return out


def _retry_policy_state(sim: ClusterSimulator) -> Optional[Dict[str, Any]]:
    policy = sim.retry_policy
    if policy is None:
        return None
    state = policy._rng.getstate()
    return {
        "config": {
            "max_retries": policy.max_retries,
            "backoff_base": policy.backoff_base,
            "backoff_factor": policy.backoff_factor,
            "backoff_cap": policy.backoff_cap,
            "jitter": policy.jitter,
            "priority_boost": policy.priority_boost,
            "checkpoint_period": policy.checkpoint_period,
            "seed": policy.seed,
        },
        "rng_state": [state[0], list(state[1]), state[2]],
    }


def snapshot_state(sim: ClusterSimulator, seq: int = 0) -> Dict[str, Any]:
    """Serialise the complete simulator state at journal sequence ``seq``.

    Journal records with sequence numbers greater than ``seq`` replay on top
    of this snapshot during recovery.
    """
    owner = planner_owner_index(sim.graph)
    events = []
    for when, kind, eseq, ref, data in sorted(sim._events):
        if kind in (_FAIL, _REPAIR):
            ref = sim.graph.vertex(ref).name
        events.append([when, kind, eseq, ref, data])
    # Completed jobs keep references to already-released allocations (their
    # windows feed the report), so serialise the union of live traverser
    # allocations and everything any job still points at.
    all_allocs = dict(sim.traverser.allocations)
    for job in sim.jobs.values():
        for alloc in job.allocations:
            all_allocs.setdefault(alloc.alloc_id, alloc)
    return {
        "version": SNAPSHOT_VERSION,
        "seq": seq,
        "now": sim.now,
        "config": {
            "match_policy": sim.traverser.policy.name,
            "queue": sim.queue_policy.name,
            "queue_state": sim.queue_policy.export_state(),
            "prune": sim.traverser.prune,
            "audit": sim.auditor is not None,
        },
        "graph": to_jgf(sim.graph),
        "planners": _planner_states(sim),
        "allocations": [
            alloc.to_record(owner) for _, alloc in sorted(all_allocs.items())
        ],
        "live_alloc_ids": sorted(sim.traverser.allocations),
        "next_alloc_id": sim.traverser._next_alloc_id,
        "traverser_stats": dict(sim.traverser.stats),
        "jobs": [job.to_record() for _, job in sorted(sim.jobs.items())],
        "next_job_id": sim._next_job_id,
        "events": events,
        "event_seq": sim._event_seq,
        "started_allocs": sorted(sim._started_allocs),
        "event_log": [list(entry) for entry in sim.event_log],
        "counters": {
            "failures": sim.failures,
            "retries": sim.retries,
            "busy_node_seconds": sim._busy_node_seconds,
            "work_lost": sim._work_lost,
        },
        "down_since": {
            sim.graph.vertex(uid).name: [t, nodes]
            for uid, (t, nodes) in sim._down_since.items()
        },
        "downtime": [
            [sim.graph.vertex(uid).name, t0, t1, nodes]
            for uid, t0, t1, nodes in sim._downtime
        ],
        "retry_policy": _retry_policy_state(sim),
        "recovery_stats": dict(sim.recovery_stats),
        # Optional overload-protection state (absent/None = disabled; older
        # snapshots without the key restore exactly as before).
        "overload": (
            None
            if sim.overload is None
            else {
                "config": sim.overload.config.to_dict(),
                "state": sim.overload.export_state(),
            }
        ),
        # Optional integrity-scrubber state (same contract as "overload").
        "integrity": (
            None
            if sim.integrity is None
            else {
                "config": sim.integrity.config.to_dict(),
                "state": sim.integrity.export_state(),
            }
        ),
    }


def restore_simulator(
    doc: Dict[str, Any], salvaged: Iterable[str] = ()
) -> ClusterSimulator:
    """Rebuild a fresh :class:`ClusterSimulator` from a snapshot document.

    ``salvaged`` names sections :func:`load_snapshot_salvage` dropped; each
    must be in :data:`REBUILDABLE_SECTIONS`.  A dropped ``planners`` section
    is reconstructed from the live allocation records (span ids preserved)
    via :meth:`~repro.recovery.repair.RepairEngine.
    rebuild_from_allocation_records`; the other rebuildable sections restart
    from fresh defaults.  Every rebuilt section is counted in
    ``recovery_stats["snapshot_sections_rebuilt"]``.
    """
    salvaged = set(salvaged)
    bad = salvaged - REBUILDABLE_SECTIONS
    if bad:
        raise SnapshotError(
            f"cannot restore without critical section(s): {sorted(bad)}"
        )
    if doc.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {doc.get('version')!r}"
        )
    graph = from_jgf(doc["graph"])
    config = doc["config"]
    retry_policy = None
    retry_state = doc.get("retry_policy")
    if retry_state is not None:
        from ..resilience.retry import RetryPolicy

        retry_policy = RetryPolicy(**retry_state["config"])
        version, internal, gauss = retry_state["rng_state"]
        retry_policy._rng.setstate((version, tuple(internal), gauss))
    overload_doc = doc.get("overload")
    overload_config = None
    if overload_doc is not None:
        from ..resilience.overload import OverloadConfig

        overload_config = OverloadConfig.from_dict(overload_doc["config"])
    integrity_doc = doc.get("integrity")
    integrity_config = None
    if integrity_doc is not None:
        from .integrity import IntegrityConfig

        integrity_config = IntegrityConfig.from_dict(integrity_doc["config"])
    sim = ClusterSimulator(
        graph,
        match_policy=config["match_policy"],
        queue=config["queue"],
        prune=config["prune"],
        retry_policy=retry_policy,
        audit=config["audit"],
        overload=overload_config,
        integrity=integrity_config,
    )
    by_name = {v.name: v for v in graph.vertices()}

    live = set(doc["live_alloc_ids"])
    # planner spans (before allocations, which reference them by id)
    if "planners" in salvaged:
        from .repair import RepairEngine

        RepairEngine(sim).rebuild_from_allocation_records(
            doc["allocations"], live
        )
    else:
        for name, entry in doc["planners"].items():
            try:
                vertex = by_name[name]
            except KeyError:
                raise SnapshotError(
                    f"snapshot references unknown vertex {name!r}"
                ) from None
            if "plans" in entry:
                vertex.plans.import_state(entry["plans"])
            if "xplans" in entry:
                vertex.xplans.import_state(entry["xplans"])
            if "filter" in entry:
                if vertex.prune_filters is None:
                    raise SnapshotError(
                        f"snapshot has filter spans for {name!r} but the "
                        "restored graph installed no filter there"
                    )
                vertex.prune_filters.import_state(entry["filter"])

    allocations: Dict[int, Allocation] = {}
    for record in doc["allocations"]:
        alloc = Allocation.from_record(record, by_name)
        if alloc.alloc_id in live:
            sim.traverser.install_allocation(alloc)
        allocations[alloc.alloc_id] = alloc
    sim.traverser._next_alloc_id = max(
        sim.traverser._next_alloc_id, int(doc["next_alloc_id"])
    )
    if "traverser_stats" not in salvaged:
        sim.traverser.stats = dict(doc["traverser_stats"])

    for record in doc["jobs"]:
        job = Job.from_record(record, allocations)
        sim.jobs[job.job_id] = job
    sim._next_job_id = int(doc["next_job_id"])
    sim.queue_policy.import_state(config["queue_state"], sim.jobs)

    events = []
    for when, kind, eseq, ref, data in doc["events"]:
        if kind in (_FAIL, _REPAIR):
            ref = by_name[ref].uniq_id
        events.append((when, kind, eseq, ref, data))
    heapq.heapify(events)
    sim._events = events
    sim._event_seq = int(doc["event_seq"])
    sim.now = doc["now"]
    sim._started_allocs = set(doc["started_allocs"])
    if "event_log" not in salvaged:
        sim.event_log = [tuple(entry) for entry in doc["event_log"]]
    counters = doc["counters"]
    sim.failures = counters["failures"]
    sim.retries = counters["retries"]
    sim._busy_node_seconds = counters["busy_node_seconds"]
    sim._work_lost = counters["work_lost"]
    sim._down_since = {
        by_name[name].uniq_id: (t, nodes)
        for name, (t, nodes) in doc["down_since"].items()
    }
    sim._downtime = [
        (by_name[name].uniq_id, t0, t1, nodes)
        for name, t0, t1, nodes in doc["downtime"]
    ]
    if "recovery_stats" not in salvaged:
        # Merge over the constructor defaults so snapshots written before a
        # counter existed restore with it at 0 rather than missing.
        sim.recovery_stats.update(doc["recovery_stats"])
    sim.recovery_stats["snapshot_sections_rebuilt"] += len(salvaged)
    if overload_doc is not None:
        sim.overload.import_state(overload_doc["state"])
    if integrity_doc is not None:
        sim.integrity.import_state(integrity_doc["state"])
    return sim


def write_snapshot(doc: Dict[str, Any], path: str) -> None:
    """Write ``doc`` to ``path`` wrapped with a SHA-256 checksum.

    The write goes through a temporary file + ``os.replace`` so a crash
    mid-write can never leave a half-written file under the final name.
    """
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    wrapper = {
        "sha256": digest,
        # Per-section digests let salvage recovery localise damage: a bad
        # rebuildable section is dropped instead of discarding the file.
        "sections": {key: _section_digest(value) for key, value in doc.items()},
        "snapshot": doc,
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(wrapper, handle, sort_keys=True, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read and verify a snapshot file; raise :class:`SnapshotError`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            wrapper = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    if (
        not isinstance(wrapper, dict)
        or "sha256" not in wrapper
        or "snapshot" not in wrapper
    ):
        raise SnapshotError(f"snapshot {path!r} has no checksum wrapper")
    doc = wrapper["snapshot"]
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    if digest != wrapper["sha256"]:
        raise SnapshotError(f"snapshot {path!r} fails checksum verification")
    # The per-section digests are salvage metadata outside the global
    # checksum; verify them too so no byte of the file is unprotected.
    sections = wrapper.get("sections")
    if sections is not None:
        for key, value in doc.items():
            if sections.get(key) != _section_digest(value):
                raise SnapshotError(
                    f"snapshot {path!r}: section {key!r} fails digest "
                    "verification"
                )
    return doc


def load_snapshot_salvage(
    path: str,
) -> Optional[Tuple[Dict[str, Any], List[str]]]:
    """Best-effort snapshot load; returns ``(doc, dropped)`` or ``None``.

    A snapshot :func:`load_snapshot` verifies loads with ``dropped == []``.
    Otherwise the per-section digests written by :func:`write_snapshot`
    localise the damage: a bad section in :data:`REBUILDABLE_SECTIONS` is
    removed from the document and listed in ``dropped`` (sorted) for
    :func:`restore_simulator` to reconstruct; a bad *critical* section — or
    a file that is unreadable, unparseable, or predates per-section digests
    — salvages nothing and returns ``None`` so recovery falls back to an
    older snapshot.
    """
    try:
        return load_snapshot(path), []
    except SnapshotError:
        pass
    try:
        with open(path, "r", encoding="utf-8") as handle:
            wrapper = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(wrapper, dict):
        return None
    doc = wrapper.get("snapshot")
    sections = wrapper.get("sections")
    if not isinstance(doc, dict) or not isinstance(sections, dict):
        return None
    dropped = []
    for key in sorted(doc):
        digest = sections.get(key)
        if digest is not None and _section_digest(doc[key]) == digest:
            continue
        if key not in REBUILDABLE_SECTIONS:
            return None
        dropped.append(key)
    if not dropped:
        # Global checksum failed but every section verifies: the wrapper
        # itself is damaged — nothing trustworthy to salvage section-wise.
        return None
    for key in dropped:
        del doc[key]
    return doc, dropped
