"""RecoveryManager: glue between a simulator, its journal and its snapshots.

Attach a manager to a simulator and every top-level command (submit, cancel,
fail, repair, scheduled failures/repairs, reschedule, and each event-heap
dispatch) is appended to the write-ahead journal *before* it mutates state;
allocation bookings/removals are journaled as observability effects.
Snapshots are written on attach, on demand (:meth:`RecoveryManager.snapshot`)
and every ``snapshot_every`` journal records.

After a crash, :func:`recover` rebuilds a simulator from the newest valid
snapshot and deterministically re-executes the journal suffix.  Replay pops
heap events in the same order the dead scheduler did (verified record by
record), regenerates internal effects (retry submissions, allocations) by
re-running the real code paths, drops a torn journal tail, and re-attaches a
manager so the recovered simulator keeps journaling where the dead one
stopped.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
from typing import Any, Dict, List, Optional

from ..errors import FluxionError, RecoveryError, SnapshotError
from ..jobspec import parse_jobspec
from ..obs import WallTimer
from ..sched.job import CancelReason
from ..sched.simulator import _FAIL, _REPAIR, ClusterSimulator
from .journal import Journal, read_journal, read_journal_salvage
from .snapshot import (
    load_snapshot,
    load_snapshot_salvage,
    restore_simulator,
    snapshot_state,
    write_snapshot,
)

__all__ = ["RecoveryManager", "recover"]

_JOURNAL_NAME = "journal.wal"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"


def _snapshot_path(directory: str, seq: int) -> str:
    return os.path.join(
        directory, f"{_SNAPSHOT_PREFIX}{seq:012d}{_SNAPSHOT_SUFFIX}"
    )


def _snapshot_files(directory: str) -> List[str]:
    """Snapshot files in the directory, newest (highest seq) first."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    found = [
        name
        for name in names
        if name.startswith(_SNAPSHOT_PREFIX) and name.endswith(_SNAPSHOT_SUFFIX)
    ]
    return [os.path.join(directory, name) for name in sorted(found, reverse=True)]


class RecoveryManager:
    """Owns one recovery directory: a journal plus snapshot files.

    Parameters
    ----------
    directory:
        Where the journal (``journal.wal``) and snapshots
        (``snapshot-<seq>.json``) live.  Created if missing.
    snapshot_every:
        Write a snapshot automatically every N journal records (checked
        between event dispatches).  ``None`` disables periodic snapshots.
    fsync:
        Per-record fsync barriers on the journal.
    keep_snapshots:
        How many snapshot files to retain (older ones are pruned).
    """

    def __init__(
        self,
        directory: str,
        snapshot_every: Optional[int] = None,
        fsync: bool = False,
        keep_snapshots: int = 2,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise RecoveryError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        if keep_snapshots < 1:
            raise RecoveryError(
                f"keep_snapshots must be >= 1, got {keep_snapshots}"
            )
        self.directory = directory
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self.keep_snapshots = keep_snapshots
        os.makedirs(directory, exist_ok=True)
        self.sim: Optional[ClusterSimulator] = None
        self._journal: Optional[Journal] = None
        self._last_snapshot_seq = 0

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, _JOURNAL_NAME)

    # ------------------------------------------------------------------
    # attachment and journaling
    # ------------------------------------------------------------------
    def attach(
        self,
        sim: ClusterSimulator,
        initial_snapshot: bool = True,
        start_seq: int = 0,
    ) -> "RecoveryManager":
        """Bind this manager to ``sim`` and start journaling its commands.

        ``initial_snapshot`` writes a snapshot of the current state
        immediately, so recovery works even before the first periodic one.
        ``start_seq`` continues an existing journal (used by recovery).
        """
        if self.sim is not None:
            raise RecoveryError("manager is already attached to a simulator")
        if sim.recovery is not None:
            raise RecoveryError("simulator already has a recovery manager")
        self.sim = sim
        self._journal = Journal(
            self.journal_path, start_seq=start_seq, fsync=self.fsync
        )
        sim.recovery = self
        sim.traverser.on_book = self._on_book
        sim.traverser.on_remove = self._on_remove
        if initial_snapshot:
            self.snapshot()
        return self

    def _on_book(self, alloc) -> None:
        self.sim._journal(
            {
                "type": "alloc",
                "alloc_id": alloc.alloc_id,
                "at": alloc.at,
                "duration": alloc.duration,
                "reserved": alloc.reserved,
            }
        )

    def _on_remove(self, alloc) -> None:
        self.sim._journal({"type": "alloc_rm", "alloc_id": alloc.alloc_id})

    def record(self, record: Dict[str, Any]) -> int:
        """Append one record to the journal (called by the simulator)."""
        if self._journal is None:
            raise RecoveryError("manager is not attached")
        before = self._journal.bytes_written
        seq = self._journal.append(record)
        self.sim.recovery_stats["journal_records"] += 1
        obs = self.sim.obs
        if obs.enabled:
            obs.metrics.counter(
                "journal.records", "write-ahead journal records appended"
            ).inc()
            obs.metrics.counter(
                "journal.bytes", "framed journal bytes written"
            ).inc(self._journal.bytes_written - before)
        return seq

    def after_event(self, sim: ClusterSimulator) -> None:
        """Periodic-snapshot hook, called between event dispatches."""
        if self.snapshot_every is None or self._journal is None:
            return
        if self._journal.last_seq - self._last_snapshot_seq >= self.snapshot_every:
            self.snapshot()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> str:
        """Write a snapshot of the attached simulator now; returns its path."""
        if self.sim is None or self._journal is None:
            raise RecoveryError("manager is not attached")
        self.sim.recovery_stats["snapshots_taken"] += 1
        seq = self._journal.last_seq
        with WallTimer() as timer:
            doc = snapshot_state(self.sim, seq=seq)
            path = _snapshot_path(self.directory, seq)
            write_snapshot(doc, path)
        self._last_snapshot_seq = seq
        for old in _snapshot_files(self.directory)[self.keep_snapshots :]:
            os.unlink(old)
        obs = self.sim.obs
        if obs.enabled:
            obs.metrics.counter(
                "snapshot.count", "snapshots written"
            ).inc()
            obs.metrics.histogram(
                "snapshot.seconds", "wall time to serialize and write a snapshot"
            ).observe(timer.elapsed)
            obs.tracer.instant(
                "recovery.snapshot", "recovery", vt=float(self.sim.now), seq=seq
            )
        return path

    def close(self) -> None:
        """Detach from the simulator and close the journal."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self.sim is not None:
            self.sim.recovery = None
            self.sim.traverser.on_book = None
            self.sim.traverser.on_remove = None
            self.sim = None


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
def _fingerprint_digest(sim: ClusterSimulator) -> str:
    """SHA-256 over the logical state fingerprint (divergence forensics)."""
    from .diff import state_fingerprint

    payload = json.dumps(
        state_fingerprint(sim), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _note_divergence(sim: ClusterSimulator) -> None:
    sim.recovery_stats["replay_divergences"] += 1
    if sim.obs.enabled:
        sim.obs.metrics.counter(
            "replay.divergences", "replayed dispatches not matching journal"
        ).inc()


def _replay_dispatch(sim: ClusterSimulator, record: Dict[str, Any]) -> None:
    """Re-execute one journaled event dispatch, verifying determinism."""
    if not sim._events:
        _note_divergence(sim)
        raise RecoveryError(
            f"journal record {record['seq']}: dispatch with an empty "
            "event heap (replaying state fingerprint "
            f"sha256:{_fingerprint_digest(sim)})"
        )
    when, kind, eseq, ref, data = sim._events[0]
    ref_name = sim.graph.vertex(ref).name if kind in (_FAIL, _REPAIR) else ref
    expected = (record["when"], record["kind"], record["ref"], record["data"])
    observed = (when, kind, ref_name, data)
    if observed != expected:
        _note_divergence(sim)
        raise RecoveryError(
            f"journal record {record['seq']}: replay divergence — "
            f"expected (journaled) {expected!r}, observed (heap top) "
            f"{observed!r}; replaying state fingerprint "
            f"sha256:{_fingerprint_digest(sim)}"
        )
    heapq.heappop(sim._events)
    sim._applying += 1
    try:
        sim._dispatch(when, kind, ref, data)
    finally:
        sim._applying -= 1


def _replay(
    sim: ClusterSimulator,
    records: List[Dict[str, Any]],
    salvage: bool = False,
) -> int:
    """Deterministically re-execute the journal suffix on ``sim``.

    Only *commands* re-execute; records flagged ``internal`` and the
    ``alloc``/``alloc_rm`` effects are regenerated by the commands that
    originally produced them.  In ``salvage`` mode the journal may have
    damage-induced gaps, so the first record that cannot re-execute (replay
    divergence, missing referent) *stops* replay instead of raising; the
    record and everything after it are dropped.  Returns the number of
    records dropped this way (always 0 when not salvaging).
    """
    by_name = {v.name: v for v in sim.graph.vertices()}
    observed = sim.obs.enabled
    sim._replaying = True
    try:
        for index, record in enumerate(records):
            try:
                _replay_record(sim, record, by_name)
            except (FluxionError, KeyError):
                if not salvage:
                    raise
                # Loss is bounded and accounted: everything up to here
                # replayed cleanly; the remainder is dropped and counted.
                return len(records) - index
            sim.recovery_stats["journal_replayed"] += 1
            if observed:
                sim.obs.metrics.counter(
                    "replay.records", "journal records consumed during replay"
                ).inc()
    finally:
        sim._replaying = False
    return 0


def _replay_record(
    sim: ClusterSimulator,
    record: Dict[str, Any],
    by_name: Dict[str, Any],
) -> None:
    """Re-execute a single journal record (see :func:`_replay`)."""
    rtype = record["type"]
    if record.get("internal") or rtype in ("alloc", "alloc_rm"):
        return
    if rtype == "submit":
        sim.submit(
            parse_jobspec(record["jobspec"]),
            at=record["at"],
            name=record["name"],
            priority=record["priority"],
            actual_duration=record["actual_duration"],
        )
    elif rtype == "cancel":
        sim.cancel(
            sim.jobs[record["job_id"]],
            reason=CancelReason(record["reason"]),
        )
    elif rtype == "sched_fail":
        sim.schedule_failure(by_name[record["vertex"]], record["at"])
    elif rtype == "sched_repair":
        sim.schedule_repair(by_name[record["vertex"]], record["at"])
    elif rtype == "fail":
        sim.fail(by_name[record["vertex"]], resubmit=record["resubmit"])
    elif rtype == "repair":
        sim.repair(by_name[record["vertex"]])
    elif rtype == "reschedule":
        sim.reschedule()
    elif rtype == "corrupt":
        sim.inject_corruption(
            record["kind"], by_name[record["vertex"]], record["salt"]
        )
    elif rtype == "dispatch":
        _replay_dispatch(sim, record)
    else:
        raise RecoveryError(
            f"journal record {record['seq']}: unknown type {rtype!r}"
        )


def recover(
    directory: str,
    snapshot_every: Optional[int] = None,
    fsync: bool = False,
    keep_snapshots: int = 2,
    salvage: bool = False,
    salvage_report: Optional[Dict[str, Any]] = None,
) -> ClusterSimulator:
    """Rebuild the scheduler from ``directory`` after a crash.

    Loads the newest snapshot that passes checksum verification (falling
    back to older ones), drops any torn journal tail (truncating the file so
    future appends are clean), replays every journal record after the
    snapshot's sequence point, and re-attaches a fresh
    :class:`RecoveryManager` continuing the same journal.  A snapshot of
    the recovered state is written immediately, so the replayed suffix is
    never replayed twice and recovery statistics survive further crashes.
    The returned simulator is event-for-event equivalent to one that never
    crashed.

    ``salvage`` turns hard failures into bounded, accounted loss: CRC-bad
    mid-stream journal records are skipped (strict mode raises
    :class:`~repro.errors.JournalCorruptError`), a partially damaged
    snapshot loads section-by-section (rebuildable sections reconstructed,
    see :func:`~repro.recovery.snapshot.load_snapshot_salvage`), and replay
    stops at the first record the damaged prefix makes unreplayable.  The
    journal is then rewritten empty with a fresh snapshot at the recovered
    sequence (a strict reader would refuse the damage-induced gaps).  Every
    loss is tallied in ``recovery_stats`` (``salvage_skipped``,
    ``salvage_dropped``, ``snapshot_sections_rebuilt``) and, when
    ``salvage_report`` (a dict) is passed, itemised into it.
    """
    candidates = _snapshot_files(directory)
    if not candidates:
        raise SnapshotError(f"no snapshot found in {directory!r}")
    doc = None
    salvaged_sections: List[str] = []
    snapshot_path_used = None
    errors = []
    for path in candidates:
        try:
            doc = load_snapshot(path)
            snapshot_path_used = path
            break
        except SnapshotError as exc:
            errors.append(str(exc))
        if salvage:
            loaded = load_snapshot_salvage(path)
            if loaded is not None:
                doc, salvaged_sections = loaded
                snapshot_path_used = path
                break
    if doc is None:
        raise SnapshotError(
            f"no valid snapshot in {directory!r}: " + "; ".join(errors)
        )

    journal_path = os.path.join(directory, _JOURNAL_NAME)
    if salvage:
        records, journal_loss = read_journal_salvage(journal_path)
        torn = journal_loss["torn"]
    else:
        records, torn, valid_bytes = read_journal(journal_path)
        journal_loss = None
        if torn and os.path.exists(journal_path):
            with open(journal_path, "r+b") as handle:
                handle.truncate(valid_bytes)

    sim = restore_simulator(doc, salvaged=salvaged_sections)
    sim.recovery_stats["recoveries"] += 1
    sim.recovery_stats["torn_records_dropped"] += torn

    suffix = [r for r in records if r["seq"] > doc["seq"]]
    dropped = _replay(sim, suffix, salvage=salvage)

    last_seq = records[-1]["seq"] if records else doc["seq"]
    if salvage:
        crc_skipped = journal_loss["crc_skipped"]
        sim.recovery_stats["salvage_skipped"] += crc_skipped
        sim.recovery_stats["salvage_dropped"] += dropped
        if salvage_report is not None:
            salvage_report.update(
                {
                    "snapshot_path": snapshot_path_used,
                    "snapshot_sections_rebuilt": list(salvaged_sections),
                    "journal": journal_loss,
                    "crc_skipped": crc_skipped,
                    "replay_dropped": dropped,
                    "last_seq": last_seq,
                }
            )
        # A strict reader would refuse the damage-induced sequence gaps, so
        # the salvaged journal cannot be appended to: restart it empty and
        # anchor recovery on a fresh snapshot at the recovered sequence.
        if os.path.exists(journal_path):
            with open(journal_path, "r+b") as handle:
                handle.truncate(0)
    manager = RecoveryManager(
        directory,
        snapshot_every=snapshot_every,
        fsync=fsync,
        keep_snapshots=keep_snapshots,
    )
    manager.attach(sim, initial_snapshot=True, start_seq=last_seq)
    return sim
