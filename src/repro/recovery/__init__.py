"""Crash-consistent scheduler state: snapshots, write-ahead journal, replay.

Production Fluxion reconstructs its resource/planner state from R allocation
records when the scheduling module reloads; this package gives the
reproduction's simulator the same durability story, extended with a
write-ahead journal so *nothing* is lost between snapshots:

* :mod:`~repro.recovery.snapshot` — serialise/restore the complete
  scheduler state as one versioned, checksummed document;
* :mod:`~repro.recovery.journal` — CRC-framed write-ahead journal with
  torn-tail detection;
* :mod:`~repro.recovery.manager` — :class:`RecoveryManager` (journals an
  attached simulator, snapshots periodically) and :func:`recover` (restore
  newest snapshot + replay journal suffix; ``salvage=True`` trades hard
  failures on mid-stream damage for bounded, accounted loss);
* :mod:`~repro.recovery.integrity` — the "fluxfsck" online scrubber:
  :class:`IntegrityMonitor` cross-checks planner/allocation/graph state
  against content checksums each cycle, quarantining corrupted vertices;
* :mod:`~repro.recovery.repair` — :class:`RepairEngine`, the journaled
  repair actions the scrubber and snapshot salvage both use;
* :mod:`~repro.recovery.crash` — :class:`CrashInjector` killing the
  scheduler at named cut points, for restart-equivalence testing;
* :mod:`~repro.recovery.diff` — :func:`state_diff` proving a recovered
  simulator equivalent to an uninterrupted control run.

``python -m repro.recovery fsck <dir>`` is the operator front end: verify
(and optionally repair) a recovery directory offline.

See ``docs/recovery.md`` for formats and guarantees.
"""

from .crash import CRASH_POINTS, CrashInjector, SimulatedCrash
from .diff import state_diff, state_fingerprint
from .integrity import (
    CORRUPTION_KINDS,
    Finding,
    IntegrityConfig,
    IntegrityMonitor,
    apply_corruption,
    corruption_targets,
    expected_span_table,
    structure_checksum,
)
from .journal import Journal, read_journal, read_journal_salvage
from .manager import RecoveryManager, recover
from .repair import RepairEngine
from .snapshot import (
    REBUILDABLE_SECTIONS,
    SNAPSHOT_VERSION,
    load_snapshot,
    load_snapshot_salvage,
    restore_simulator,
    snapshot_state,
    write_snapshot,
)

__all__ = [
    "CRASH_POINTS",
    "CrashInjector",
    "SimulatedCrash",
    "state_diff",
    "state_fingerprint",
    "CORRUPTION_KINDS",
    "Finding",
    "IntegrityConfig",
    "IntegrityMonitor",
    "apply_corruption",
    "corruption_targets",
    "expected_span_table",
    "structure_checksum",
    "RepairEngine",
    "Journal",
    "read_journal",
    "read_journal_salvage",
    "RecoveryManager",
    "recover",
    "REBUILDABLE_SECTIONS",
    "SNAPSHOT_VERSION",
    "load_snapshot",
    "load_snapshot_salvage",
    "restore_simulator",
    "snapshot_state",
    "write_snapshot",
]
