"""Crash-consistent scheduler state: snapshots, write-ahead journal, replay.

Production Fluxion reconstructs its resource/planner state from R allocation
records when the scheduling module reloads; this package gives the
reproduction's simulator the same durability story, extended with a
write-ahead journal so *nothing* is lost between snapshots:

* :mod:`~repro.recovery.snapshot` — serialise/restore the complete
  scheduler state as one versioned, checksummed document;
* :mod:`~repro.recovery.journal` — CRC-framed write-ahead journal with
  torn-tail detection;
* :mod:`~repro.recovery.manager` — :class:`RecoveryManager` (journals an
  attached simulator, snapshots periodically) and :func:`recover` (restore
  newest snapshot + replay journal suffix);
* :mod:`~repro.recovery.crash` — :class:`CrashInjector` killing the
  scheduler at named cut points, for restart-equivalence testing;
* :mod:`~repro.recovery.diff` — :func:`state_diff` proving a recovered
  simulator equivalent to an uninterrupted control run.

See ``docs/recovery.md`` for formats and guarantees.
"""

from .crash import CRASH_POINTS, CrashInjector, SimulatedCrash
from .diff import state_diff, state_fingerprint
from .journal import Journal, read_journal
from .manager import RecoveryManager, recover
from .snapshot import (
    SNAPSHOT_VERSION,
    load_snapshot,
    restore_simulator,
    snapshot_state,
    write_snapshot,
)

__all__ = [
    "CRASH_POINTS",
    "CrashInjector",
    "SimulatedCrash",
    "state_diff",
    "state_fingerprint",
    "Journal",
    "read_journal",
    "RecoveryManager",
    "recover",
    "SNAPSHOT_VERSION",
    "load_snapshot",
    "restore_simulator",
    "snapshot_state",
    "write_snapshot",
]
