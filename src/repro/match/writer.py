"""Match writers: the selected resource set a match emits (paper §3.2 step 7).

A successful traversal produces an :class:`Allocation` — the best-matching
resource subgraph with per-vertex amounts and exclusivity — which the
underlying resource manager uses to contain, bind and execute the job.  The
``to_rlite`` form mirrors Flux's R-lite allocation documents.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import RecoveryError
from ..resource import ResourceGraph, ResourceVertex

__all__ = ["Selection", "Allocation", "planner_owner_index"]


def planner_owner_index(graph: ResourceGraph) -> Dict[int, Tuple[str, str]]:
    """Map ``id(planner object)`` -> ``(vertex name, kind)`` for every
    planner a graph owns (``plans``, ``xplans`` and pruning ``filter``).

    Allocation span records hold bare planner references; this index lets
    :meth:`Allocation.to_record` name them durably.
    """
    index: Dict[int, Tuple[str, str]] = {}
    for vertex in graph.vertices():
        index[id(vertex.plans)] = (vertex.name, "plans")
        index[id(vertex.xplans)] = (vertex.name, "xplans")
        if vertex.prune_filters is not None:
            index[id(vertex.prune_filters)] = (vertex.name, "filter")
    return index


class Selection:
    """One vertex's contribution to an allocation.

    ``amount`` is the pool quantity taken (0 for shared pass-through
    vertices, which participate only for exclusivity tracking); ``exclusive``
    marks a whole-pool exclusive hold; ``passthrough`` marks interior
    vertices on the path between the request level and the selected
    resources.

    Slotted plain class (PRF003): every match emits one Selection per
    booked vertex, and the per-instance dict a dataclass carries is
    measurable overhead at fill-the-machine rates.  Treated as immutable.
    """

    __slots__ = ("vertex", "amount", "exclusive", "passthrough")

    def __init__(
        self,
        vertex: ResourceVertex,
        amount: int,
        exclusive: bool = False,
        passthrough: bool = False,
    ) -> None:
        self.vertex = vertex
        self.amount = amount
        self.exclusive = exclusive
        self.passthrough = passthrough

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Selection):
            return NotImplemented
        return (
            self.vertex == other.vertex
            and self.amount == other.amount
            and self.exclusive == other.exclusive
            and self.passthrough == other.passthrough
        )

    def __hash__(self) -> int:
        return hash((self.vertex, self.amount, self.exclusive, self.passthrough))

    def __repr__(self) -> str:
        return (
            f"Selection(vertex={self.vertex!r}, amount={self.amount!r}, "
            f"exclusive={self.exclusive!r}, passthrough={self.passthrough!r})"
        )

    @property
    def type(self) -> str:
        return self.vertex.type


class Allocation:
    """A booked (or reserved) resource set.

    Attributes
    ----------
    alloc_id:
        Traverser-unique id; pass to ``Traverser.remove`` to free.
    at, duration:
        The booked window ``[at, at + duration)``.
    reserved:
        True when the allocation starts in the future (a reservation made by
        ``allocate_orelse_reserve``).
    selections:
        Every vertex booked, including shared pass-through vertices.
    _span_records:
        (planner-like object, span id) pairs to undo on removal;
        planner-like is a Planner (vertex plans/xplans) or PlannerMulti
        (pruning filter).

    Slotted plain class (PRF003): one Allocation per successful match.
    Mirrors the former (non-frozen) dataclass: equality compares all
    fields and instances are unhashable.
    """

    __slots__ = (
        "alloc_id", "at", "duration", "reserved", "selections",
        "_span_records",
    )

    def __init__(
        self,
        alloc_id: int,
        at: int,
        duration: int,
        reserved: bool,
        selections: List[Selection],
        _span_records: Optional[List[Tuple[object, int]]] = None,
    ) -> None:
        self.alloc_id = alloc_id
        self.at = at
        self.duration = duration
        self.reserved = reserved
        self.selections = selections
        self._span_records = [] if _span_records is None else _span_records

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return (
            self.alloc_id == other.alloc_id
            and self.at == other.at
            and self.duration == other.duration
            and self.reserved == other.reserved
            and self.selections == other.selections
            and self._span_records == other._span_records
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"Allocation(alloc_id={self.alloc_id!r}, at={self.at!r}, "
            f"duration={self.duration!r}, reserved={self.reserved!r}, "
            f"selections={self.selections!r})"
        )

    @property
    def end(self) -> int:
        return self.at + self.duration

    def resources(self) -> List[Selection]:
        """Selections that carry actual resources (non-pass-through)."""
        return [s for s in self.selections if not s.passthrough]

    def vertices_of_type(self, rtype: str) -> List[ResourceVertex]:
        """Selected (non-pass-through) vertices of ``rtype``."""
        return [s.vertex for s in self.selections if not s.passthrough and s.type == rtype]

    def nodes(self) -> List[ResourceVertex]:
        """Convenience: selected compute nodes."""
        return self.vertices_of_type("node")

    def amount_of(self, rtype: str) -> int:
        """Total quantity of ``rtype`` in the allocation."""
        return sum(
            s.amount for s in self.selections if not s.passthrough and s.type == rtype
        )

    def to_rlite(self) -> dict:
        """R-lite-style document: per-path type/amount/exclusive entries."""
        children = [
            {
                "path": s.vertex.path("containment"),
                "type": s.type,
                "count": s.amount,
                "exclusive": s.exclusive,
            }
            for s in self.selections
            if not s.passthrough
        ]
        return {
            "version": 1,
            "execution": {
                "starttime": self.at,
                "expiration": self.end,
                "reserved": self.reserved,
            },
            "resources": children,
        }

    def to_rv1(self) -> dict:
        """R version-1 style document: R-lite resources plus a scheduling
        section carrying the full per-vertex detail (Fluxion attaches its
        scheduler-specific view under ``scheduling``)."""
        rlite = self.to_rlite()
        return {
            "version": 1,
            "execution": rlite["execution"],
            "scheduling": {
                "resources": [
                    {
                        "path": s.vertex.path("containment"),
                        "type": s.type,
                        "basename": s.vertex.basename,
                        "id": s.vertex.id,
                        "count": s.amount,
                        "exclusive": s.exclusive,
                        "passthrough": s.passthrough,
                    }
                    for s in self.selections
                ],
            },
            "resources": rlite["resources"],
        }

    # ------------------------------------------------------------------
    # snapshot records (crash recovery)
    # ------------------------------------------------------------------
    def to_record(self, planner_owner: Mapping[int, Tuple[str, str]]) -> dict:
        """Serialise this allocation for a scheduler snapshot.

        Unlike :meth:`to_rlite`, the record keeps everything needed to
        *re-install* the allocation exactly: pass-through selections and the
        ``(vertex, planner kind, span id)`` triples behind ``_span_records``.
        ``planner_owner`` maps ``id(planner_obj)`` to ``(vertex name, kind)``
        — build it with :func:`planner_owner_index`.
        """
        spans = []
        for planner, span_id in self._span_records:
            try:
                name, kind = planner_owner[id(planner)]
            except KeyError:
                raise RecoveryError(
                    f"allocation {self.alloc_id} books a planner not owned "
                    "by any graph vertex"
                ) from None
            spans.append({"vertex": name, "kind": kind, "span_id": span_id})
        return {
            "alloc_id": self.alloc_id,
            "at": self.at,
            "duration": self.duration,
            "reserved": self.reserved,
            "selections": [
                {
                    "vertex": s.vertex.name,
                    "amount": s.amount,
                    "exclusive": s.exclusive,
                    "passthrough": s.passthrough,
                }
                for s in self.selections
            ],
            "spans": spans,
        }

    @classmethod
    def from_record(
        cls,
        record: Mapping[str, Any],
        by_name: Mapping[str, ResourceVertex],
    ) -> "Allocation":
        """Rebuild an allocation from :meth:`to_record` output.

        ``by_name`` maps vertex names to the (already restored) graph's
        vertices; the referenced planner spans must already exist — the
        recovery layer imports planner state before rewiring allocations.
        """

        def vertex_of(name: str) -> ResourceVertex:
            try:
                return by_name[name]
            except KeyError:
                raise RecoveryError(
                    f"allocation record references unknown vertex {name!r}"
                ) from None

        selections = [
            Selection(
                vertex=vertex_of(s["vertex"]),
                amount=int(s["amount"]),
                exclusive=bool(s["exclusive"]),
                passthrough=bool(s["passthrough"]),
            )
            for s in record["selections"]
        ]
        span_records: List[Tuple[object, int]] = []
        for entry in record["spans"]:
            vertex = vertex_of(entry["vertex"])
            kind = entry["kind"]
            span_id = int(entry["span_id"])
            if kind == "plans":
                planner: object = vertex.plans
                present = vertex.plans.has_span(span_id)
            elif kind == "xplans":
                planner = vertex.xplans
                present = vertex.xplans.has_span(span_id)
            elif kind == "filter":
                planner = vertex.prune_filters
                present = planner is not None and planner.has_span(span_id)
            else:
                raise RecoveryError(f"unknown planner kind {kind!r}")
            if not present:
                raise RecoveryError(
                    f"allocation record references missing {kind} span "
                    f"{span_id} on vertex {vertex.name!r}"
                )
            span_records.append((planner, span_id))
        return cls(
            alloc_id=int(record["alloc_id"]),
            at=int(record["at"]),
            duration=int(record["duration"]),
            reserved=bool(record["reserved"]),
            selections=selections,
            _span_records=span_records,
        )

    def to_pretty(self) -> str:
        """Render the selected resource set as an indented tree (Fluxion's
        "pretty" match writer): one line per selection, nested by containment
        path, pass-through vertices shown without amounts."""
        entries = sorted(
            self.selections, key=lambda s: s.vertex.path("containment")
        )
        lines = []
        for sel in entries:
            path = sel.vertex.path("containment")
            depth = max(path.count("/") - 1, 0)
            indent = "  " * depth
            if sel.passthrough:
                lines.append(f"{indent}{sel.vertex.name}")
            else:
                marker = "!" if sel.exclusive else ""
                amount = f"[{sel.amount}{sel.vertex.unit}]" if sel.amount else ""
                lines.append(f"{indent}{sel.vertex.name}{marker}{amount}")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line description, e.g. ``t=[0,3600) node0{core:10,memory:8}``."""
        by_type: Dict[str, int] = {}
        for s in self.resources():
            by_type[s.type] = by_type.get(s.type, 0) + s.amount
        body = ",".join(f"{t}:{n}" for t, n in sorted(by_type.items()))
        flag = " reserved" if self.reserved else ""
        return f"t=[{self.at},{self.end}){flag} {{{body}}}"
