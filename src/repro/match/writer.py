"""Match writers: the selected resource set a match emits (paper §3.2 step 7).

A successful traversal produces an :class:`Allocation` — the best-matching
resource subgraph with per-vertex amounts and exclusivity — which the
underlying resource manager uses to contain, bind and execute the job.  The
``to_rlite`` form mirrors Flux's R-lite allocation documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..resource import ResourceVertex

__all__ = ["Selection", "Allocation"]


@dataclass(frozen=True)
class Selection:
    """One vertex's contribution to an allocation.

    ``amount`` is the pool quantity taken (0 for shared pass-through
    vertices, which participate only for exclusivity tracking); ``exclusive``
    marks a whole-pool exclusive hold; ``passthrough`` marks interior
    vertices on the path between the request level and the selected
    resources.
    """

    vertex: ResourceVertex
    amount: int
    exclusive: bool = False
    passthrough: bool = False

    @property
    def type(self) -> str:
        return self.vertex.type


@dataclass
class Allocation:
    """A booked (or reserved) resource set.

    Attributes
    ----------
    alloc_id:
        Traverser-unique id; pass to ``Traverser.remove`` to free.
    at, duration:
        The booked window ``[at, at + duration)``.
    reserved:
        True when the allocation starts in the future (a reservation made by
        ``allocate_orelse_reserve``).
    selections:
        Every vertex booked, including shared pass-through vertices.
    """

    alloc_id: int
    at: int
    duration: int
    reserved: bool
    selections: List[Selection]
    #: (planner-like object, span id) pairs to undo on removal; planner-like
    #: is a Planner (vertex plans/xplans) or PlannerMulti (pruning filter).
    _span_records: List[Tuple[object, int]] = field(default_factory=list, repr=False)

    @property
    def end(self) -> int:
        return self.at + self.duration

    def resources(self) -> List[Selection]:
        """Selections that carry actual resources (non-pass-through)."""
        return [s for s in self.selections if not s.passthrough]

    def vertices_of_type(self, rtype: str) -> List[ResourceVertex]:
        """Selected (non-pass-through) vertices of ``rtype``."""
        return [s.vertex for s in self.selections if not s.passthrough and s.type == rtype]

    def nodes(self) -> List[ResourceVertex]:
        """Convenience: selected compute nodes."""
        return self.vertices_of_type("node")

    def amount_of(self, rtype: str) -> int:
        """Total quantity of ``rtype`` in the allocation."""
        return sum(
            s.amount for s in self.selections if not s.passthrough and s.type == rtype
        )

    def to_rlite(self) -> dict:
        """R-lite-style document: per-path type/amount/exclusive entries."""
        children = [
            {
                "path": s.vertex.path("containment"),
                "type": s.type,
                "count": s.amount,
                "exclusive": s.exclusive,
            }
            for s in self.selections
            if not s.passthrough
        ]
        return {
            "version": 1,
            "execution": {
                "starttime": self.at,
                "expiration": self.end,
                "reserved": self.reserved,
            },
            "resources": children,
        }

    def to_rv1(self) -> dict:
        """R version-1 style document: R-lite resources plus a scheduling
        section carrying the full per-vertex detail (Fluxion attaches its
        scheduler-specific view under ``scheduling``)."""
        rlite = self.to_rlite()
        return {
            "version": 1,
            "execution": rlite["execution"],
            "scheduling": {
                "resources": [
                    {
                        "path": s.vertex.path("containment"),
                        "type": s.type,
                        "basename": s.vertex.basename,
                        "id": s.vertex.id,
                        "count": s.amount,
                        "exclusive": s.exclusive,
                        "passthrough": s.passthrough,
                    }
                    for s in self.selections
                ],
            },
            "resources": rlite["resources"],
        }

    def to_pretty(self) -> str:
        """Render the selected resource set as an indented tree (Fluxion's
        "pretty" match writer): one line per selection, nested by containment
        path, pass-through vertices shown without amounts."""
        entries = sorted(
            self.selections, key=lambda s: s.vertex.path("containment")
        )
        lines = []
        for sel in entries:
            path = sel.vertex.path("containment")
            depth = max(path.count("/") - 1, 0)
            indent = "  " * depth
            if sel.passthrough:
                lines.append(f"{indent}{sel.vertex.name}")
            else:
                marker = "!" if sel.exclusive else ""
                amount = f"[{sel.amount}{sel.vertex.unit}]" if sel.amount else ""
                lines.append(f"{indent}{sel.vertex.name}{marker}{amount}")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line description, e.g. ``t=[0,3600) node0{core:10,memory:8}``."""
        by_type: Dict[str, int] = {}
        for s in self.resources():
            by_type[s.type] = by_type.get(s.type, 0) + s.amount
        body = ",".join(f"{t}:{n}" for t, n in sorted(by_type.items()))
        flag = " reserved" if self.reserved else ""
        return f"t=[{self.at},{self.end}){flag} {{{body}}}"
