"""Matching subsystem: traverser, policies, pruning/SDFU (paper §3.2-§3.4)."""

from .policy import (
    POLICIES,
    CallbackPolicy,
    FirstMatch,
    HighIdFirst,
    LocalityAware,
    LowIdFirst,
    MatchPolicy,
    VariationAware,
    VariationGreedy,
    make_policy,
)
from .traverser import Candidate, Traverser
from .writer import Allocation, Selection

__all__ = [
    "POLICIES",
    "Allocation",
    "CallbackPolicy",
    "Candidate",
    "FirstMatch",
    "HighIdFirst",
    "LocalityAware",
    "LowIdFirst",
    "MatchPolicy",
    "Selection",
    "Traverser",
    "VariationAware",
    "VariationGreedy",
    "make_policy",
]
