"""Match policies: pluggable candidate scoring (paper §3.2, §3.5).

The traverser walks the resource graph and, at each matching level, asks the
policy how to rank candidate vertices — the paper's match callback with its
"user- or admin-specified scoring mechanism" (ID-based, locality-aware, or
performance-class based).  Policies never see planner internals or mutate the
graph; the separation of concerns keeps them tiny (§3.5).

Two hooks:

``key(vertex, request)``
    Sort key; lower sorts first.  This is the scoring callback.
``choose(feasible, needed, request)``
    Optional whole-set selection for policies that need a global view, such
    as the variation-aware policy (§5.2) which picks the window of nodes
    with the smallest performance-class spread.  Policies that implement it
    must set ``needs_full_feasible = True`` so the traverser materialises
    the feasible set (otherwise candidates are evaluated lazily).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import MatchError
from ..jobspec import ResourceRequest
from ..resource import ResourceVertex

__all__ = [
    "CallbackPolicy",
    "MatchPolicy",
    "FirstMatch",
    "HighIdFirst",
    "LowIdFirst",
    "LocalityAware",
    "VariationAware",
    "VariationGreedy",
    "POLICIES",
    "make_policy",
]


class MatchPolicy:
    """Base policy: candidates in discovery order, first-fit selection."""

    #: Registry name.
    name = "first"
    #: When True the traverser materialises the full feasible candidate set
    #: and calls :meth:`choose`; when False it evaluates candidates lazily
    #: in :meth:`key` order (cheaper).
    needs_full_feasible = False

    def key(self, vertex: ResourceVertex, request: ResourceRequest) -> Any:
        """Sort key for candidate ordering (lower = preferred).

        Returning None for every vertex keeps discovery order.
        """
        return None

    def order(
        self, candidates: List, request: ResourceRequest
    ) -> List:
        """Order candidate entries (``entry.vertex`` is the vertex)."""
        probe = self.key(candidates[0].vertex, request) if candidates else None
        if probe is None:
            return candidates
        return sorted(candidates, key=lambda c: self.key(c.vertex, request))

    def choose(
        self,
        feasible: Sequence,
        needed: int,
        request: ResourceRequest,
    ) -> Optional[List]:
        """Return a preference-ordered list of candidate entries to try.

        Called only when ``needs_full_feasible`` is True.  May return more
        than ``needed`` entries (extras are fallbacks); returning None or a
        too-short list fails the match at this level.
        """
        return list(feasible)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} policy={self.name!r}>"


class FirstMatch(MatchPolicy):
    """Take candidates in graph discovery order (fastest)."""

    name = "first"


class HighIdFirst(MatchPolicy):
    """Prefer higher vertex ids — one of the paper's §6.3 baselines."""

    name = "high"

    def key(self, vertex: ResourceVertex, request: ResourceRequest) -> Any:
        return (-vertex.id, -vertex.uniq_id)


class LowIdFirst(MatchPolicy):
    """Prefer lower vertex ids — the paper's other §6.3 baseline."""

    name = "low"

    def key(self, vertex: ResourceVertex, request: ResourceRequest) -> Any:
        return (vertex.id, vertex.uniq_id)


class LocalityAware(MatchPolicy):
    """Pack selections along the containment hierarchy.

    Sorting candidates by their canonical containment path groups siblings
    (same node, same rack) next to each other, so multi-vertex selections
    land in as few subtrees as possible.
    """

    name = "locality"

    def key(self, vertex: ResourceVertex, request: ResourceRequest) -> Any:
        return (vertex.path("containment"), vertex.id)


class VariationAware(MatchPolicy):
    """Performance-variation-aware node selection (paper §5.2 / §6.3).

    Nodes carry a ``perf_class`` property (1 = fastest bin, Eq. 1).  The
    policy sorts candidates by class then id, and chooses the contiguous
    window of the needed size that minimises the class spread — all ranks in
    one class when possible, minimal ``max(P_j) - min(P_j)`` otherwise
    (exactly the figure of merit of Eq. 2).
    """

    name = "variation"
    needs_full_feasible = True

    def __init__(self, class_property: str = "perf_class", default_class: int = 0):
        self.class_property = class_property
        self.default_class = default_class

    def _class(self, vertex: ResourceVertex) -> int:
        return vertex.properties.get(self.class_property, self.default_class)

    def key(self, vertex: ResourceVertex, request: ResourceRequest) -> Any:
        return (self._class(vertex), vertex.id)

    def choose(
        self,
        feasible: Sequence,
        needed: int,
        request: ResourceRequest,
    ) -> Optional[List]:
        entries = sorted(feasible, key=lambda c: self.key(c.vertex, request))
        if len(entries) < needed:
            return entries  # too short; the traverser will fail the level
        if needed == 0:
            return []
        classes = [self._class(c.vertex) for c in entries]
        best_start = 0
        best_spread = classes[needed - 1] - classes[0]
        for start in range(1, len(entries) - needed + 1):
            spread = classes[start + needed - 1] - classes[start]
            if spread < best_spread:
                best_spread = spread
                best_start = start
                if spread == 0:
                    break
        window = entries[best_start : best_start + needed]
        rest = entries[:best_start] + entries[best_start + needed :]
        return window + rest


class VariationGreedy(VariationAware):
    """Ablation variant of the variation-aware policy (§5.2).

    Same class-then-id ordering, but *greedy first-fit* instead of the
    minimum-spread window: it packs jobs into the fastest free class and
    pays a class-boundary crossing whenever one class cannot hold the whole
    job.  The fom benches contrast it with the window policy to show why
    the window selection matters.
    """

    name = "variation-greedy"
    needs_full_feasible = False


class CallbackPolicy(MatchPolicy):
    """User-supplied scoring callback (the paper's pluggable match callback,
    §3.2: "a user- or admin-specified scoring mechanism").

    Parameters
    ----------
    key:
        ``key(vertex, request) -> sortable`` — lower sorts first.
    name:
        Registry-style label for diagnostics.
    choose:
        Optional ``choose(feasible, needed, request) -> list`` whole-set
        selection hook; providing one sets ``needs_full_feasible``.
    """

    def __init__(
        self,
        key: Callable[[ResourceVertex, ResourceRequest], Any],
        name: str = "callback",
        choose: Optional[Callable[[Sequence, int, ResourceRequest], Optional[List]]] = None,
    ) -> None:
        self._key = key
        self.name = name
        self._choose = choose
        self.needs_full_feasible = choose is not None

    def key(self, vertex: ResourceVertex, request: ResourceRequest) -> Any:
        return self._key(vertex, request)

    def choose(
        self,
        feasible: Sequence,
        needed: int,
        request: ResourceRequest,
    ) -> Optional[List]:
        if self._choose is None:
            return list(feasible)
        return self._choose(feasible, needed, request)


#: Policy registry: name -> zero-argument factory.
POLICIES: Dict[str, Callable[[], MatchPolicy]] = {
    "first": FirstMatch,
    "high": HighIdFirst,
    "low": LowIdFirst,
    "locality": LocalityAware,
    "variation": VariationAware,
    "variation-greedy": VariationGreedy,
}


def make_policy(name: str) -> MatchPolicy:
    """Instantiate a registered policy by name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise MatchError(
            f"unknown match policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
