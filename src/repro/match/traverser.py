"""The DFU traverser: graph matching, pruning and SDFU (paper §3.2-§3.4).

The traverser walks the resource graph store in depth-first order, matches an
abstract resource request graph (jobspec) against it, and emits the selected
resource set.  Three operations mirror Fluxion's match verbs:

* :meth:`Traverser.allocate` — match at a fixed time or fail;
* :meth:`Traverser.allocate_orelse_reserve` — match now, or reserve the
  earliest future window (conservative-backfill building block).  Candidate
  start times come from the containment root's pruning filter via
  ``PlannerMultiAvailTimeFirst`` (§4.1);
* :meth:`Traverser.satisfiable` — structural check against raw capacities,
  ignoring current allocations.

Pruning (§3.4): while collecting candidates the traverser consults each
interior vertex's pruning filter with the request's per-unit subtree demand
and skips subtrees that cannot satisfy it; exclusively-held vertices are
skipped outright.  After a successful match, the Scheduler-Driven Filter
Update (SDFU) books the selected amounts into every ancestor filter along the
selected paths only — the filters are never recomputed from scratch.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Tuple

import functools

from ..errors import (
    AllocationNotFoundError,
    MatchError,
    SchedulingDeadlineExceeded,
)
from ..jobspec import Jobspec, ResourceRequest
from ..obs import NULL_OBSERVER, Counter, MetricsRegistry, Observer
from ..resource import CONTAINMENT, ResourceGraph, ResourceVertex
from ..resource.vertex import X_LIMIT
from .policy import MatchPolicy, make_policy
from .writer import Allocation, Selection

if False:  # pragma: no cover - annotation-only imports
    from ..resilience.overload import WorkBudget

__all__ = ["Traverser", "Candidate", "exclusive_top_selections", "sdfu_charges"]


def exclusive_top_selections(
    selections: List[Selection], subsystem: str
) -> List[Selection]:
    """Exclusive selections not nested under another exclusive selection."""
    exclusive = [s for s in selections if s.exclusive and not s.passthrough]
    paths = [s.vertex.path(subsystem) for s in exclusive]
    tops = []
    for sel, path in zip(exclusive, paths):
        nested = any(
            other is not sel and path.startswith(other_path + "/")
            for other, other_path in zip(exclusive, paths)
        )
        if not nested:
            tops.append(sel)
    return tops


def sdfu_charges(
    graph: ResourceGraph, subsystem: str, selections: List[Selection]
) -> Dict[int, Dict[str, int]]:
    """Per-ancestor pruning-filter charges for a selection set (§3.4).

    Pure function of the graph and the selections: returns
    ``{ancestor uniq_id: {type: quantity}}`` in the deterministic order the
    charges are discovered — the same order :meth:`Traverser._book` books
    filter spans in.  Shared by SDFU at booking time and by the repair
    engine, which re-derives what the filters *should* hold from the
    allocation table alone.  Counts may include non-positive entries; the
    booking side filters those out.
    """
    prune_types = set(graph.prune_types)
    updates: Dict[int, Dict[str, int]] = {}
    if not prune_types:
        return updates

    # Sibling selections (cores under one node) share most of their ancestor
    # walk; cache the filtered ancestor list per vertex for this call.
    anc_cache: Dict[int, List[ResourceVertex]] = {}

    def charge(vertex: ResourceVertex, counts: Dict[str, int]) -> None:
        ancs = anc_cache.get(vertex.uniq_id)
        if ancs is None:
            ancs = [
                anc
                for anc in graph.ancestors(vertex, subsystem)
                if anc.prune_filters is not None
            ]
            anc_cache[vertex.uniq_id] = ancs
        for anc in ancs:
            filters = anc.prune_filters
            bucket = updates.setdefault(anc.uniq_id, {})
            for rtype, qty in counts.items():
                if filters.tracks(rtype):
                    bucket[rtype] = bucket.get(rtype, 0) + qty

    explicit = [s for s in selections if not s.passthrough and s.amount]
    for sel in explicit:
        if sel.type in prune_types:
            charge(sel.vertex, {sel.type: sel.amount})
    # Exclusive subtree extras: a top-level exclusive hold consumes its
    # whole subtree, so charge subtree totals minus explicit bookings.
    for sel in exclusive_top_selections(selections, subsystem):
        vertex = sel.vertex
        prefix = vertex.path(subsystem) + "/"
        extras = {
            t: n
            for t, n in graph.subtree_totals(vertex, subsystem).items()
            if t in prune_types
        }
        extras[vertex.type] = extras.get(vertex.type, 0) - vertex.size
        for other in explicit:
            if other.vertex is vertex:
                continue
            if other.vertex.path(subsystem).startswith(prefix):
                if other.type in extras:
                    extras[other.type] -= other.amount
        extras = {t: n for t, n in extras.items() if n > 0}
        if not extras:
            continue
        own = vertex.prune_filters
        if own is not None:
            bucket = updates.setdefault(vertex.uniq_id, {})
            for rtype, qty in extras.items():
                if own.tracks(rtype):
                    bucket[rtype] = bucket.get(rtype, 0) + qty
        charge(vertex, extras)
    return updates


class _StatsView(Mapping):
    """Deprecated read-only dict view over registry-backed counters.

    Kept so pre-observability callers (``t.stats["visits"]``,
    ``dict(t.stats)``) keep working; new code should read
    :attr:`Traverser.metrics` instead.
    """

    __slots__ = ("_counters",)

    def __init__(self, counters: Dict[str, Counter]) -> None:
        self._counters = counters

    def __getitem__(self, key: str) -> int:
        return self._counters[key].value

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:
        return repr({key: counter.value
                     for key, counter in self._counters.items()})


def _tracked_slice(
    filters, demand: Dict[str, int], cache: Dict[Tuple[str, ...], Dict[str, int]]
) -> Dict[str, int]:
    """The slice of ``demand`` a pruning filter tracks, memoized per filter
    type-set.

    Filters at the same graph level track identical type sets, so one
    ``_collect``/``_fill_count`` pass re-derives the same dict thousands of
    times; keying on ``filters.types`` collapses that to one comprehension
    per distinct set (PRF001: dict built per visited vertex otherwise).
    """
    key = filters.types
    tracked = cache.get(key)
    if tracked is None:
        tracked = {t: n for t, n in demand.items() if n and filters.tracks(t)}
        cache[key] = tracked
    return tracked


@functools.lru_cache(maxsize=256)
def _compiled_requires(expression: str):
    from ..resource.expr import compile_expression

    return compile_expression(expression)


class Candidate:
    """A candidate vertex plus the interior vertices crossed to reach it.

    Slotted plain class: ``_collect`` materialises one per matching vertex
    per dispatch, so the per-instance dict a dataclass would carry is pure
    hot-path overhead (PRF003).  Treated as immutable.
    """

    __slots__ = ("vertex", "via")

    def __init__(
        self,
        vertex: ResourceVertex,
        via: Tuple[ResourceVertex, ...] = (),
    ) -> None:
        self.vertex = vertex
        self.via = via

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Candidate):
            return NotImplemented
        return self.vertex == other.vertex and self.via == other.via

    def __hash__(self) -> int:
        return hash((self.vertex, self.via))

    def __repr__(self) -> str:
        return f"Candidate(vertex={self.vertex!r}, via={self.via!r})"


class _Tentative:
    """Journalled tentative bookings for one in-progress match.

    Quantities and exclusivity levels claimed so far are tracked per vertex;
    ``mark``/``rollback`` undo failed sub-matches cheaply.
    """

    __slots__ = ("qty", "x", "passthrough", "_journal")

    def __init__(self) -> None:
        self.qty: Dict[int, int] = {}
        self.x: Dict[int, int] = {}
        self.passthrough: set = set()
        self._journal: List[Tuple[str, int, int]] = []

    def add_qty(self, uid: int, amount: int) -> None:
        if amount:
            self.qty[uid] = self.qty.get(uid, 0) + amount
            self._journal.append(("q", uid, amount))

    def add_x(self, uid: int, amount: int) -> None:
        self.x[uid] = self.x.get(uid, 0) + amount
        self._journal.append(("x", uid, amount))

    def add_passthrough(self, uid: int) -> bool:
        """Record a pass-through visit; False when already recorded."""
        if uid in self.passthrough:
            return False
        self.passthrough.add(uid)
        self._journal.append(("p", uid, 0))
        return True

    def mark(self) -> int:
        return len(self._journal)

    def rollback(self, mark: int) -> None:
        while len(self._journal) > mark:
            kind, uid, amount = self._journal.pop()
            if kind == "q":
                self.qty[uid] -= amount
                if not self.qty[uid]:
                    del self.qty[uid]
            elif kind == "x":
                self.x[uid] -= amount
                if not self.x[uid]:
                    del self.x[uid]
            else:
                self.passthrough.discard(uid)


class Traverser:
    """Depth-first-and-up traverser over one subsystem of a resource graph.

    Parameters
    ----------
    graph:
        The resource graph store.
    policy:
        A :class:`~repro.match.policy.MatchPolicy` instance or registered
        policy name (``first``/``high``/``low``/``locality``/``variation``).
    prune:
        Enable pruning-filter consultation during candidate collection.
    subsystem:
        The subsystem to traverse (graph filtering, §3.3).
    max_reserve_iters:
        Safety bound on the candidate-time iteration of
        ``allocate_orelse_reserve``.
    obs:
        An :class:`repro.obs.Observer` for span tracing; counters always
        collect into :attr:`metrics` regardless (they are the paper's §6
        instrumentation and cost one attribute-add each).
    """

    def __init__(
        self,
        graph: ResourceGraph,
        policy: "MatchPolicy | str" = "first",
        prune: bool = True,
        subsystem: str = CONTAINMENT,
        max_reserve_iters: int = 100_000,
        obs: Optional[Observer] = None,
    ) -> None:
        self.graph = graph
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.prune = prune
        self.subsystem = subsystem
        self.max_reserve_iters = max_reserve_iters
        self.allocations: Dict[int, Allocation] = {}
        self._next_alloc_id = 1
        #: span tracing sink; replaced by ClusterSimulator(observe=...)
        self.obs = obs if obs is not None else NULL_OBSERVER
        #: per-traverser performance counters (always on; §6 numbers)
        self.metrics = MetricsRegistry()
        self._c_visits = self.metrics.counter(
            "dfu.visits", "graph vertices visited during collection")
        self._c_matched = self.metrics.counter(
            "dfu.matched", "successful full matches")
        self._c_failed = self.metrics.counter(
            "dfu.failed", "failed match/reserve attempts")
        self._c_reserve = self.metrics.counter(
            "dfu.reserve_iters", "candidate times tried by reserve search")
        self._c_filter_hits = self.metrics.counter(
            "sdfu.filter_hits", "pruning-filter consults that cut a subtree")
        self._c_filter_misses = self.metrics.counter(
            "sdfu.filter_misses", "pruning-filter consults that passed")
        self._c_sdfu_updates = self.metrics.counter(
            "sdfu.updates", "ancestor filters updated after a booking")
        self._c_deadline = self.metrics.counter(
            "dfu.deadline_cancels",
            "match attempts cut short by a scheduling deadline")
        self._stats_view = _StatsView({
            "visits": self._c_visits,
            "matched": self._c_matched,
            "failed": self._c_failed,
            "reserve_iters": self._c_reserve,
        })
        #: observer hooks: called with the Allocation after a booking is
        #: registered / after a removal completes (used by the recovery
        #: journal; None disables).
        self.on_book = None
        self.on_remove = None
        #: cooperative work budget (repro.resilience.overload): when an
        #: OverloadController attaches one for the duration of a dispatch
        #: cycle, candidate collection and the reservation search charge it
        #: and honour its cancellation checkpoints.  None = unbounded.
        self.budget: "Optional[WorkBudget]" = None

    @property
    def stats(self) -> _StatsView:
        """Deprecated: read-only dict view of :attr:`metrics` counters."""
        return self._stats_view

    @stats.setter
    def stats(self, values: "Mapping[str, int]") -> None:
        # Snapshot restore (repro.recovery.snapshot) assigns a plain dict;
        # write the values through to the backing counters.
        for key, counter in self._stats_view._counters.items():
            counter.value = int(values.get(key, 0))

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def allocate(self, jobspec: Jobspec, at: int = 0) -> Optional[Allocation]:
        """Match and book ``jobspec`` starting exactly at ``at``.

        Returns the Allocation, or None when the request cannot be satisfied
        at that time — including when an attached work budget's *attempt*
        deadline fires mid-traversal (partial verdict: treated as no-match;
        a *cycle*-scope deadline propagates to the overload controller).
        """
        with self.obs.tracer.span("dfu.match", "match", vt=float(at)):
            if self.budget is not None:
                self.budget.begin_attempt()
            try:
                selections = self._match_at(at, jobspec.duration, jobspec)
            except SchedulingDeadlineExceeded as exc:
                if exc.scope != "attempt":
                    raise
                self._c_deadline.inc()
                self._c_failed.inc()
                why = self.obs.why
                if why.enabled:
                    why.fail("deadline", scope=exc.scope)
                return None
            if selections is None:
                self._c_failed.inc()
                return None
            return self._book(selections, at, jobspec.duration, reserved=False)

    def allocate_orelse_reserve(
        self, jobspec: Jobspec, now: int = 0
    ) -> Optional[Allocation]:
        """Match at ``now`` or reserve the earliest future window.

        Candidate start times are produced by the containment root's pruning
        filter (install one with
        :meth:`~repro.resource.graph.ResourceGraph.install_pruning_filters`);
        each candidate is verified with a full match, and the first success
        is booked.  Returns None when the request can never fit.
        """
        with self.obs.tracer.span("dfu.reserve_search", "match", vt=float(now)):
            if self.budget is not None:
                self.budget.begin_attempt()
            try:
                return self._reserve_search(jobspec, now)
            except SchedulingDeadlineExceeded as exc:
                if exc.scope != "attempt":
                    raise
                self._c_deadline.inc()
                self._c_failed.inc()
                why = self.obs.why
                if why.enabled:
                    why.fail("deadline", scope=exc.scope)
                return None

    def _reserve_search(
        self, jobspec: Jobspec, now: int
    ) -> Optional[Allocation]:
        duration = jobspec.duration
        totals = jobspec.totals()
        # Availability only changes at scheduled points, so the earliest
        # feasible start is `now` or a later event: an allocation completing,
        # or any state change visible in a root pruning filter (which also
        # covers outage windows booked by CapacitySchedule).  Root filters
        # additionally *jump* the candidate time forward with the paper's
        # PlannerMultiAvailTimeFirst: times whose aggregate availability
        # cannot cover the request totals are skipped wholesale (§3.4, §4.1).
        why = self.obs.why
        horizon = self.graph.plan_end - duration
        if now > horizon:
            if why.enabled:
                why.fail("horizon", now=now, horizon=horizon)
            return None
        prefilters = [
            (root.prune_filters, {
                t: n for t, n in totals.items() if root.prune_filters.tracks(t)
            })
            for root in self.graph.roots(self.subsystem)
            if root.prune_filters is not None
        ]
        candidate = now
        for _ in range(self.max_reserve_iters):
            self._c_reserve.inc()
            if self.budget is not None:
                self.budget.charge(1)
            # Advance to the first aggregate-feasible time per every filter.
            stable = False
            while not stable:
                stable = True
                for filters, tracked in prefilters:
                    if not tracked:
                        continue
                    t = filters.avail_time_first(tracked, duration, candidate)
                    if t is None:
                        self._c_failed.inc()
                        if why.enabled:
                            why.fail(
                                "planner_time", after=candidate,
                                types=",".join(sorted(tracked)),
                            )
                        return None
                    if t > candidate:
                        candidate = t
                        stable = False
            if candidate > horizon:
                self._c_failed.inc()
                if why.enabled:
                    why.fail(
                        "planner_time", candidate=candidate, horizon=horizon
                    )
                return None
            selections = self._match_at(candidate, duration, jobspec)
            if selections is not None:
                return self._book(
                    selections, candidate, duration, reserved=candidate > now
                )
            # Aggregates were satisfied but the full match failed (spatial
            # fragmentation): move to the next event after the candidate.
            events = [
                a.end
                for a in self.allocations.values()
                if candidate < a.end <= horizon
            ]
            for filters, _ in prefilters:
                t = filters.next_event_time(candidate)
                if t is not None and t <= horizon:
                    events.append(t)
            if not events:
                break
            candidate = min(events)
        else:
            raise MatchError(
                f"reservation search exceeded {self.max_reserve_iters} "
                "candidate times"
            )
        self._c_failed.inc()
        if why.enabled:
            why.fail("reserve_exhausted", last_candidate=candidate)
        return None

    def reserve(self, jobspec: Jobspec, earliest: int = 0) -> Optional[Allocation]:
        """Reserve the earliest window at or after ``earliest`` (alias that
        never considers 'now' special; the result may still start at
        ``earliest``)."""
        return self.allocate_orelse_reserve(jobspec, now=earliest)

    def satisfiable(self, jobspec: Jobspec) -> bool:
        """Could ``jobspec`` ever match this graph, ignoring allocations?"""
        return self._match_at(None, jobspec.duration, jobspec) is not None

    def remove(self, alloc_id: int) -> Allocation:
        """Release an allocation or cancel a reservation."""
        try:
            alloc = self.allocations.pop(alloc_id)
        except KeyError:
            raise AllocationNotFoundError(alloc_id) from None
        for planner, span_id in alloc._span_records:
            planner.rem_span(span_id)
        alloc._span_records.clear()
        if self.on_remove is not None:
            self.on_remove(alloc)
        return alloc

    def install_allocation(self, alloc: Allocation) -> None:
        """Register an externally rebuilt allocation (crash recovery).

        The allocation's planner spans must already be booked; this only
        re-registers the record and keeps future alloc ids disjoint.  The
        ``on_book`` hook is *not* fired — installation restores state, it
        does not create it.
        """
        if alloc.alloc_id in self.allocations:
            raise MatchError(
                f"allocation id {alloc.alloc_id} already registered"
            )
        self.allocations[alloc.alloc_id] = alloc
        self._next_alloc_id = max(self._next_alloc_id, alloc.alloc_id + 1)

    def remove_all(self) -> None:
        """Release every allocation made through this traverser."""
        for alloc_id in list(self.allocations):
            self.remove(alloc_id)

    def update_end(self, alloc_id: int, new_end: int) -> Allocation:
        """Extend or truncate an allocation's window in place (§5.5).

        Extension succeeds only when every booked vertex (and filter) has the
        capacity free over the added segment — reservations made after this
        allocation physically block it, so walltime extensions can never
        invalidate the schedule.  All-or-nothing: on failure the allocation
        is left exactly as it was and :class:`MatchError` is raised.
        """
        from ..errors import PlannerError

        try:
            alloc = self.allocations[alloc_id]
        except KeyError:
            raise AllocationNotFoundError(alloc_id) from None
        if new_end == alloc.end:
            return alloc
        old_end = alloc.end
        done = []
        try:
            for planner, span_id in alloc._span_records:
                planner.update_span_end(span_id, new_end)
                done.append((planner, span_id))
        except PlannerError as exc:
            for planner, span_id in done:
                planner.update_span_end(span_id, old_end)
            raise MatchError(
                f"cannot move allocation {alloc_id} end to {new_end}: {exc}"
            ) from exc
        alloc.duration = new_end - alloc.at
        return alloc

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def _match_at(
        self, at: Optional[int], duration: int, jobspec: Jobspec
    ) -> Optional[List[Selection]]:
        """Match the whole jobspec at time ``at`` (None = capacity mode)."""
        if at is not None and at + duration > self.graph.plan_end:
            why = self.obs.why
            if why.enabled:
                why.fail(
                    "horizon", at=at, duration=duration,
                    plan_end=self.graph.plan_end,
                )
            return None
        tentative = _Tentative()
        out: List[Selection] = []
        ok = self._match_requests(
            None, list(jobspec.resources), at, duration, False, tentative, out
        )
        if ok:
            self._c_matched.inc()
            return out
        return None

    def _match_requests(
        self,
        parent: Optional[ResourceVertex],
        requests: List[ResourceRequest],
        at: Optional[int],
        duration: int,
        exclusive_ctx: bool,
        tentative: _Tentative,
        out: List[Selection],
    ) -> bool:
        for request in requests:
            if request.is_slot:
                # A slot is a grouping shape: its children are matched with
                # multiplied counts and forced exclusivity (paper §4.2).
                for child in request.with_:
                    scaled = replace(
                        child,
                        count=child.count * request.count,
                        count_max=(
                            None
                            if child.count_max is None
                            else child.count_max * request.count
                        ),
                    )
                    if not self._match_one(
                        parent, scaled, at, duration, True, tentative, out
                    ):
                        return False
            elif not self._match_one(
                parent, request, at, duration, exclusive_ctx, tentative, out
            ):
                return False
        return True

    def _match_one(
        self,
        parent: Optional[ResourceVertex],
        request: ResourceRequest,
        at: Optional[int],
        duration: int,
        exclusive_ctx: bool,
        tentative: _Tentative,
        out: List[Selection],
    ) -> bool:
        exclusive = request.effective_exclusive(exclusive_ctx)
        demand = self._unit_demand(request)
        why = self.obs.why
        pre = why.mark() if why.enabled else 0
        candidates = self._collect(parent, request, at, duration, tentative, demand)
        if not candidates:
            if why.enabled:
                # No prune event fired during the walk → nothing of this
                # type exists in the searched region (type mismatch);
                # otherwise every instance was pruned (see prune buckets).
                why.fail(
                    "type" if why.mark() == pre else "no_candidates",
                    type=request.type,
                    under=parent.name if parent is not None else "",
                )
            return False
        quantity_mode = not request.with_ and any(
            c.vertex.size != 1 for c in candidates
        )
        ordered = self.policy.order(candidates, request)
        mark = tentative.mark()
        length = len(out)
        if quantity_mode:
            ok = self._fill_quantity(
                ordered, request, at, duration, exclusive, tentative, out
            )
        else:
            ok = self._fill_count(
                ordered, request, at, duration, exclusive, demand, tentative, out
            )
        if not ok:
            tentative.rollback(mark)
            del out[length:]
        return ok

    def _fill_quantity(
        self,
        ordered: List[Candidate],
        request: ResourceRequest,
        at: Optional[int],
        duration: int,
        exclusive: bool,
        tentative: _Tentative,
        out: List[Selection],
    ) -> bool:
        """Aggregate units across pool candidates greedily.

        Fills toward ``request.max_count`` and succeeds once at least
        ``request.count`` units are gathered (moldable ranges take what is
        available, §5.5).
        """
        remaining = request.max_count
        minimum = request.count
        for candidate in ordered:
            vertex = candidate.vertex
            uid = vertex.uniq_id
            avail = self._avail_qty(vertex, at, duration) - tentative.qty.get(uid, 0)
            if avail <= 0:
                continue
            if self._avail_x(vertex, at, duration) - tentative.x.get(uid, 0) < 1:
                continue
            take = min(avail, remaining)
            tentative.add_qty(uid, take)
            tentative.add_x(uid, 1)
            # Pool quantities are owned by amount, not by exclusivity: the
            # allocated units can never be shared, and locking the whole pool
            # would block other jobs from the remaining units (an exclusive
            # jobspec flag on a pool is equivalent to requesting it all).
            out.append(Selection(vertex, take, False))
            self._book_passthrough(candidate.via, at, duration, tentative, out)
            remaining -= take
            if remaining == 0:
                return True
        gathered = request.max_count - remaining
        if gathered < minimum:
            why = self.obs.why
            if why.enabled:
                why.fail(
                    "quantity", type=request.type,
                    needed=minimum, got=gathered,
                )
            return False
        return True

    def _fill_count(
        self,
        ordered: List[Candidate],
        request: ResourceRequest,
        at: Optional[int],
        duration: int,
        exclusive: bool,
        demand: Dict[str, int],
        tentative: _Tentative,
        out: List[Selection],
    ) -> bool:
        """Select distinct vertices (``request.count`` up to
        ``request.max_count``), matching children inside each; greedy with
        per-candidate fallback (no cross-subtree backtracking, mirroring
        Fluxion's one-pass DFS)."""
        needed = request.max_count
        # demand is fixed for the whole fill, so feasibility checks across
        # candidates share one tracked-slice cache; _match_requests only
        # iterates its request list, so one copy serves every candidate.
        tracked_cache: Dict[Tuple[str, ...], Dict[str, int]] = {}
        children = list(request.with_)
        if self.policy.needs_full_feasible:
            feasible = [
                c
                for c in ordered
                if self._vertex_fits(
                    c.vertex, at, duration, exclusive, demand, tentative,
                    tracked_cache,
                )
            ]
            preference = self.policy.choose(feasible, needed, request) or []
        else:
            preference = ordered
        selected = 0
        used: set = set()
        for candidate in preference:
            if selected == needed:
                break
            vertex = candidate.vertex
            if vertex.uniq_id in used:
                continue
            if not self._vertex_fits(
                vertex, at, duration, exclusive, demand, tentative,
                tracked_cache,
            ):
                continue
            mark = tentative.mark()
            length = len(out)
            amount = vertex.size if exclusive else 0
            tentative.add_qty(vertex.uniq_id, amount)
            tentative.add_x(vertex.uniq_id, X_LIMIT if exclusive else 1)
            out.append(Selection(vertex, amount, exclusive))
            self._book_passthrough(candidate.via, at, duration, tentative, out)
            if children and not self._match_requests(
                vertex, children, at, duration, exclusive, tentative, out
            ):
                tentative.rollback(mark)
                del out[length:]
                continue
            used.add(vertex.uniq_id)
            selected += 1
        if selected < request.count:
            why = self.obs.why
            if why.enabled:
                why.fail(
                    "count", type=request.type,
                    needed=request.count, got=selected,
                )
            return False
        return True

    # ------------------------------------------------------------------
    # candidate collection and feasibility
    # ------------------------------------------------------------------
    def _collect(
        self,
        parent: Optional[ResourceVertex],
        request: ResourceRequest,
        at: Optional[int],
        duration: int,
        tentative: _Tentative,
        demand: Dict[str, int],
    ) -> List[Candidate]:
        """Gather candidate vertices of ``request.type`` reachable from
        ``parent`` (or the subsystem roots), pruning infeasible subtrees."""
        rtype = request.type
        predicate = (
            _compiled_requires(request.requires)
            if request.requires is not None
            else None
        )
        graph = self.graph
        if parent is None:
            frontier = [(root, ()) for root in graph.roots(self.subsystem)]
        else:
            frontier = [
                (child, ())
                for child in graph.children_tuple(parent, self.subsystem)
            ]
        # demand as seen from an interior vertex: one candidate + its subtree
        interior_demand = dict(demand)
        interior_demand[rtype] = interior_demand.get(rtype, 0) + 1
        stack = frontier[::-1]
        visited: set = set()
        results: List[Candidate] = []
        tracer = self.obs.tracer
        traced = tracer.enabled
        if traced:
            tracer.begin("dfu.collect", "match", rtype=rtype)
        budget = self.budget
        visits = 0
        filter_hits = 0
        filter_misses = 0
        # Hot-loop hoists (PRF002): bind per-call invariants to locals so the
        # DFS body — run once per visited vertex — skips repeated attribute
        # lookups; memoize the tracked demand slice per filter type-set.
        prune = self.prune
        subsystem = self.subsystem
        children_tuple = graph.children_tuple
        tentative_x = tentative.x
        tracked_cache: Dict[Tuple[str, ...], Dict[str, int]] = {}
        # Decision provenance (null-twin pattern): one hoisted bool guards
        # every probe, so a disabled recorder costs a local truth test on
        # the prune paths only; the bound method is hoisted too (PRF002).
        why = self.obs.why
        why_on = why.enabled
        why_prune = why.prune
        try:
            while stack:
                vertex, via = stack.pop()
                uid = vertex.uniq_id
                if uid in visited:
                    continue
                visited.add(uid)
                visits += 1
                if budget is not None:
                    # Cooperative cancellation checkpoint: may raise
                    # SchedulingDeadlineExceeded, aborting the walk with a
                    # partial verdict (the finally block still accounts the
                    # work already done).
                    budget.charge(1)
                if vertex.status != "up":
                    # drained vertices close their whole subtree
                    if why_on:
                        why_prune("down", vertex.type, vertex.name)
                    continue
                if vertex.type == rtype:
                    if predicate is None or predicate(vertex):
                        results.append(Candidate(vertex, via))
                    elif why_on:
                        why_prune("predicate", rtype, vertex.name)
                    continue
                if at is not None:
                    # Exclusively-held vertices close their whole subtree
                    # (§3.4).
                    if (
                        vertex.xplans.avail_resources_during(at, duration)
                        - tentative_x.get(uid, 0)
                        < 1
                    ):
                        if why_on:
                            why_prune("exclusive", vertex.type, vertex.name)
                        continue
                    if prune and vertex.prune_filters is not None:
                        filters = vertex.prune_filters
                        tracked = _tracked_slice(
                            filters, interior_demand, tracked_cache
                        )
                        if tracked:
                            if not filters.avail_during(at, duration, tracked):
                                filter_hits += 1
                                if why_on:
                                    why_prune("filter", vertex.type, vertex.name)
                                continue
                            filter_misses += 1
                children = children_tuple(vertex, subsystem)
                next_via = via + (vertex,)
                for child in reversed(children):
                    if child.uniq_id not in visited:
                        stack.append((child, next_via))
        finally:
            self._c_visits.inc(visits)
            if filter_hits:
                self._c_filter_hits.inc(filter_hits)
            if filter_misses:
                self._c_filter_misses.inc(filter_misses)
            if traced:
                tracer.end(visits=visits, candidates=len(results),
                           pruned=filter_hits)
        return results

    def _vertex_fits(
        self,
        vertex: ResourceVertex,
        at: Optional[int],
        duration: int,
        exclusive: bool,
        demand: Dict[str, int],
        tentative: _Tentative,
        tracked_cache: Optional[Dict[Tuple[str, ...], Dict[str, int]]] = None,
    ) -> bool:
        uid = vertex.uniq_id
        if exclusive:
            avail = self._avail_qty(vertex, at, duration) - tentative.qty.get(uid, 0)
            if avail < vertex.size:
                return False
            need_x = X_LIMIT
        else:
            need_x = 1
        if self._avail_x(vertex, at, duration) - tentative.x.get(uid, 0) < need_x:
            return False
        if (
            self.prune
            and at is not None
            and demand
            and vertex.prune_filters is not None
        ):
            filters = vertex.prune_filters
            tracked = _tracked_slice(
                filters,
                demand,
                tracked_cache if tracked_cache is not None else {},
            )
            if tracked:
                if not filters.avail_during(at, duration, tracked):
                    self._c_filter_hits.inc()
                    return False
                self._c_filter_misses.inc()
        return True

    def _book_passthrough(
        self,
        via: Tuple[ResourceVertex, ...],
        at: Optional[int],
        duration: int,
        tentative: _Tentative,
        out: List[Selection],
    ) -> None:
        """Record shared pass-through holds on interior vertices once each."""
        for vertex in via:
            if tentative.add_passthrough(vertex.uniq_id):
                tentative.add_x(vertex.uniq_id, 1)
                out.append(Selection(vertex, 0, False, passthrough=True))

    def _avail_qty(self, vertex: ResourceVertex, at: Optional[int], duration: int) -> int:
        if at is None:
            return vertex.size
        return vertex.plans.avail_resources_during(at, duration)

    def _avail_x(self, vertex: ResourceVertex, at: Optional[int], duration: int) -> int:
        if at is None:
            return X_LIMIT
        return vertex.xplans.avail_resources_during(at, duration)

    @staticmethod
    def _unit_demand(request: ResourceRequest) -> Dict[str, int]:
        """Per-instance subtree demand of ``request`` (excluding itself)."""
        demand: Dict[str, int] = {}

        def accumulate(req: ResourceRequest, multiplier: int) -> None:
            if not req.is_slot:
                demand[req.type] = demand.get(req.type, 0) + multiplier * req.count
            for child in req.with_:
                accumulate(child, multiplier * req.count)

        for child in request.with_:
            accumulate(child, 1)
        return demand

    # ------------------------------------------------------------------
    # booking and SDFU
    # ------------------------------------------------------------------
    def _book(
        self, selections: List[Selection], at: int, duration: int, reserved: bool
    ) -> Allocation:
        records: List[Tuple[object, int]] = []
        for sel in selections:
            vertex = sel.vertex
            if sel.amount:
                records.append(
                    (vertex.plans, vertex.plans.add_span(at, duration, sel.amount))
                )
            level = X_LIMIT if sel.exclusive else 1
            records.append(
                (vertex.xplans, vertex.xplans.add_span(at, duration, level))
            )
        self._sdfu(selections, at, duration, records)
        alloc = Allocation(
            alloc_id=self._next_alloc_id,
            at=at,
            duration=duration,
            reserved=reserved,
            selections=selections,
            _span_records=records,
        )
        self._next_alloc_id += 1
        self.allocations[alloc.alloc_id] = alloc
        if self.on_book is not None:
            self.on_book(alloc)
        return alloc

    def _sdfu(
        self,
        selections: List[Selection],
        at: int,
        duration: int,
        records: List[Tuple[object, int]],
    ) -> None:
        """Scheduler-Driven Filter Update (§3.4, Fig. 2).

        Book the selected amounts into the pruning filters of every ancestor
        along the selected paths, walking up only from what was chosen —
        never recomputing aggregates from the whole graph.  Exclusive
        selections additionally charge their full subtree totals (minus any
        explicitly selected descendants) so filters reflect that the subtree
        is closed to other jobs.  The charge computation itself lives in
        :func:`sdfu_charges` so the repair engine can re-derive it.
        """
        updates = sdfu_charges(self.graph, self.subsystem, selections)
        booked = 0
        for uid, counts in updates.items():
            counts = {t: n for t, n in counts.items() if n > 0}
            if not counts:
                continue
            filters = self.graph.vertex(uid).prune_filters
            records.append((filters, filters.add_span(at, duration, counts)))
            booked += 1
        if booked:
            self._c_sdfu_updates.inc(booked)

    def _exclusive_tops(self, selections: List[Selection]) -> List[Selection]:
        """Exclusive selections not nested under another exclusive selection."""
        return exclusive_top_selections(selections, self.subsystem)
