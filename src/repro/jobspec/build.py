"""Programmatic jobspec construction helpers.

Most callers want one of the canned shapes from the paper's figures:

* :func:`simple_node_jobspec` — Fig 4a style node-local requests;
* :func:`rack_spread_jobspec` — Fig 4b style rack-level constraints;
* :func:`pool_jobspec` — Fig 4c style aggregate pool requests;
* :func:`nodes_jobspec` — whole-node allocations for trace replay (§6.3).

For anything else, compose :class:`~repro.jobspec.model.ResourceRequest`
directly; it is a small frozen dataclass.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .model import Jobspec, ResourceRequest, SLOT

__all__ = [
    "simple_node_jobspec",
    "rack_spread_jobspec",
    "pool_jobspec",
    "nodes_jobspec",
    "from_counts",
    "slot",
]


def slot(count: int, *children: ResourceRequest, label: str = "default") -> ResourceRequest:
    """A slot vertex grouping ``children`` (everything below is exclusive)."""
    return ResourceRequest(type=SLOT, count=count, label=label, with_=tuple(children))


def simple_node_jobspec(
    cores: int,
    memory: int = 0,
    gpus: int = 0,
    ssds: int = 0,
    nodes: int = 1,
    duration: int = 3600,
    node_exclusive: bool = False,
) -> Jobspec:
    """Node-local request: ``nodes`` shared nodes, each holding one slot of
    ``cores`` cores (+ optional gpus / memory units / burst-buffer units).

    This is the §6.1 evaluation jobspec shape ("10 cores, 8GB memory, 1 burst
    buffer on a node").
    """
    inner = [ResourceRequest(type="core", count=cores)]
    if gpus:
        inner.append(ResourceRequest(type="gpu", count=gpus))
    if memory:
        inner.append(ResourceRequest(type="memory", count=memory, unit="GB"))
    if ssds:
        inner.append(ResourceRequest(type="ssd", count=ssds, unit="GB"))
    node = ResourceRequest(
        type="node",
        count=nodes,
        exclusive=True if node_exclusive else None,
        with_=(slot(1, *inner),),
    )
    return Jobspec(resources=(node,), duration=duration)


def rack_spread_jobspec(
    racks: int,
    slots_per_rack: int,
    nodes_per_slot: int,
    cores_per_node: int = 0,
    gpus_per_node: int = 0,
    duration: int = 3600,
) -> Jobspec:
    """Rack-level constraint (Fig 4b): slots spread across ``racks`` racks."""
    node_children = []
    if cores_per_node:
        node_children.append(ResourceRequest(type="core", count=cores_per_node))
    if gpus_per_node:
        node_children.append(ResourceRequest(type="gpu", count=gpus_per_node))
    node = ResourceRequest(
        type="node", count=nodes_per_slot, with_=tuple(node_children)
    )
    rack = ResourceRequest(
        type="rack", count=racks, with_=(slot(slots_per_rack, node),)
    )
    return Jobspec(resources=(rack,), duration=duration)


def pool_jobspec(
    pool_type: str,
    amount: int,
    within: Optional[str] = None,
    duration: int = 3600,
    unit: str = "",
) -> Jobspec:
    """Aggregate pool request (Fig 4c): ``amount`` units of ``pool_type``,
    optionally constrained inside one ``within`` vertex (e.g. ``pfs``)."""
    leaf = slot(1, ResourceRequest(type=pool_type, count=amount, unit=unit))
    if within is not None:
        top = ResourceRequest(type=within, count=1, with_=(leaf,))
    else:
        top = leaf
    return Jobspec(resources=(top,), duration=duration)


def nodes_jobspec(
    nnodes: int,
    duration: int = 3600,
    exclusive: bool = True,
) -> Jobspec:
    """Whole-node allocation of ``nnodes`` nodes (trace replay, §6.3)."""
    return Jobspec(
        resources=(
            ResourceRequest(
                type=SLOT,
                count=nnodes,
                label="default",
                with_=(ResourceRequest(type="node", count=1, exclusive=exclusive),),
            ),
        ),
        duration=duration,
    )


def from_counts(
    counts: Mapping[str, int], duration: int = 3600, exclusive: bool = True
) -> Jobspec:
    """Flat request of ``counts`` per type inside one slot (testing helper)."""
    children = tuple(
        ResourceRequest(type=rtype, count=count) for rtype, count in counts.items()
    )
    return Jobspec(resources=(slot(1, *children),), duration=duration)
