"""Canonical jobspec model — the abstract resource request graph (paper §4.2).

A jobspec's ``resources`` section is a small graph: each vertex names a
resource type and requested quantity, edges are ``contains`` relationships,
and the special ``slot`` vertex marks the resource shape that program
processes will be contained in — everything beneath a slot is exclusively
allocated (paper Fig. 4).

Quantity semantics follow the graph model's pool concept:

* requests for *unit* resources (vertices whose pools have size 1 — cores,
  gpus, nodes) select ``count`` distinct vertices;
* requests for *pool* resources (memory, bandwidth, storage) aggregate
  ``count`` units across pool vertices.

The distinction is resolved at match time from the candidate pool sizes, not
here, so the same jobspec works against graphs built at different levels of
detail (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..errors import JobspecError

__all__ = ["ResourceRequest", "Jobspec", "SLOT"]

#: The non-physical grouping vertex type.
SLOT = "slot"


@dataclass(frozen=True)
class ResourceRequest:
    """One vertex of the abstract resource request graph.

    ``exclusive`` tristate: True/False force the mode; None inherits — shared
    by default, exclusive anywhere beneath a slot.  ``count_max`` turns the
    count into a *moldable* range [count, count_max]: the matcher takes as
    much as is available, failing only below the minimum (§5.5).
    ``requires`` is a property-constraint expression evaluated against
    candidate vertices (same language as
    :func:`repro.resource.find_by_expression`), e.g.
    ``"perf_class<=2 and vendor=amd"``.
    """

    type: str
    count: int = 1
    exclusive: Optional[bool] = None
    label: Optional[str] = None
    unit: str = ""
    count_max: Optional[int] = None
    requires: Optional[str] = None
    with_: Tuple["ResourceRequest", ...] = ()

    def __post_init__(self) -> None:
        if self.count < 1:
            raise JobspecError(
                f"request count must be >= 1, got {self.count} for {self.type!r}"
            )
        if self.count_max is not None and self.count_max < self.count:
            raise JobspecError(
                f"count max {self.count_max} below min {self.count}"
                f" for {self.type!r}"
            )
        if self.type == SLOT and self.exclusive is False:
            raise JobspecError("slot subtrees are exclusive by definition")
        if self.type == SLOT and self.is_moldable:
            raise JobspecError(
                "moldable counts go on resources inside the slot, not on it"
            )
        if self.requires is not None:
            # Validate the constraint expression eagerly so malformed
            # jobspecs fail at construction, not at match time.
            from ..resource.expr import ExpressionError, compile_expression

            try:
                compile_expression(self.requires)
            except ExpressionError as exc:
                raise JobspecError(
                    f"{self.type}: invalid requires expression: {exc}"
                ) from exc

    @property
    def is_slot(self) -> bool:
        return self.type == SLOT

    @property
    def is_moldable(self) -> bool:
        """True when the request accepts a count range (moldability, §5.5)."""
        return self.count_max is not None and self.count_max > self.count

    @property
    def max_count(self) -> int:
        """Upper bound the matcher may satisfy (equals count when fixed)."""
        return self.count if self.count_max is None else self.count_max

    def walk(self) -> Iterator["ResourceRequest"]:
        """Pre-order traversal of this request subtree."""
        yield self
        for child in self.with_:
            yield from child.walk()

    def effective_exclusive(self, inherited: bool = False) -> bool:
        """Exclusivity of this vertex given the context above it."""
        if self.exclusive is not None:
            return self.exclusive
        return inherited or self.is_slot

    def to_dict(self) -> dict:
        """Serialise back to the canonical YAML-ready form."""
        out: dict = {"type": self.type, "count": self.count}
        if self.count_max is not None:
            out["count"] = {"min": self.count, "max": self.count_max}
        if self.requires is not None:
            out["requires"] = self.requires
        if self.exclusive is not None:
            out["exclusive"] = self.exclusive
        if self.label is not None:
            out["label"] = self.label
        if self.unit:
            out["unit"] = self.unit
        if self.with_:
            out["with"] = [child.to_dict() for child in self.with_]
        return out


@dataclass(frozen=True)
class Jobspec:
    """A canonical job specification.

    Attributes
    ----------
    resources:
        Top-level request vertices (usually one).
    duration:
        Requested walltime in ticks (``attributes.system.duration``).
    attributes:
        Remaining system/user attributes, verbatim.
    version:
        Jobspec language version (always 1 here).
    """

    resources: Tuple[ResourceRequest, ...]
    duration: int = 3600
    attributes: Dict = field(default_factory=dict)
    version: int = 1

    def __post_init__(self) -> None:
        if not self.resources:
            raise JobspecError("jobspec must request at least one resource")
        if self.duration < 1:
            raise JobspecError(f"duration must be >= 1, got {self.duration}")
        for root in self.resources:
            self._validate_slots(root, seen_slot=False)

    @staticmethod
    def _validate_slots(request: ResourceRequest, seen_slot: bool) -> None:
        if request.is_slot:
            if seen_slot:
                raise JobspecError("nested slot vertices are not allowed")
            if not request.with_:
                raise JobspecError("slot must contain at least one resource")
            seen_slot = True
        for child in request.with_:
            Jobspec._validate_slots(child, seen_slot)

    def walk(self) -> Iterator[ResourceRequest]:
        """Pre-order traversal over every request vertex."""
        for root in self.resources:
            yield from root.walk()

    def totals(self) -> Dict[str, int]:
        """Aggregate requested quantity per resource type.

        Counts multiply down the tree (``rack:2 with node:3`` totals 6
        nodes); slots multiply their children but contribute nothing
        themselves.  These totals are the *explicit lower bound* the root
        pruning filter checks before attempting a full match (§3.4).
        """
        totals: Dict[str, int] = {}

        def accumulate(request: ResourceRequest, multiplier: int) -> None:
            if not request.is_slot:
                totals[request.type] = (
                    totals.get(request.type, 0) + multiplier * request.count
                )
            for child in request.with_:
                accumulate(child, multiplier * request.count)

        for root in self.resources:
            accumulate(root, 1)
        return totals

    def to_dict(self) -> dict:
        """Serialise to the canonical YAML-ready dict form."""
        attributes = dict(self.attributes)
        system = dict(attributes.get("system", {}))
        system["duration"] = self.duration
        attributes["system"] = system
        return {
            "version": self.version,
            "resources": [r.to_dict() for r in self.resources],
            "attributes": attributes,
        }

    def summary(self) -> str:
        """One-line human description, e.g. ``node:2[slot:1[core:4]] @3600``."""

        def fmt(request: ResourceRequest) -> str:
            inner = ",".join(fmt(c) for c in request.with_)
            excl = "!" if request.effective_exclusive() else ""
            return f"{request.type}{excl}:{request.count}" + (
                f"[{inner}]" if inner else ""
            )

        body = ",".join(fmt(r) for r in self.resources)
        return f"{body} @{self.duration}"
