"""Canonical jobspec YAML reader (paper §4.2).

Accepts the Flux canonical jobspec V1 layout::

    version: 1
    resources:
      - type: node
        count: 1
        with:
          - type: slot
            count: 1
            label: default
            with:
              - type: core
                count: 5
    attributes:
      system:
        duration: 3600
    tasks: []

``count`` may be an integer or the canonical ``{min, max, operator, operand}``
mapping, of which the ``min`` is honoured (the paper's workloads use fixed
counts).
"""

from __future__ import annotations

from typing import Any, Mapping, Union

import yaml

from ..errors import JobspecError
from .model import Jobspec, ResourceRequest

__all__ = ["parse_jobspec", "parse_request", "load_jobspec_file"]


def _parse_count(raw: Any, context: str):
    """Return (min, max_or_None) from an int or {min,max,...} mapping."""
    if isinstance(raw, bool):
        raise JobspecError(f"{context}: count must be an integer, got bool")
    if isinstance(raw, int):
        return raw, None
    if isinstance(raw, Mapping):
        if "min" not in raw:
            raise JobspecError(f"{context}: count mapping requires 'min'")
        lo, _ = _parse_count(raw["min"], context)
        hi = raw.get("max")
        if hi is not None:
            hi, _ = _parse_count(hi, context)
        # operator/operand describe how to iterate min..max; any reachable
        # value is acceptable to the matcher, so the range suffices here.
        return lo, hi
    raise JobspecError(f"{context}: count must be an int or mapping, got {raw!r}")


def parse_request(raw: Mapping[str, Any]) -> ResourceRequest:
    """Parse one resource-request vertex (recursively)."""
    if not isinstance(raw, Mapping):
        raise JobspecError(f"resource entry must be a mapping, got {raw!r}")
    if "type" not in raw:
        raise JobspecError(f"resource entry missing 'type': {raw!r}")
    rtype = str(raw["type"])
    known = {"type", "count", "exclusive", "label", "unit", "with", "requires"}
    unknown = set(raw) - known
    if unknown:
        raise JobspecError(f"{rtype}: unknown resource keys {sorted(unknown)}")
    count, count_max = _parse_count(raw.get("count", 1), rtype)
    exclusive = raw.get("exclusive")
    if exclusive is not None and not isinstance(exclusive, bool):
        raise JobspecError(f"{rtype}: exclusive must be a boolean")
    children_raw = raw.get("with", [])
    if not isinstance(children_raw, list):
        raise JobspecError(f"{rtype}: 'with' must be a list")
    children = tuple(parse_request(child) for child in children_raw)
    label = raw.get("label")
    requires = raw.get("requires")
    if requires is not None and not isinstance(requires, str):
        raise JobspecError(f"{rtype}: requires must be an expression string")
    return ResourceRequest(
        type=rtype,
        count=count,
        count_max=count_max,
        requires=requires,
        exclusive=exclusive,
        label=None if label is None else str(label),
        unit=str(raw.get("unit", "")),
        with_=children,
    )


def parse_jobspec(source: Union[str, Mapping[str, Any]]) -> Jobspec:
    """Parse a jobspec from YAML text or an already-loaded mapping."""
    if isinstance(source, str):
        try:
            data = yaml.safe_load(source)
        except yaml.YAMLError as exc:
            raise JobspecError(f"invalid YAML: {exc}") from exc
    else:
        data = source
    if not isinstance(data, Mapping):
        raise JobspecError(f"jobspec must be a mapping, got {type(data).__name__}")
    version = data.get("version", 1)
    if version != 1:
        raise JobspecError(f"unsupported jobspec version: {version!r}")
    resources_raw = data.get("resources")
    if not isinstance(resources_raw, list) or not resources_raw:
        raise JobspecError("jobspec requires a non-empty 'resources' list")
    resources = tuple(parse_request(entry) for entry in resources_raw)
    attributes = dict(data.get("attributes") or {})
    system = attributes.get("system") or {}
    duration = system.get("duration", 3600)
    if not isinstance(duration, int) or isinstance(duration, bool):
        raise JobspecError(f"duration must be an integer, got {duration!r}")
    return Jobspec(
        resources=resources,
        duration=duration,
        attributes=attributes,
        version=version,
    )


def load_jobspec_file(path: str) -> Jobspec:
    """Read and parse a jobspec YAML file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jobspec(handle.read())
