"""Canonical jobspec: the abstract resource request graph (paper §4.2)."""

from .build import (
    from_counts,
    nodes_jobspec,
    pool_jobspec,
    rack_spread_jobspec,
    simple_node_jobspec,
    slot,
)
from .model import SLOT, Jobspec, ResourceRequest
from .parse import load_jobspec_file, parse_jobspec, parse_request

__all__ = [
    "SLOT",
    "Jobspec",
    "ResourceRequest",
    "from_counts",
    "load_jobspec_file",
    "nodes_jobspec",
    "parse_jobspec",
    "parse_request",
    "pool_jobspec",
    "rack_spread_jobspec",
    "simple_node_jobspec",
    "slot",
]
