"""Resource-graph edges (paper §3.1).

An edge is a *directed relationship* between two resource pools.  It carries
a relationship ``type`` (``contains``, ``in``, ``conduit-of``, ...) and a
``subsystem`` name (``containment``, ``power``, ``network``, ...).  The union
of all edges sharing a subsystem name, plus the vertices they connect, forms
that resource subsystem; the traverser and LOD filtering operate on one
subsystem at a time (graph filtering, §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["ResourceEdge", "CONTAINMENT", "CONTAINS", "IN"]

#: The default subsystem every graph starts with.
CONTAINMENT = "containment"
#: Downward relationship in the containment subsystem.
CONTAINS = "contains"
#: Upward relationship in the containment subsystem.
IN = "in"


@dataclass(frozen=True)
class ResourceEdge:
    """A directed, typed edge within one subsystem.

    ``src`` and ``dst`` are vertex uniq_ids.  Edges are immutable; elasticity
    removes and re-adds them.
    """

    src: int
    dst: int
    subsystem: str = CONTAINMENT
    type: str = CONTAINS
    properties: Dict[str, Any] = field(default_factory=dict, compare=False)

    def reversed(self, edge_type: str = IN) -> "ResourceEdge":
        """Return the matching upward edge (dst -> src) of ``edge_type``."""
        return ResourceEdge(self.dst, self.src, self.subsystem, edge_type)
