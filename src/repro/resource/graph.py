"""The in-memory resource graph store (paper §3.1-§3.3).

Vertices are resource pools, edges are typed relationships grouped into named
*subsystems* (``containment`` by default; ``power``, ``network``, ... for
multi-subsystem models).  The store supports:

* multi-subsystem adjacency with per-subsystem roots, children/parents and
  DFS, enabling *graph filtering* — exposing only the subsystem of interest
  to a traverser (§3.3);
* dynamic vertex/edge addition and removal for elasticity (§5.5);
* pruning-filter installation: PlannerMulti summaries of subtree resource
  totals placed on configurable high-level vertex types (§3.4);
* conversion to :mod:`networkx` for analysis and visualisation.

The store intentionally does not know anything about scheduling policy —
that lives in :mod:`repro.match` (separation of concerns, §3.5).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Set, Tuple

from ..errors import ResourceGraphError, SubsystemError
from ..planner import PlannerMulti
from .edge import CONTAINMENT, CONTAINS, ResourceEdge
from .types import DEFAULT_REGISTRY, ResourceTypeRegistry
from .vertex import ResourceVertex

__all__ = ["ResourceGraph", "SubsystemView"]


class ResourceGraph:
    """Directed multi-subsystem graph of resource pools.

    Parameters
    ----------
    plan_start, plan_end:
        Planning horizon shared by every vertex Planner and pruning filter.
    registry:
        Resource-type metadata used to default pool units.
    """

    __slots__ = (
        "plan_start",
        "plan_end",
        "registry",
        "_vertices",
        "_next_id",
        "_id_counters",
        "_out",
        "_in",
        "_edge_count",
        "_roots_cache",
        "_children_cache",
        "prune_types",
    )

    def __init__(
        self,
        plan_start: int = 0,
        plan_end: int = 2**62,
        registry: ResourceTypeRegistry = DEFAULT_REGISTRY,
    ) -> None:
        self.plan_start = plan_start
        self.plan_end = plan_end
        self.registry = registry
        self._vertices: Dict[int, ResourceVertex] = {}
        self._next_id = 0
        self._id_counters: Dict[str, int] = defaultdict(int)
        # subsystem -> src uniq_id -> [edge]
        self._out: Dict[str, Dict[int, List[ResourceEdge]]] = {}
        self._in: Dict[str, Dict[int, List[ResourceEdge]]] = {}
        self._edge_count = 0
        # roots()/children() memos per subsystem; invalidated on any
        # structural change.
        self._roots_cache: Dict[str, List[int]] = {}
        self._children_cache: Dict[Tuple[str, int], Tuple[ResourceVertex, ...]] = {}
        #: types that pruning filters track (set by install_pruning_filters)
        self.prune_types: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        type: str,
        basename: Optional[str] = None,
        id: Optional[int] = None,
        size: int = 1,
        unit: Optional[str] = None,
        rank: int = -1,
        properties: Optional[Dict[str, Any]] = None,
    ) -> ResourceVertex:
        """Create a resource-pool vertex and return it.

        ``basename`` defaults to the type name; ``id`` defaults to a running
        counter per basename; ``unit`` defaults from the type registry.
        """
        if size < 0:
            raise ResourceGraphError(f"pool size must be >= 0, got {size}")
        basename = basename if basename is not None else type
        if id is None:
            id = self._id_counters[basename]
        self._id_counters[basename] = max(self._id_counters[basename], id + 1)
        if unit is None:
            unit = self.registry.unit(type)
        vertex = ResourceVertex(
            uniq_id=self._next_id,
            type=type,
            basename=basename,
            id=id,
            size=size,
            unit=unit,
            rank=rank,
            properties=properties,
            plan_start=self.plan_start,
            plan_end=self.plan_end,
        )
        self._vertices[self._next_id] = vertex
        self._next_id += 1
        return vertex

    def add_edge(
        self,
        src: ResourceVertex,
        dst: ResourceVertex,
        subsystem: str = CONTAINMENT,
        edge_type: str = CONTAINS,
        properties: Optional[Dict[str, Any]] = None,
    ) -> ResourceEdge:
        """Add a directed ``src -> dst`` edge within ``subsystem``.

        The first in-edge a vertex receives in a subsystem fixes its canonical
        path there (additional parents — e.g. a rabbit reachable from both its
        rack and the cluster, §5.1 — keep the original path).
        """
        self._require(src)
        self._require(dst)
        if src.uniq_id == dst.uniq_id:
            raise ResourceGraphError(f"self edge on vertex {src.name}")
        out = self._out.setdefault(subsystem, defaultdict(list))
        inn = self._in.setdefault(subsystem, defaultdict(list))
        for existing in out[src.uniq_id]:
            if existing.dst == dst.uniq_id:
                raise ResourceGraphError(
                    f"duplicate {subsystem} edge {src.name} -> {dst.name}"
                )
        edge = ResourceEdge(
            src.uniq_id, dst.uniq_id, subsystem, edge_type, properties or {}
        )
        out[src.uniq_id].append(edge)
        inn[dst.uniq_id].append(edge)
        self._edge_count += 1
        self._roots_cache.pop(subsystem, None)
        self._children_cache.pop((subsystem, src.uniq_id), None)
        if subsystem not in src.paths and not inn[src.uniq_id]:
            src.paths[subsystem] = f"/{src.name}"
        if subsystem not in dst.paths:
            parent_path = src.paths.get(subsystem, f"/{src.name}")
            dst.paths[subsystem] = f"{parent_path}/{dst.name}"
        return edge

    def remove_edge(
        self, src: ResourceVertex, dst: ResourceVertex, subsystem: str = CONTAINMENT
    ) -> None:
        """Remove the ``src -> dst`` edge within ``subsystem``."""
        out = self._out.get(subsystem, {})
        inn = self._in.get(subsystem, {})
        before = len(out.get(src.uniq_id, ()))
        out[src.uniq_id] = [e for e in out.get(src.uniq_id, []) if e.dst != dst.uniq_id]
        if len(out[src.uniq_id]) == before:
            raise ResourceGraphError(
                f"no {subsystem} edge {src.name} -> {dst.name}"
            )
        inn[dst.uniq_id] = [e for e in inn.get(dst.uniq_id, []) if e.src != src.uniq_id]
        self._edge_count -= 1
        self._roots_cache.pop(subsystem, None)
        self._children_cache.pop((subsystem, src.uniq_id), None)

    def remove_vertex(self, vertex: ResourceVertex, force: bool = False) -> None:
        """Detach and delete ``vertex`` (elasticity, §5.5).

        Refuses to remove a vertex with active allocations unless ``force``.
        Subtree vertices are *not* removed implicitly; use
        :func:`repro.sched.elastic.shrink` for whole-subtree operations.
        """
        self._require(vertex)
        if not force and vertex.plans.span_count:
            raise ResourceGraphError(
                f"vertex {vertex.name} has {vertex.plans.span_count} active "
                "allocations; pass force=True to remove anyway"
            )
        for subsystem in list(self._out):
            for edge in list(self._out[subsystem].get(vertex.uniq_id, [])):
                self.remove_edge(vertex, self._vertices[edge.dst], subsystem)
            for edge in list(self._in[subsystem].get(vertex.uniq_id, [])):
                self.remove_edge(self._vertices[edge.src], vertex, subsystem)
            self._out[subsystem].pop(vertex.uniq_id, None)
            self._in[subsystem].pop(vertex.uniq_id, None)
            self._children_cache.pop((subsystem, vertex.uniq_id), None)
        del self._vertices[vertex.uniq_id]

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._vertices)

    @property
    def vertex_count(self) -> int:
        return len(self._vertices)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    @property
    def subsystems(self) -> Tuple[str, ...]:
        """Subsystem names present in the graph."""
        return tuple(self._out)

    def vertex(self, uniq_id: int) -> ResourceVertex:
        """Return the vertex with ``uniq_id``; KeyError-ish on absence."""
        try:
            return self._vertices[uniq_id]
        except KeyError:
            raise ResourceGraphError(f"unknown vertex id {uniq_id}") from None

    def vertex_by_name(self, name: str) -> ResourceVertex:
        """Return the vertex named ``name`` (``basename + id``).

        Names are unique within a graph (JGF round-trips rely on it); the
        recovery and integrity layers address vertices by name because
        ``uniq_id`` is not stable across restores.
        """
        for v in self._vertices.values():
            if v.name == name:
                return v
        raise ResourceGraphError(f"unknown vertex name {name!r}")

    def vertices(self, type: Optional[str] = None) -> Iterator[ResourceVertex]:
        """Iterate vertices (optionally restricted to one type)."""
        if type is None:
            yield from self._vertices.values()
        else:
            for v in self._vertices.values():
                if v.type == type:
                    yield v

    def find(
        self,
        type: Optional[str] = None,
        basename: Optional[str] = None,
        predicate: Optional[Callable[[ResourceVertex], bool]] = None,
    ) -> List[ResourceVertex]:
        """Return vertices matching all given criteria."""
        out = []
        for v in self._vertices.values():
            if type is not None and v.type != type:
                continue
            if basename is not None and v.basename != basename:
                continue
            if predicate is not None and not predicate(v):
                continue
            out.append(v)
        return out

    def by_path(self, path: str, subsystem: str = CONTAINMENT) -> ResourceVertex:
        """Return the vertex whose canonical ``subsystem`` path is ``path``."""
        for v in self._vertices.values():
            if v.paths.get(subsystem) == path:
                return v
        raise ResourceGraphError(f"no vertex at {subsystem} path {path!r}")

    def children(
        self, vertex: ResourceVertex, subsystem: str = CONTAINMENT
    ) -> List[ResourceVertex]:
        """Out-neighbors of ``vertex`` within ``subsystem``, insertion-ordered."""
        return list(self.children_tuple(vertex, subsystem))

    def children_tuple(
        self, vertex: ResourceVertex, subsystem: str = CONTAINMENT
    ) -> Tuple[ResourceVertex, ...]:
        """Memoised immutable form of :meth:`children` (the traverser's DFS
        calls this per visit; adjacency only changes on structural edits)."""
        key = (subsystem, vertex.uniq_id)
        cached = self._children_cache.get(key)
        if cached is not None:
            return cached
        out = self._out.get(subsystem)
        if out is None:
            raise SubsystemError(f"unknown subsystem: {subsystem!r}")
        result = tuple(self._vertices[e.dst] for e in out.get(vertex.uniq_id, []))
        self._children_cache[key] = result
        return result

    def parents(
        self, vertex: ResourceVertex, subsystem: str = CONTAINMENT
    ) -> List[ResourceVertex]:
        """In-neighbors of ``vertex`` within ``subsystem``."""
        inn = self._in.get(subsystem)
        if inn is None:
            raise SubsystemError(f"unknown subsystem: {subsystem!r}")
        return [self._vertices[e.src] for e in inn.get(vertex.uniq_id, [])]

    def out_edges(
        self, vertex: ResourceVertex, subsystem: str = CONTAINMENT
    ) -> List[ResourceEdge]:
        return list(self._out.get(subsystem, {}).get(vertex.uniq_id, []))

    def edges(self, subsystem: Optional[str] = None) -> Iterator[ResourceEdge]:
        """Iterate edges, optionally restricted to one subsystem."""
        names = [subsystem] if subsystem is not None else list(self._out)
        for name in names:
            adjacency = self._out.get(name)
            if adjacency is None:
                raise SubsystemError(f"unknown subsystem: {subsystem!r}")
            for edge_list in adjacency.values():
                yield from edge_list

    def roots(self, subsystem: str = CONTAINMENT) -> List[ResourceVertex]:
        """Vertices participating in ``subsystem`` with no in-edges there.

        Memoised per subsystem (matching calls this on every walk); any
        structural change invalidates the memo.
        """
        cached = self._roots_cache.get(subsystem)
        if cached is not None:
            return [self._vertices[uid] for uid in cached]
        out = self._out.get(subsystem)
        inn = self._in.get(subsystem)
        if out is None or inn is None:
            raise SubsystemError(f"unknown subsystem: {subsystem!r}")
        members: Set[int] = set()
        for src, edge_list in out.items():
            if edge_list:
                members.add(src)
                members.update(e.dst for e in edge_list)
        root_ids = [uid for uid in sorted(members) if not inn.get(uid)]
        self._roots_cache[subsystem] = root_ids
        return [self._vertices[uid] for uid in root_ids]

    @property
    def root(self) -> ResourceVertex:
        """The single containment root (error if zero or several)."""
        roots = self.roots(CONTAINMENT)
        if len(roots) != 1:
            raise ResourceGraphError(
                f"expected one containment root, found {len(roots)}"
            )
        return roots[0]

    def descendants(
        self,
        vertex: ResourceVertex,
        subsystem: str = CONTAINMENT,
        include_self: bool = False,
    ) -> Iterator[ResourceVertex]:
        """DFS over the subtree below ``vertex`` (cycle/diamond safe)."""
        seen: Set[int] = set()
        stack = [vertex] if include_self else self.children(vertex, subsystem)[::-1]
        while stack:
            v = stack.pop()
            if v.uniq_id in seen:
                continue
            seen.add(v.uniq_id)
            yield v
            stack.extend(self.children(v, subsystem)[::-1])

    def subtree_totals(
        self, vertex: ResourceVertex, subsystem: str = CONTAINMENT
    ) -> Dict[str, int]:
        """Total pool size per resource type in ``vertex``'s subtree
        (including the vertex itself)."""
        totals: Dict[str, int] = defaultdict(int)
        totals[vertex.type] += vertex.size
        for v in self.descendants(vertex, subsystem):
            totals[v.type] += v.size
        return dict(totals)

    def total_by_type(self) -> Dict[str, int]:
        """Total pool size per resource type across the whole store."""
        totals: Dict[str, int] = defaultdict(int)
        for v in self._vertices.values():
            totals[v.type] += v.size
        return dict(totals)

    # ------------------------------------------------------------------
    # administrative status (drain/resume)
    # ------------------------------------------------------------------
    def mark_down(self, vertex: ResourceVertex) -> None:
        """Drain ``vertex``: it and its subtree stop matching immediately.

        Existing allocations are untouched (the admin decides whether to
        cancel them); new matches skip the vertex.  Unlike a scheduled
        outage (:class:`~repro.sched.capacity.CapacitySchedule`) this is an
        instantaneous, open-ended state change.
        """
        self._require(vertex)
        vertex.status = "down"

    def mark_up(self, vertex: ResourceVertex) -> None:
        """Return a drained vertex to service."""
        self._require(vertex)
        vertex.status = "up"

    # ------------------------------------------------------------------
    # pruning filters (§3.4)
    # ------------------------------------------------------------------
    def install_pruning_filters(
        self,
        filter_types: List[str],
        at_types: Optional[List[str]] = None,
        subsystem: str = CONTAINMENT,
    ) -> int:
        """Install PlannerMulti pruning filters and return how many were placed.

        ``filter_types`` are the lower-level resource types each filter tracks
        in aggregate (e.g. ``["core"]``).  Filters are placed on vertices whose
        type is in ``at_types`` *and always on the containment roots* (the
        root filter also drives reservation scheduling).  Existing filters are
        replaced; installing filters while allocations are active is an error
        because the aggregates would be stale.
        """
        targets: List[ResourceVertex] = list(self.roots(subsystem))
        if at_types:
            at = set(at_types)
            root_ids = {v.uniq_id for v in targets}
            targets.extend(
                v for v in self._vertices.values()
                if v.type in at and v.uniq_id not in root_ids
            )
        installed = 0
        for vertex in targets:
            if vertex.plans.span_count:
                raise ResourceGraphError(
                    "cannot (re)install pruning filters while allocations exist"
                )
            totals = self.subtree_totals(vertex, subsystem)
            tracked = {t: totals[t] for t in filter_types if totals.get(t)}
            if not tracked:
                vertex.prune_filters = None
                continue
            vertex.prune_filters = PlannerMulti(
                tracked, self.plan_start, self.plan_end
            )
            installed += 1
        self.prune_types = tuple(filter_types)
        return installed

    def ancestors(
        self, vertex: ResourceVertex, subsystem: str = CONTAINMENT
    ) -> Iterator[ResourceVertex]:
        """All (transitive) parents of ``vertex``, deduplicated, bottom-up-ish."""
        seen: Set[int] = set()
        stack = self.parents(vertex, subsystem)
        while stack:
            v = stack.pop()
            if v.uniq_id in seen:
                continue
            seen.add(v.uniq_id)
            yield v
            stack.extend(self.parents(v, subsystem))

    # ------------------------------------------------------------------
    # views and export
    # ------------------------------------------------------------------
    def subsystem_view(self, subsystem: str) -> "SubsystemView":
        """Graph filtering (§3.3): a view exposing only one subsystem."""
        if subsystem not in self._out:
            raise SubsystemError(f"unknown subsystem: {subsystem!r}")
        return SubsystemView(self, subsystem)

    def to_networkx(self, subsystem: Optional[str] = None) -> Any:
        """Export to a networkx.DiGraph (vertex attrs: type, name, size, ...)."""
        import networkx as nx

        g = nx.DiGraph()
        member_ids: Optional[Set[int]] = None
        if subsystem is not None:
            member_ids = set()
            for edge in self.edges(subsystem):
                member_ids.add(edge.src)
                member_ids.add(edge.dst)
        for v in self._vertices.values():
            if member_ids is not None and v.uniq_id not in member_ids:
                continue
            g.add_node(
                v.uniq_id,
                type=v.type,
                name=v.name,
                size=v.size,
                unit=v.unit,
                properties=dict(v.properties),
                paths=dict(v.paths),
            )
        for edge in self.edges(subsystem):
            g.add_edge(edge.src, edge.dst, subsystem=edge.subsystem, type=edge.type)
        return g

    def _require(self, vertex: ResourceVertex) -> None:
        if self._vertices.get(vertex.uniq_id) is not vertex:
            raise ResourceGraphError(f"vertex {vertex!r} not in this graph")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResourceGraph({len(self._vertices)} vertices, "
            f"{self._edge_count} edges, subsystems={list(self._out)})"
        )


class SubsystemView:
    """A read-only, single-subsystem view of a :class:`ResourceGraph`.

    Implements the paper's *graph filtering*: schedulers that only care about
    one subsystem (e.g. ``containment``) see just that slice.
    """

    __slots__ = ("_graph", "subsystem")

    def __init__(self, graph: ResourceGraph, subsystem: str) -> None:
        self._graph = graph
        self.subsystem = subsystem

    def vertices(self) -> Iterator[ResourceVertex]:
        member_ids: Set[int] = set()
        for edge in self._graph.edges(self.subsystem):
            member_ids.add(edge.src)
            member_ids.add(edge.dst)
        for uid in sorted(member_ids):
            yield self._graph.vertex(uid)

    def edges(self) -> Iterator[ResourceEdge]:
        return self._graph.edges(self.subsystem)

    def children(self, vertex: ResourceVertex) -> List[ResourceVertex]:
        return self._graph.children(vertex, self.subsystem)

    def parents(self, vertex: ResourceVertex) -> List[ResourceVertex]:
        return self._graph.parents(vertex, self.subsystem)

    def roots(self) -> List[ResourceVertex]:
        return self._graph.roots(self.subsystem)

    def __len__(self) -> int:
        return sum(1 for _ in self.vertices())
