"""JGF (JSON Graph Format) serialization of resource graphs.

Fluxion exchanges resource graphs as JGF documents (``flux ion-R encode``,
``resource-query --load-format=jgf``); this module provides the equivalent:

* :func:`to_jgf` — serialise a :class:`~repro.resource.graph.ResourceGraph`
  into a JGF mapping (vertex metadata: type, basename, id, size, unit, rank,
  paths, properties; edge metadata: subsystem and relationship name);
* :func:`from_jgf` — rebuild a graph from a JGF mapping or JSON text.

Round-tripping preserves the full structure: types, pool sizes, per-subsystem
paths, properties and edge relationships.  Planner state (allocations) is
deliberately *not* serialised — JGF describes resources, not bookings, same
as Fluxion's.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Union

from ..errors import ResourceGraphError
from .graph import ResourceGraph

__all__ = ["to_jgf", "from_jgf", "save_jgf", "load_jgf"]


def to_jgf(graph: ResourceGraph) -> Dict[str, Any]:
    """Serialise ``graph`` into a JGF mapping."""
    nodes = []
    for vertex in graph.vertices():
        nodes.append(
            {
                "id": str(vertex.uniq_id),
                "metadata": {
                    "type": vertex.type,
                    "basename": vertex.basename,
                    "name": vertex.name,
                    "id": vertex.id,
                    "uniq_id": vertex.uniq_id,
                    "rank": vertex.rank,
                    "size": vertex.size,
                    "unit": vertex.unit,
                    "status": vertex.status,
                    "paths": dict(vertex.paths),
                    "properties": dict(vertex.properties),
                },
            }
        )
    edges = []
    for edge in graph.edges():
        metadata: Dict[str, Any] = {
            "subsystem": edge.subsystem,
            "name": {edge.subsystem: edge.type},
        }
        if edge.properties:
            metadata["properties"] = dict(edge.properties)
        edges.append(
            {
                "source": str(edge.src),
                "target": str(edge.dst),
                "metadata": metadata,
            }
        )
    # Record where pruning filters actually sit so a reload re-installs them
    # at the same levels (rabbit systems filter at rack/rabbit, LOD presets
    # at rack/node, ...).  Roots always get filters, so only non-root
    # placements need recording.
    root_ids = set()
    for subsystem in graph.subsystems:
        root_ids.update(v.uniq_id for v in graph.roots(subsystem))
    prune_at = sorted(
        {
            v.type
            for v in graph.vertices()
            if v.prune_filters is not None and v.uniq_id not in root_ids
        }
    )
    return {
        "graph": {
            "directed": True,
            "nodes": nodes,
            "edges": edges,
            "metadata": {
                "plan_start": graph.plan_start,
                "plan_end": graph.plan_end,
                "prune_types": list(graph.prune_types),
                "prune_at": prune_at,
            },
        }
    }


def from_jgf(source: Union[str, Mapping[str, Any]]) -> ResourceGraph:
    """Rebuild a :class:`ResourceGraph` from a JGF mapping or JSON text.

    Vertex ``uniq_id`` values are reassigned (they are graph-internal);
    logical ids, names, paths, edge properties and structure are preserved
    exactly.  If the document records ``prune_types``, matching pruning
    filters are reinstalled at the recorded ``prune_at`` levels (falling
    back to rack/node for documents written before ``prune_at`` existed).
    """
    if isinstance(source, str):
        try:
            data = json.loads(source)
        except json.JSONDecodeError as exc:
            raise ResourceGraphError(f"invalid JGF JSON: {exc}") from exc
    else:
        data = source
    if not isinstance(data, Mapping) or "graph" not in data:
        raise ResourceGraphError("JGF document requires a top-level 'graph'")
    body = data["graph"]
    if not isinstance(body, Mapping):
        raise ResourceGraphError("'graph' must be a mapping")
    doc_meta = body.get("metadata") or {}
    graph = ResourceGraph(
        plan_start=doc_meta.get("plan_start", 0),
        plan_end=doc_meta.get("plan_end", 2**62),
    )
    nodes = body.get("nodes")
    if not isinstance(nodes, list) or not nodes:
        raise ResourceGraphError("JGF graph requires a non-empty 'nodes' list")
    by_id = {}
    for entry in nodes:
        if not isinstance(entry, Mapping) or "id" not in entry:
            raise ResourceGraphError(f"malformed JGF node: {entry!r}")
        meta = entry.get("metadata") or {}
        if "type" not in meta:
            raise ResourceGraphError(
                f"JGF node {entry['id']!r} missing metadata.type"
            )
        vertex = graph.add_vertex(
            type=meta["type"],
            basename=meta.get("basename"),
            id=meta.get("id"),
            size=meta.get("size", 1),
            unit=meta.get("unit"),
            rank=meta.get("rank", -1),
            properties=meta.get("properties"),
        )
        vertex.status = meta.get("status", "up")
        key = str(entry["id"])
        if key in by_id:
            raise ResourceGraphError(f"duplicate JGF node id {key!r}")
        by_id[key] = vertex
        # Preserve recorded paths verbatim (add_edge would re-derive them,
        # but explicit paths survive even partial/multi-parent structures).
        paths = meta.get("paths") or {}
        vertex.paths.update({str(k): str(v) for k, v in paths.items()})
    for entry in body.get("edges", []):
        if not isinstance(entry, Mapping):
            raise ResourceGraphError(f"malformed JGF edge: {entry!r}")
        try:
            src = by_id[str(entry["source"])]
            dst = by_id[str(entry["target"])]
        except KeyError as exc:
            raise ResourceGraphError(
                f"JGF edge references unknown node {exc}"
            ) from None
        meta = entry.get("metadata") or {}
        subsystem = meta.get("subsystem", "containment")
        names = meta.get("name") or {}
        edge_type = names.get(subsystem, "contains")
        properties = meta.get("properties") or None
        graph.add_edge(
            src,
            dst,
            subsystem=subsystem,
            edge_type=edge_type,
            properties=dict(properties) if properties else None,
        )
    prune_types = doc_meta.get("prune_types") or []
    if prune_types:
        at_types = doc_meta.get("prune_at")
        if at_types is None:  # pre-``prune_at`` documents
            at_types = ["rack", "node"]
        graph.install_pruning_filters(
            list(prune_types), at_types=list(at_types)
        )
    return graph


def save_jgf(graph: ResourceGraph, path: str, indent: int = 2) -> None:
    """Write ``graph`` to ``path`` as JGF JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_jgf(graph), handle, indent=indent, sort_keys=True)


def load_jgf(path: str) -> ResourceGraph:
    """Read a JGF JSON file into a :class:`ResourceGraph`."""
    with open(path, "r", encoding="utf-8") as handle:
        return from_jgf(handle.read())
