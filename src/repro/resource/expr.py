"""Expression-based vertex search (Fluxion's ``find`` criteria language).

Fluxion's ``find`` verb filters resource vertices with boolean expressions
(``status=up and type=node``).  This module provides the equivalent over our
vertex attributes and free-form properties::

    find_by_expression(graph, "type=node and perf_class>=3")
    find_by_expression(graph, "(type=core or type=gpu) and not size>1")
    find_by_expression(graph, "name='node7' or basename=rabbit")

Grammar (recursive descent)::

    expr    := or
    or      := and ('or' and)*
    and     := unary ('and' unary)*
    unary   := 'not' unary | '(' expr ')' | comparison
    compare := IDENT OP value          OP in  = != < <= > >=
    value   := NUMBER | 'quoted' | bareword

Identifiers resolve to vertex fields (``type``, ``basename``, ``name``,
``id``, ``size``, ``unit``, ``rank``, ``status``) or, failing that, to entries of
``vertex.properties``; a missing property makes its comparison False.
"""

from __future__ import annotations

import re
from typing import Any, Callable, List, Optional, Tuple

from ..errors import ResourceGraphError
from .graph import ResourceGraph
from .vertex import ResourceVertex

__all__ = ["compile_expression", "find_by_expression", "ExpressionError"]


class ExpressionError(ResourceGraphError):
    """Raised when a find expression cannot be parsed."""


_FIELDS = ("type", "basename", "name", "id", "size", "unit", "rank", "status")

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<lparen>\() |
        (?P<rparen>\)) |
        (?P<op><=|>=|!=|=|<|>) |
        (?P<number>-?\d+(?:\.\d+)?) |
        (?P<quoted>'[^']*'|"[^"]*") |
        (?P<word>[A-Za-z_][A-Za-z0-9_\-./]*)
    )""",
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            if text[pos:].strip():
                raise ExpressionError(
                    f"cannot tokenize expression at: {text[pos:]!r}"
                )
            break
        pos = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ExpressionError(f"unexpected end of expression: {self.text!r}")
        self.pos += 1
        return token

    def parse(self) -> Callable[[ResourceVertex], bool]:
        predicate = self.parse_or()
        if self.peek() is not None:
            raise ExpressionError(
                f"trailing input in expression: {self.tokens[self.pos:]!r}"
            )
        return predicate

    def parse_or(self):
        left = self.parse_and()
        while self.peek() == ("word", "or"):
            self.next()
            right = self.parse_and()
            left = _or(left, right)
        return left

    def parse_and(self):
        left = self.parse_unary()
        while self.peek() == ("word", "and"):
            self.next()
            right = self.parse_unary()
            left = _and(left, right)
        return left

    def parse_unary(self):
        token = self.peek()
        if token == ("word", "not"):
            self.next()
            inner = self.parse_unary()
            return lambda v: not inner(v)
        if token is not None and token[0] == "lparen":
            self.next()
            inner = self.parse_or()
            closing = self.next()
            if closing[0] != "rparen":
                raise ExpressionError("expected ')'")
            return inner
        return self.parse_comparison()

    def parse_comparison(self):
        kind, key = self.next()
        if kind != "word":
            raise ExpressionError(f"expected identifier, got {key!r}")
        op_kind, op = self.next()
        if op_kind != "op":
            raise ExpressionError(f"expected comparison operator after {key!r}")
        value_kind, raw = self.next()
        if value_kind == "number":
            value: Any = float(raw) if "." in raw else int(raw)
        elif value_kind == "quoted":
            value = raw[1:-1]
        elif value_kind == "word":
            value = raw
        else:
            raise ExpressionError(f"expected value, got {raw!r}")
        return _comparison(key, op, value)


def _or(a, b):
    return lambda v: a(v) or b(v)


def _and(a, b):
    return lambda v: a(v) and b(v)


def _lookup(vertex: ResourceVertex, key: str):
    if key in _FIELDS:
        return getattr(vertex, key)
    return vertex.properties.get(key)


def _comparison(key: str, op: str, value: Any) -> Callable[[ResourceVertex], bool]:
    def check(vertex: ResourceVertex) -> bool:
        actual = _lookup(vertex, key)
        if actual is None:
            return op == "!="  # missing property equals nothing
        lhs, rhs = actual, value
        if isinstance(rhs, (int, float)) and not isinstance(lhs, (int, float)):
            return op == "!="
        if isinstance(rhs, str) and not isinstance(lhs, str):
            lhs = str(lhs)
        if op == "=":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        try:
            if op == "<":
                return lhs < rhs
            if op == "<=":
                return lhs <= rhs
            if op == ">":
                return lhs > rhs
            return lhs >= rhs
        except TypeError:
            return False

    return check


def compile_expression(text: str) -> Callable[[ResourceVertex], bool]:
    """Compile a find expression into a vertex predicate."""
    tokens = _tokenize(text)
    if not tokens:
        raise ExpressionError("empty expression")
    return _Parser(tokens, text).parse()


def find_by_expression(graph: ResourceGraph, text: str) -> List[ResourceVertex]:
    """Return all vertices of ``graph`` matching the expression."""
    predicate = compile_expression(text)
    return [vertex for vertex in graph.vertices() if predicate(vertex)]
