"""Resource-pool vertices (paper §3.1).

A vertex is a *resource pool*: one or more indistinguishable resources of the
same kind, collectively represented as a quantity (``size``).  A singleton
resource (a core, a node) is a pool of size one.  Each vertex owns a
:class:`~repro.planner.Planner` tracking its pool's allocation state over
time, and may additionally carry a :class:`~repro.planner.PlannerMulti`
pruning filter summarising the aggregate availability of configured
lower-level resource types in its subtree (§3.4).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..planner import Planner, PlannerMulti

__all__ = ["ResourceVertex", "X_LIMIT"]

#: Capacity of the exclusivity-tracking planner: a shared allocation books 1
#: "job slot", an exclusive one books all of them, so exclusive-vs-anything
#: conflicts and shared-with-shared coexistence both fall out of ordinary
#: span arithmetic (the paper's exclusivity pruning, §3.4).
X_LIMIT = 2**30


class ResourceVertex:
    """One resource pool in the graph store.

    Instances are created by :meth:`ResourceGraph.add_vertex
    <repro.resource.graph.ResourceGraph.add_vertex>`; user code should treat
    the structural fields as read-only and mutate state only through the
    graph/traverser APIs.

    Attributes
    ----------
    uniq_id:
        Graph-wide unique integer id.
    type:
        Resource type name ("core", "memory", ...).
    basename:
        Name stem; ``name`` is ``f"{basename}{id}"``.
    id:
        Logical id among same-type siblings (drives ID-based match policies).
    size:
        Schedulable pool quantity.
    unit:
        Informational unit of the pool quantity ("GB", "W", '').
    rank:
        Execution-broker rank (kept for fidelity with Fluxion; -1 = unset).
    properties:
        Free-form key/value tags (e.g. ``{"perf_class": 2}``, §5.2).
    status:
        Administrative state: ``"up"`` (schedulable) or ``"down"``
        (drained); the traverser skips down vertices and their subtrees.
    paths:
        Canonical hierarchical path per subsystem, set when the first in-edge
        of a subsystem is added (e.g. ``{"containment": "/cluster0/rack3/node42"}``).
    plans:
        Planner tracking this pool's own allocations over time.
    xplans:
        Exclusivity-tracking planner: shared allocations book 1 unit,
        exclusive allocations book all X_LIMIT units, so an exclusive hold
        conflicts with any other use while shared holds coexist.
    prune_filters:
        Optional PlannerMulti summarising subtree availability per tracked
        type (installed by the graph store on high-level vertices, §3.4).
    """

    __slots__ = (
        "uniq_id",
        "type",
        "basename",
        "id",
        "size",
        "unit",
        "rank",
        "properties",
        "paths",
        "status",
        "plans",
        "xplans",
        "prune_filters",
    )

    def __init__(
        self,
        uniq_id: int,
        type: str,
        basename: str,
        id: int,
        size: int,
        unit: str = "",
        rank: int = -1,
        properties: Optional[Dict[str, Any]] = None,
        plan_start: int = 0,
        plan_end: int = 2**62,
    ) -> None:
        self.uniq_id = uniq_id
        self.type = type
        self.basename = basename
        self.id = id
        self.size = size
        self.unit = unit
        self.rank = rank
        self.properties: Dict[str, Any] = dict(properties or {})
        self.paths: Dict[str, str] = {}
        self.status = "up"
        self.plans = Planner(size, plan_start, plan_end, resource_type=type)
        self.xplans = Planner(X_LIMIT, plan_start, plan_end, resource_type=f"x:{type}")
        self.prune_filters: Optional[PlannerMulti] = None

    @property
    def name(self) -> str:
        """Display name: basename + logical id (e.g. ``core7``)."""
        return f"{self.basename}{self.id}"

    def path(self, subsystem: str = "containment") -> str:
        """Canonical path of this vertex within ``subsystem`` ('' if none)."""
        return self.paths.get(subsystem, "")

    def avail_during(self, at: int, duration: int, request: int = 1) -> bool:
        """Convenience: is ``request`` of this pool free over the window?"""
        return self.plans.avail_during(at, duration, request)

    def avail_resources_during(self, at: int, duration: int) -> int:
        """Convenience: minimum free pool quantity over the window."""
        return self.plans.avail_resources_during(at, duration)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResourceVertex(#{self.uniq_id} {self.type} {self.name!r} "
            f"size={self.size})"
        )
