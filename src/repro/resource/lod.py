"""Dynamic level-of-detail control: pool coarsening and refinement (§3.3).

"When a resource needs to be described at coarse granularity it can be
pooled together at a higher level; when fine granularity is required, the
resource can be promoted to its own individual pool" — and the paper adds
that vertices may be added or removed *dynamically* for this.  These
operations do exactly that, in place:

* :func:`coarsen_pools` — merge idle sibling pools of one type into a single
  pool vertex of the summed size (e.g. 8x16GB memory -> 1x128GB);
* :func:`refine_pool` — split an idle pool vertex into parts (e.g. a 5-core
  pool promoted to five singleton cores).

Both conserve total capacity per type, so pruning-filter aggregates stay
valid without any update.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ResourceGraphError
from .graph import ResourceGraph
from .vertex import ResourceVertex

__all__ = ["coarsen_pools", "refine_pool"]


def _require_idle(vertices: Sequence[ResourceVertex]) -> None:
    busy = [
        v.name for v in vertices if v.plans.span_count or v.xplans.span_count
    ]
    if busy:
        raise ResourceGraphError(
            f"cannot change granularity of allocated pools: {busy[:5]}"
        )


def coarsen_pools(
    graph: ResourceGraph, vertices: Sequence[ResourceVertex]
) -> ResourceVertex:
    """Merge idle sibling leaf pools into one pool of the summed size.

    All vertices must share a type, a unit, and a single containment parent,
    be leaves (no children), and be idle.  Returns the new pool vertex.
    """
    if len(vertices) < 2:
        raise ResourceGraphError("coarsening needs at least two pools")
    first = vertices[0]
    if any(v.type != first.type or v.unit != first.unit for v in vertices):
        raise ResourceGraphError("pools must share type and unit to merge")
    parents = {id(p): p for v in vertices for p in graph.parents(v)}
    if len(parents) != 1:
        raise ResourceGraphError("pools must share a single parent to merge")
    for v in vertices:
        if graph.children(v):
            raise ResourceGraphError(f"{v.name} is not a leaf pool")
    _require_idle(vertices)
    (parent,) = parents.values()
    merged = graph.add_vertex(
        first.type,
        basename=first.basename,
        size=sum(v.size for v in vertices),
        unit=first.unit,
    )
    graph.add_edge(parent, merged)
    for v in vertices:
        graph.remove_vertex(v)
    return merged


def refine_pool(
    graph: ResourceGraph, vertex: ResourceVertex, parts: Sequence[int]
) -> List[ResourceVertex]:
    """Split an idle leaf pool into sibling pools sized ``parts``.

    ``sum(parts)`` must equal the pool's size (capacity conservation).
    Returns the new pool vertices, attached to the original parent.
    """
    if len(parts) < 2:
        raise ResourceGraphError("refinement needs at least two parts")
    if any(p < 1 for p in parts):
        raise ResourceGraphError("every part must be at least 1")
    if sum(parts) != vertex.size:
        raise ResourceGraphError(
            f"parts sum to {sum(parts)}, pool holds {vertex.size}"
        )
    if graph.children(vertex):
        raise ResourceGraphError(f"{vertex.name} is not a leaf pool")
    parents = graph.parents(vertex)
    if len(parents) != 1:
        raise ResourceGraphError("refinement requires a single parent")
    _require_idle([vertex])
    parent = parents[0]
    created = []
    for size in parts:
        part = graph.add_vertex(
            vertex.type, basename=vertex.basename, size=size, unit=vertex.unit
        )
        graph.add_edge(parent, part)
        created.append(part)
    graph.remove_vertex(vertex)
    return created
