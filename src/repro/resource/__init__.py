"""Resource graph store: pools-as-vertices, typed subsystem edges (paper §3)."""

from .edge import CONTAINMENT, CONTAINS, IN, ResourceEdge
from .expr import ExpressionError, compile_expression, find_by_expression
from .graph import ResourceGraph, SubsystemView
from .jgf import from_jgf, load_jgf, save_jgf, to_jgf
from .lod import coarsen_pools, refine_pool
from .types import DEFAULT_REGISTRY, ResourceTypeInfo, ResourceTypeRegistry
from .vertex import ResourceVertex

__all__ = [
    "CONTAINMENT",
    "ExpressionError",
    "compile_expression",
    "find_by_expression",
    "coarsen_pools",
    "from_jgf",
    "load_jgf",
    "save_jgf",
    "refine_pool",
    "to_jgf",
    "CONTAINS",
    "IN",
    "ResourceEdge",
    "ResourceGraph",
    "SubsystemView",
    "DEFAULT_REGISTRY",
    "ResourceTypeInfo",
    "ResourceTypeRegistry",
    "ResourceVertex",
]
