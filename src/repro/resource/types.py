"""Resource-type metadata registry.

Resource types in the graph model are open-ended strings ("core", "gpu",
"memory", "power", ...).  The registry attaches optional metadata — the unit
a pool is counted in and whether the type is a *flow* resource (network
bandwidth, power, I/O bandwidth), which the paper calls out as first-class
citizens of the model (§1, §3.1).  Unknown types are always permitted; the
registry is descriptive, not restrictive (universality, §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ResourceTypeInfo", "ResourceTypeRegistry", "DEFAULT_REGISTRY"]


@dataclass(frozen=True)
class ResourceTypeInfo:
    """Metadata for one resource type."""

    name: str
    unit: str = ""
    is_flow: bool = False
    description: str = ""


class ResourceTypeRegistry:
    """A mutable mapping of type name -> :class:`ResourceTypeInfo`."""

    def __init__(self) -> None:
        self._types: Dict[str, ResourceTypeInfo] = {}

    def register(
        self,
        name: str,
        unit: str = "",
        is_flow: bool = False,
        description: str = "",
    ) -> ResourceTypeInfo:
        """Register (or re-register) a type and return its info record."""
        info = ResourceTypeInfo(name, unit, is_flow, description)
        self._types[name] = info
        return info

    def get(self, name: str) -> Optional[ResourceTypeInfo]:
        """Return the info for ``name`` or None when unregistered."""
        return self._types.get(name)

    def unit(self, name: str) -> str:
        """Return the default unit for ``name`` ('' when unknown)."""
        info = self._types.get(name)
        return info.unit if info else ""

    def is_flow(self, name: str) -> bool:
        """True when ``name`` is registered as a flow resource."""
        info = self._types.get(name)
        return bool(info and info.is_flow)

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self):
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)


def _build_default() -> ResourceTypeRegistry:
    reg = ResourceTypeRegistry()
    for name, unit, is_flow, desc in [
        ("cluster", "", False, "top-level system"),
        ("rack", "", False, "compute rack / chassis"),
        ("node", "", False, "compute node"),
        ("socket", "", False, "processor socket"),
        ("core", "", False, "CPU core"),
        ("gpu", "", False, "GPU device"),
        ("memory", "GB", False, "memory pool"),
        ("ssd", "GB", False, "burst buffer / SSD storage"),
        ("storage", "GB", False, "generic storage pool"),
        ("pfs", "", False, "parallel file system"),
        ("rabbit", "", False, "near-node-flash chassis controller (§5.1)"),
        ("nvme_namespace", "", False, "NVMe namespace slot on a rabbit SSD"),
        ("ip", "", False, "unique IP slot (one Lustre server per rabbit)"),
        ("perf_class", "", False, "performance-class tag vertex (§5.2)"),
        ("power", "W", True, "power budget (flow resource)"),
        ("facility_power", "W", True, "facility-level power budget (flow)"),
        ("bandwidth", "GB/s", True, "network bandwidth (flow resource)"),
        ("io_bandwidth", "GB/s", True, "I/O bandwidth (flow resource)"),
        ("switch", "", False, "network switch"),
        ("core_switch", "", False, "IB core switch (Fig 1b)"),
        ("edge_switch", "", False, "IB edge switch (Fig 1b)"),
        ("slot", "", False, "jobspec task slot (non-physical)"),
    ]:
        reg.register(name, unit, is_flow, desc)
    return reg


#: Registry pre-populated with the types used across the paper's examples.
DEFAULT_REGISTRY = _build_default()
