"""resource-query: the command-line utility of §6.1.

Reads a resource-graph generation recipe (GRUG-style YAML) or a named
preset, populates the resource graph store, then executes match commands
against it — interactively or from a batch file — printing the selected
resources and per-match time, like Fluxion's ``resource-query`` tool.

Usage::

    resource-query --preset tiny --policy low
    resource-query --grug system.yaml --prune-filters core,node < commands.txt

Commands::

    match allocate <jobspec.yaml>
    match allocate_orelse_reserve <jobspec.yaml>
    match satisfiability <jobspec.yaml>
    cancel <alloc_id>
    find <resource-type | expression>      e.g. find type=node and perf_class=2
    jgf save <file.json> | jgf load <file.json>
    outage add <path> <start> <duration> | outage cancel <id> | outage list
    drain <path> | resume <path>
    info
    stats
    quit
"""

from __future__ import annotations

import argparse
import shlex
import sys
from typing import List, Optional

from ..errors import FluxionError
from ..grug import build_from_recipe, build_lod, load_recipe_file, tiny_cluster
from ..jobspec import load_jobspec_file
from ..match import Traverser
from ..obs import wall_now
from ..resource import find_by_expression, load_jgf, save_jgf
from ..sched import CapacitySchedule

__all__ = ["main", "ResourceQuery"]

_PRESETS = {
    "tiny": lambda: tiny_cluster(),
    "high": lambda: build_lod("high"),
    "med": lambda: build_lod("med"),
    "low": lambda: build_lod("low"),
    "low2": lambda: build_lod("low2"),
}


class ResourceQuery:
    """The command interpreter behind the CLI (importable for tests)."""

    def __init__(self, graph, policy: str = "first", prune: bool = True,
                 out=None) -> None:
        self.graph = graph
        self.traverser = Traverser(graph, policy=policy, prune=prune)
        self.out = out
        self.now = graph.plan_start
        self.capacity = CapacitySchedule(graph)

    def _print(self, text: str) -> None:
        print(text, file=self.out if self.out is not None else sys.stdout)

    def execute(self, line: str) -> bool:
        """Run one command line; returns False when the session should end."""
        parts = shlex.split(line.strip())
        if not parts or parts[0].startswith("#"):
            return True
        command, args = parts[0], parts[1:]
        try:
            if command == "quit":
                return False
            if command == "match":
                self._cmd_match(args)
            elif command == "cancel":
                self._cmd_cancel(args)
            elif command == "find":
                self._cmd_find(args)
            elif command == "jgf":
                self._cmd_jgf(args)
            elif command == "outage":
                self._cmd_outage(args)
            elif command in ("drain", "resume"):
                self._cmd_status(command, args)
            elif command == "info":
                self._cmd_info()
            elif command == "stats":
                self._cmd_stats()
            else:
                self._print(f"ERROR: unknown command {command!r}")
        except FluxionError as exc:
            self._print(f"ERROR: {exc}")
        except OSError as exc:
            self._print(f"ERROR: {exc}")
        return True

    def _cmd_match(self, args: List[str]) -> None:
        if len(args) != 2:
            self._print("usage: match <verb> <jobspec.yaml>")
            return
        verb, path = args
        if verb not in ("allocate", "allocate_orelse_reserve", "reserve",
                        "satisfiability"):
            self._print(f"ERROR: unknown match verb {verb!r}")
            return
        jobspec = load_jobspec_file(path)
        # interactive benchmarking CLI: wall-clock timing is the point,
        # read through the audited repro.obs.clock shim
        start = wall_now()
        if verb == "allocate":
            alloc = self.traverser.allocate(jobspec, at=self.now)
        elif verb in ("allocate_orelse_reserve", "reserve"):
            alloc = self.traverser.allocate_orelse_reserve(jobspec, now=self.now)
        elif verb == "satisfiability":
            elapsed = wall_now() - start
            ok = self.traverser.satisfiable(jobspec)
            self._print(f"INFO: satisfiability: {'yes' if ok else 'no'}")
            self._print(f"INFO: match time: {elapsed * 1e3:.3f} ms")
            return
        else:  # pragma: no cover - guarded above
            raise AssertionError(verb)
        elapsed = wall_now() - start
        if alloc is None:
            self._print("INFO: no match")
        else:
            kind = "reserved" if alloc.reserved else "allocated"
            self._print(f"INFO: {kind} id={alloc.alloc_id} {alloc.summary()}")
            for sel in alloc.resources():
                self._print(
                    f"      {sel.vertex.path('containment')}"
                    f" {sel.type}:{sel.amount}{'!' if sel.exclusive else ''}"
                )
        self._print(f"INFO: match time: {elapsed * 1e3:.3f} ms")

    def _cmd_cancel(self, args: List[str]) -> None:
        if len(args) != 1 or not args[0].isdigit():
            self._print("usage: cancel <alloc_id>")
            return
        self.traverser.remove(int(args[0]))
        self._print(f"INFO: canceled {args[0]}")

    def _cmd_find(self, args: List[str]) -> None:
        if not args:
            self._print("usage: find <resource-type | expression>")
            return
        criteria = " ".join(args)
        if len(args) == 1 and "=" not in criteria and "<" not in criteria \
                and ">" not in criteria:
            matches = self.graph.find(type=criteria)
        else:
            matches = find_by_expression(self.graph, criteria)
        for vertex in matches[:50]:
            self._print(
                f"      {vertex.path('containment')} size={vertex.size}"
            )
        self._print(f"INFO: {len(matches)} vertices match {criteria!r}")

    def _cmd_jgf(self, args: List[str]) -> None:
        if len(args) != 2 or args[0] not in ("save", "load"):
            self._print("usage: jgf save|load <file.json>")
            return
        verb, path = args
        if verb == "save":
            save_jgf(self.graph, path)
            self._print(f"INFO: wrote {self.graph.vertex_count} vertices to {path}")
        else:
            if self.traverser.allocations:
                self._print("ERROR: cancel all allocations before jgf load")
                return
            self.graph = load_jgf(path)
            self.traverser = Traverser(
                self.graph, policy=self.traverser.policy,
                prune=self.traverser.prune,
            )
            self.capacity = CapacitySchedule(self.graph)
            self._print(f"INFO: loaded {self.graph.vertex_count} vertices from {path}")

    def _cmd_outage(self, args: List[str]) -> None:
        if args and args[0] == "list":
            for outage in self.capacity.outages.values():
                self._print(
                    f"      #{outage.outage_id} {outage.vertex.path('containment')}"
                    f" [{outage.start},{outage.end}) {outage.reason}"
                )
            self._print(f"INFO: {len(self.capacity.outages)} planned outages")
            return
        if len(args) == 2 and args[0] == "cancel" and args[1].isdigit():
            self.capacity.cancel(int(args[1]))
            self._print(f"INFO: canceled outage {args[1]}")
            return
        if len(args) == 4 and args[0] == "add" and args[2].isdigit() \
                and args[3].isdigit():
            vertex = self.graph.by_path(args[1])
            outage = self.capacity.add_outage(
                vertex, int(args[2]), int(args[3])
            )
            self._print(
                f"INFO: outage #{outage.outage_id} on {args[1]} "
                f"[{outage.start},{outage.end})"
            )
            return
        self._print(
            "usage: outage add <path> <start> <duration> | "
            "outage cancel <id> | outage list"
        )

    def _cmd_status(self, command: str, args: List[str]) -> None:
        if len(args) != 1:
            self._print(f"usage: {command} <path>")
            return
        vertex = self.graph.by_path(args[0])
        if command == "drain":
            self.graph.mark_down(vertex)
        else:
            self.graph.mark_up(vertex)
        self._print(f"INFO: {args[0]} is now {vertex.status}")

    def _cmd_info(self) -> None:
        totals = ", ".join(
            f"{rtype}:{count}"
            for rtype, count in sorted(self.graph.total_by_type().items())
        )
        self._print(
            f"INFO: {self.graph.vertex_count} vertices, "
            f"{self.graph.edge_count} edges, subsystems="
            f"{list(self.graph.subsystems)}"
        )
        self._print(f"INFO: totals: {totals}")

    def _cmd_stats(self) -> None:
        stats = ", ".join(f"{k}={v}" for k, v in self.traverser.stats.items())
        self._print(f"INFO: {stats}")
        self._print(
            f"INFO: active allocations: {len(self.traverser.allocations)}"
        )
        for line in self.traverser.metrics.render().splitlines():
            self._print(f"INFO: {line}")


def _build_graph(args) -> object:
    if args.grug:
        graph = load_recipe_file(args.grug)
    elif args.preset:
        graph = _PRESETS[args.preset]()
    else:
        graph = tiny_cluster()
    if args.prune_filters:
        types = [t.strip() for t in args.prune_filters.split(",") if t.strip()]
        graph.install_pruning_filters(types, at_types=["rack", "node"])
    return graph


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="resource-query",
        description="Match jobspecs against a generated resource graph "
        "(reproduction of Fluxion's resource-query, paper §6.1).",
    )
    parser.add_argument("--grug", help="GRUG-style recipe YAML file")
    parser.add_argument(
        "--preset", choices=sorted(_PRESETS), help="built-in system preset"
    )
    parser.add_argument(
        "--policy",
        default="first",
        help="match policy: first/high/low/locality/variation",
    )
    parser.add_argument(
        "--prune-filters",
        help="comma-separated resource types to track in pruning filters "
        "(replaces any filters the recipe installed)",
    )
    parser.add_argument(
        "--no-prune", action="store_true", help="disable pruning during match"
    )
    parser.add_argument(
        "-f", "--file", help="read commands from this file instead of stdin"
    )
    args = parser.parse_args(argv)
    try:
        graph = _build_graph(args)
    except (FluxionError, OSError) as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1
    query = ResourceQuery(graph, policy=args.policy, prune=not args.no_prune)
    query._cmd_info()
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = sys.stdin
    for line in lines:
        if not query.execute(line):
            break
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
