"""Command-line tools (resource-query, paper §6.1)."""

from .resource_query import ResourceQuery, main

__all__ = ["ResourceQuery", "main"]
